//! # lam — Learning with Analytical Models
//!
//! Facade crate re-exporting the full workspace: a Rust reproduction of
//! *Learning with Analytical Models* (Ibeid, Meng, Dobon, Olson, Gropp;
//! IPPS 2019, arXiv:1810.11772). The paper's contribution — a hybrid
//! performance model that stacks an analytical model's prediction as a
//! feature of a machine-learning regressor and optionally bags the two —
//! lives in [`core`]; everything it depends on (ML substrate, machine
//! model, stencil and FMM applications, analytical models) is built from
//! scratch in the sibling crates.
//!
//! ```no_run
//! use lam::prelude::*;
//!
//! // Generate a stencil dataset on the simulated Blue Waters node,
//! // train a hybrid model on 2% of it, and evaluate MAPE on the rest.
//! let machine = MachineDescription::blue_waters_xe6();
//! let space = lam::stencil::config::space_grid_only();
//! let dataset = lam::stencil::oracle::generate_dataset(&space, &machine, 42);
//! ```

pub use lam_analytical as analytical;
pub use lam_core as core;
pub use lam_data as data;
pub use lam_fmm as fmm;
pub use lam_machine as machine;
pub use lam_ml as ml;
pub use lam_stencil as stencil;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use lam_analytical::traits::AnalyticalModel;
    pub use lam_core::evaluate::{EvaluationConfig, TrialOutcome};
    pub use lam_core::hybrid::{HybridConfig, HybridModel};
    pub use lam_data::{Dataset, ParamRange, ParamSpace};
    pub use lam_machine::arch::MachineDescription;
    pub use lam_ml::metrics::mape;
    pub use lam_ml::model::Regressor;
    pub use lam_ml::{
        forest::{ExtraTreesRegressor, RandomForestRegressor},
        tree::DecisionTreeRegressor,
    };
}
