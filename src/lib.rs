//! # lam — Learning with Analytical Models
//!
//! Facade crate re-exporting the full workspace: a Rust reproduction of
//! *Learning with Analytical Models* (Ibeid, Meng, Dobon, Olson, Gropp;
//! IPPS 2019, arXiv:1810.11772). The paper's contribution — a hybrid
//! performance model that stacks an analytical model's prediction as a
//! feature of a machine-learning regressor and optionally bags the two —
//! lives in [`core`]; everything it depends on (ML substrate, machine
//! model, stencil and FMM applications, analytical models) is built from
//! scratch in the sibling crates.
//!
//! ```no_run
//! use lam::prelude::*;
//!
//! // Generate a stencil dataset on the simulated Blue Waters node, train
//! // a hybrid model on 2% of it, and evaluate MAPE on the rest.
//! let machine = MachineDescription::blue_waters_xe6();
//! let space = lam::stencil::config::space_grid_only();
//! let dataset = lam::stencil::oracle::generate_dataset(&machine, &space, 42);
//!
//! let workload = StencilWorkload::new(machine, space, 42);
//! let config = EvaluationConfig::new(vec![0.02], 10, 7);
//! let series = lam::core::evaluate::evaluate_model(&dataset, &config, |seed| {
//!     Box::new(HybridModel::new(
//!         workload.analytical_model(),
//!         Box::new(ExtraTreesRegressor::new(seed)),
//!         HybridConfig::with_aggregation(),
//!     ))
//! });
//! println!("hybrid MAPE at 2% training: {:.1}%", series[0].summary.mean);
//! ```

pub use lam_analytical as analytical;
pub use lam_core as core;
pub use lam_data as data;
pub use lam_fmm as fmm;
pub use lam_machine as machine;
pub use lam_ml as ml;
pub use lam_obs as obs;
pub use lam_serve as serve;
pub use lam_spmv as spmv;
pub use lam_stencil as stencil;
pub use lam_tune as tune;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use lam_analytical::traits::AnalyticalModel;
    // Note: `DynWorkload` is deliberately *not* in the prelude — importing
    // it alongside `Workload` would make same-named method calls on
    // concrete workload types ambiguous. Reach it via
    // `lam::core::catalog::DynWorkload`.
    pub use lam_core::catalog::WorkloadCatalog;
    pub use lam_core::evaluate::{EvaluationConfig, TrialOutcome};
    pub use lam_core::hybrid::{HybridConfig, HybridModel};
    pub use lam_core::workload::Workload;
    pub use lam_data::{Dataset, ParamRange, ParamSpace};
    pub use lam_fmm::workload::FmmWorkload;
    pub use lam_machine::arch::MachineDescription;
    pub use lam_ml::metrics::mape;
    pub use lam_ml::model::Regressor;
    pub use lam_ml::{
        forest::{ExtraTreesRegressor, RandomForestRegressor},
        tree::DecisionTreeRegressor,
    };
    pub use lam_serve::persist::ModelKind;
    pub use lam_serve::registry::{ModelKey, ModelRegistry};
    pub use lam_serve::workload::WorkloadId;
    pub use lam_spmv::workload::SpmvWorkload;
    pub use lam_stencil::workload::StencilWorkload;
    pub use lam_tune::{active_learn, ActiveLearnOptions, TuneReport, TuneRequest, Tuner};
}
