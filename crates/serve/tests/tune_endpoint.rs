//! `/tune` end to end over a real socket: every strategy (plus the
//! active learner) returns a well-formed, deterministic recommendation;
//! malformed requests get 4xx without hurting the connection; `/healthz`
//! reports the populated workload catalog.

use lam_serve::http::{self, HealthResponse, ServerOptions, TuneHttpRequest, TuneHttpResponse};
use lam_serve::loadgen::HttpClient;
use lam_serve::registry::ModelRegistry;
use lam_serve::workload::WorkloadId;
use std::sync::Arc;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_tune_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start() -> (http::ServerHandle, HttpClient) {
    let registry = Arc::new(ModelRegistry::new(temp_root("e2e")));
    let handle = http::start(
        registry,
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("server binds");
    let client = HttpClient::connect(&handle.local_addr().to_string()).expect("connects");
    (handle, client)
}

fn tune_body(strategy: &str, budget: usize, seed: u64) -> String {
    serde_json::to_string(&TuneHttpRequest {
        workload: "fmm-small".to_string(),
        strategy: strategy.to_string(),
        budget,
        kind: None,
        top_k: Some(4),
        seed: Some(seed),
        version: None,
    })
    .expect("serializes")
}

#[test]
fn every_strategy_tunes_over_http_deterministically() {
    let (handle, mut client) = start();
    let workload = WorkloadId::get("fmm-small").unwrap();
    let rows = workload.feature_rows();

    for strategy in ["exhaustive", "random", "local", "halving", "active"] {
        let body = tune_body(strategy, 16, 42);
        let (status, first) = client.post("/tune", &body).unwrap();
        assert_eq!(status, 200, "{strategy}: {first}");
        let a: TuneHttpResponse = serde_json::from_str(&first).unwrap();
        assert_eq!(a.report.strategy, strategy);
        assert_eq!(a.report.workload, "fmm-small");
        assert_eq!(a.report.space_size, rows.len());
        assert!(a.report.evaluations <= 16, "{strategy}");
        assert!(a.report.top.len() <= 4);
        assert!(
            a.report.best.oracle.is_some(),
            "{strategy}: unmeasured best"
        );
        assert!(a.report.best.index < rows.len());
        assert_eq!(a.report.best.features, rows[a.report.best.index]);
        if strategy == "active" {
            assert!(a.model.is_none(), "active refits in-loop");
        } else {
            assert_eq!(a.model.as_deref(), Some("fmm-small/hybrid/v1"));
            // Training memoized the dataset, so regret comes for free.
            let regret = a.report.regret.expect("regret attached");
            assert!(regret >= 1.0, "{strategy}: regret {regret}");
        }

        // Same request ⇒ identical report (micros may differ).
        let (status, second) = client.post("/tune", &body).unwrap();
        assert_eq!(status, 200);
        let b: TuneHttpResponse = serde_json::from_str(&second).unwrap();
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap(),
            "{strategy} not deterministic over HTTP"
        );
    }
    handle.stop();
}

#[test]
fn tune_rejects_bad_requests_and_survives() {
    let (handle, mut client) = start();

    // Unknown strategy.
    let (status, body) = client
        .post("/tune", &tune_body("gradient-descent", 8, 0))
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown strategy"), "{body}");

    // Zero and oversized budgets.
    for budget in [0, http::MAX_TUNE_BUDGET + 1] {
        let (status, body) = client
            .post("/tune", &tune_body("random", budget, 0))
            .unwrap();
        assert_eq!(status, 400, "budget {budget}: {body}");
    }

    // Unknown workload and unknown kind.
    let mut req: TuneHttpRequest = serde_json::from_str(&tune_body("random", 8, 0)).unwrap();
    req.workload = "never-registered".to_string();
    let (status, _) = client
        .post("/tune", &serde_json::to_string(&req).unwrap())
        .unwrap();
    assert_eq!(status, 400);
    let mut req: TuneHttpRequest = serde_json::from_str(&tune_body("random", 8, 0)).unwrap();
    req.kind = Some("perceptron".to_string());
    let (status, _) = client
        .post("/tune", &serde_json::to_string(&req).unwrap())
        .unwrap();
    assert_eq!(status, 400);

    // Oversized top_k, malformed JSON, wrong method.
    let mut req: TuneHttpRequest = serde_json::from_str(&tune_body("random", 8, 0)).unwrap();
    req.top_k = Some(http::MAX_TUNE_TOP_K + 1);
    let (status, _) = client
        .post("/tune", &serde_json::to_string(&req).unwrap())
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.post("/tune", "{not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/tune").unwrap();
    assert_eq!(status, 405);

    // The connection is still healthy: a good request succeeds.
    let (status, body) = client.post("/tune", &tune_body("random", 4, 1)).unwrap();
    assert_eq!(status, 200, "{body}");
    handle.stop();
}

#[test]
fn healthz_reports_the_workload_catalog() {
    let (handle, mut client) = start();
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health: HealthResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(health.status, "ok");
    // The seven built-ins are always registered; concurrent tests may add
    // more.
    assert!(health.workloads >= 7, "workloads {}", health.workloads);
    assert!(health.uptime_s >= 0.0);
    // The two uptime fields tick the same clock.
    assert!(health.uptime_s * 1000.0 >= health.uptime_ms as f64 - 1.0);
    handle.stop();
}
