//! Regression test for built-in registration resilience: a user who
//! claims one built-in name *before* the serving layer's lazy
//! registration runs must preempt only that name — every other built-in
//! still registers. (An early version of `register_servable` aborted a
//! whole crate's list on the first `Duplicate`, silently losing
//! `fmm-small` when a user pre-registered `fmm`.)
//!
//! This lives in its own test binary so the pre-registration is
//! guaranteed to be the process's first catalog touch.

use lam_analytical::traits::{AnalyticalModel, ConstantModel};
use lam_core::catalog::WorkloadCatalog;
use lam_core::workload::Workload;
use lam_serve::workload::WorkloadId;

/// A stand-in scenario registered under a built-in's name.
struct Usurper;

impl Workload for Usurper {
    type Config = u64;

    fn name(&self) -> &str {
        "usurper"
    }

    fn feature_names(&self) -> Vec<String> {
        vec!["n".to_string()]
    }

    fn param_space(&self) -> &[u64] {
        &[1, 2, 3]
    }

    fn features(&self, cfg: &u64) -> Vec<f64> {
        vec![*cfg as f64]
    }

    fn execution_time(&self, cfg: &u64) -> f64 {
        *cfg as f64 * 1e-3
    }

    fn problem_size(&self, cfg: &u64) -> f64 {
        *cfg as f64
    }

    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        Box::new(ConstantModel(1e-3))
    }
}

#[test]
fn preempting_one_builtin_name_does_not_lose_the_others() {
    // First catalog touch in this process: claim `fmm` before any
    // WorkloadId resolution triggers the built-in registration.
    WorkloadCatalog::global()
        .register_workload("fmm", Usurper)
        .expect("first registration of `fmm` wins");

    // `fmm` resolves to the usurper (first registration wins)...
    let fmm = WorkloadId::get("fmm").expect("pre-registered name resolves");
    assert_eq!(fmm.space_size(), 3, "usurper's space, not the built-in's");
    assert_eq!(fmm.n_features(), 1);

    // ...and every *other* built-in still registered.
    for (name, arity) in [
        ("stencil-grid", 3),
        ("stencil-grid-blocking", 6),
        ("stencil-grid-threads", 4),
        ("fmm-small", 4),
        ("spmv", 4),
        ("spmv-small", 4),
    ] {
        let id = WorkloadId::get(name)
            .unwrap_or_else(|e| panic!("{name} lost to a duplicate-abort: {e}"));
        assert_eq!(id.n_features(), arity, "{name}");
    }
}
