//! End-to-end distributed-tracing tests: real backends behind a real
//! gateway, driven over real sockets, asserting that one client trace id
//! produces a coherent span tree across the gateway and its shards.
//!
//! The flight recorder is process-global, so every server in this binary
//! shares one ring. Trace-tree assertions therefore use *forced* trace
//! contexts ([`lam_obs::trace::FLAG_FORCE`]) whose retention is immune
//! to the sampling knobs, and the tail-sampling test pins the global
//! knobs to values that only strengthen the forced-trace guarantees
//! (`sample_every = MAX`, `slow_threshold = MAX`: nothing extra is kept).

use lam_obs::trace::TraceContext;
use lam_serve::cluster::{start_gateway, GatewayConfig, GatewayHandle};
use lam_serve::http::{self, PredictRequest, ServerOptions};
use lam_serve::loadgen::HttpClient;
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use std::sync::Arc;
use std::time::Duration;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_trace_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

fn start_backend(registry: Arc<ModelRegistry>) -> http::ServerHandle {
    http::start(
        registry,
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("backend binds")
}

fn gateway_over(backends: Vec<String>, replicas: usize) -> GatewayHandle {
    let mut cfg = GatewayConfig::new(backends);
    cfg.serve.opts.workers = 2;
    cfg.replicas = replicas;
    cfg.probe_interval = Duration::from_millis(100);
    cfg.fail_threshold = 1;
    cfg.recover_threshold = 1;
    start_gateway(cfg).expect("gateway binds")
}

fn predict_body(workload: &str, kind: &str, rows: Vec<Vec<f64>>) -> String {
    serde_json::to_string(&PredictRequest {
        workload: workload.to_string(),
        kind: kind.to_string(),
        version: Some(1),
        rows,
    })
    .expect("request serializes")
}

/// One span of a `/traces/{id}` document: `(name, span_id, parent_id,
/// annotations)`, with ids as the fixed-width hex the endpoint emits.
type SpanTuple = (String, String, String, Vec<(String, String)>);

fn parse_spans(doc: &serde::Value) -> Vec<SpanTuple> {
    doc.get("spans")
        .and_then(|s| s.as_array())
        .expect("spans array")
        .iter()
        .map(|span| {
            let field = |name: &str| {
                span.get(name)
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string()
            };
            let annotations = span
                .get("annotations")
                .and_then(|a| a.as_object())
                .map(|entries| {
                    entries
                        .iter()
                        .map(|(k, v)| (k.clone(), v.as_str().unwrap_or_default().to_string()))
                        .collect()
                })
                .unwrap_or_default();
            (
                field("name"),
                field("span_id"),
                field("parent_id"),
                annotations,
            )
        })
        .collect()
}

#[test]
fn one_forced_trace_spans_gateway_and_both_shards() {
    let root = temp_root("tree");
    // Pre-train once so both backends serve the same artifact.
    let key = ModelKey::new(wid("stencil-grid"), ModelKind::Linear, 1);
    ModelRegistry::new(root.clone())
        .get(key)
        .expect("pre-train");
    let b1 = start_backend(Arc::new(ModelRegistry::new(root.clone())));
    let b2 = start_backend(Arc::new(ModelRegistry::new(root.clone())));
    let backends = vec![b1.local_addr().to_string(), b2.local_addr().to_string()];
    let gw = gateway_over(backends, 2);
    let gw_addr = gw.local_addr().to_string();

    // A forced client context: retention is deterministic regardless of
    // the sampling knobs, and the id is ours to look up afterwards.
    let client_ctx = TraceContext::root().with_force();
    let trace_hex = format!("{:032x}", client_ctx.trace_id);

    // 5 rows over 2 replicas must scatter as a 3-row and a 2-row chunk.
    let rows = wid("stencil-grid").sample_rows(5);
    let body = predict_body("stencil-grid", "linear", rows);
    let mut client = HttpClient::connect(&gw_addr).expect("gateway connection");
    client
        .send_traced("POST", "/predict", &body, Some(&client_ctx.header_value()))
        .expect("send traced predict");
    let (status, resp) = client.recv().expect("predict response");
    assert_eq!(status, 200, "traced predict failed: {resp}");

    // The whole tree is assembled by the gateway (its own spans plus the
    // backends' over HTTP). The backend queue span is recorded just
    // before its response is, so one short retry loop absorbs the race.
    let mut doc = None;
    for _ in 0..50 {
        let (status, body) = client
            .get(&format!("/traces/{trace_hex}"))
            .expect("trace fetch");
        if status == 200 {
            let parsed: serde::Value = serde_json::from_str(&body).expect("trace json");
            if parse_spans(&parsed)
                .iter()
                .any(|s| s.0.starts_with("serve."))
            {
                doc = Some(parsed);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let doc = doc.expect("trace never became visible via GET /traces/{id}");
    assert_eq!(
        doc.get("trace_id").and_then(|v| v.as_str()),
        Some(trace_hex.as_str())
    );
    let spans = parse_spans(&doc);

    // Exactly one gateway root, parented on the client's span.
    let roots: Vec<_> = spans.iter().filter(|s| s.0 == "gateway.request").collect();
    assert_eq!(roots.len(), 1, "spans: {spans:?}");
    let (_, root_span_id, root_parent, root_ann) = roots[0];
    assert_eq!(root_parent, &format!("{:016x}", client_ctx.span_id));
    let ann = |list: &[(String, String)], key: &str| {
        list.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    assert_eq!(ann(root_ann, "rows"), "5");
    assert_eq!(ann(root_ann, "shards"), "2");

    // Two shard legs under the root, annotated with the contiguous
    // row split: chunk 0 = rows [0, 3), chunk 1 = rows [3, 5).
    let shards: Vec<_> = spans.iter().filter(|s| s.0 == "gateway.shard").collect();
    assert_eq!(shards.len(), 2, "spans: {spans:?}");
    let mut chunk_layout: Vec<(String, String)> = shards
        .iter()
        .map(|(_, _, parent, ann_list)| {
            assert_eq!(parent, root_span_id, "shard leg not under the root");
            assert!(!ann(ann_list, "backend").is_empty(), "leg missing backend");
            (ann(ann_list, "offset"), ann(ann_list, "rows"))
        })
        .collect();
    chunk_layout.sort();
    assert_eq!(
        chunk_layout,
        vec![
            ("0".to_string(), "3".to_string()),
            ("3".to_string(), "2".to_string())
        ],
        "chunk annotations disagree with the contiguous row split"
    );

    // Each backend continued its leg: every serve.request hangs off a
    // shard leg, and at least one serve-side child (queue/predict) hangs
    // off a serve.request.
    let shard_ids: Vec<&String> = shards.iter().map(|(_, id, _, _)| id).collect();
    let serve_requests: Vec<_> = spans.iter().filter(|s| s.0 == "serve.request").collect();
    assert_eq!(serve_requests.len(), 2, "spans: {spans:?}");
    for (_, _, parent, _) in &serve_requests {
        assert!(
            shard_ids.contains(&parent),
            "serve.request parented outside the shard legs: {spans:?}"
        );
    }
    let serve_ids: Vec<&String> = serve_requests.iter().map(|(_, id, _, _)| id).collect();
    let children = spans
        .iter()
        .filter(|s| s.0 == "serve.queue" || s.0 == "serve.predict")
        .filter(|(_, _, parent, _)| serve_ids.contains(&parent))
        .count();
    assert!(children >= 1, "no serve-side child spans: {spans:?}");

    // The recent-traces listing on the gateway knows this trace too.
    let (status, recent) = client.get("/traces").expect("recent traces");
    assert_eq!(status, 200);
    assert!(recent.contains(&trace_hex), "trace missing from /traces");

    gw.stop();
    b1.stop();
    b2.stop();
}

#[test]
fn shed_is_always_retained_while_bulk_is_sampled() {
    // Pin the global knobs so nothing is retained except errors, sheds,
    // and forced traces — the strictest possible sampling policy.
    lam_obs::recorder::global().set_sample_every(u64::MAX);
    lam_obs::recorder::global().set_slow_threshold_ns(u64::MAX);

    let root = temp_root("shed");
    let registry = Arc::new(ModelRegistry::new(root));
    let live = start_backend(Arc::clone(&registry));
    let live_addr = live.local_addr().to_string();

    // A healthy cluster serving a *bulk* (unforced) trace: with
    // sample_every at MAX the whole trace must be sampled out.
    let gw = gateway_over(vec![live_addr], 1);
    let gw_addr = gw.local_addr().to_string();
    let bulk_ctx = TraceContext::root();
    let body = predict_body("fmm-small", "linear", vec![vec![2.0, 8192.0, 64.0, 4.0]]);
    let mut client = HttpClient::connect(&gw_addr).expect("gateway connection");
    client
        .send_traced("POST", "/predict", &body, Some(&bulk_ctx.header_value()))
        .expect("send bulk predict");
    let (status, resp) = client.recv().expect("bulk response");
    assert_eq!(status, 200, "bulk predict failed: {resp}");
    let (status, _) = client
        .get(&format!("/traces/{:032x}", bulk_ctx.trace_id))
        .expect("bulk trace fetch");
    assert_eq!(status, 404, "a bulk ok-trace survived sample_every=MAX");
    assert!(
        !lam_obs::recorder::sampled(bulk_ctx.trace_id, u64::MAX),
        "the sampling predicate disagrees with the endpoint"
    );

    // A dead cluster shedding the same kind of unforced request: the
    // 503 gateway.request span must be retained despite the knobs.
    gw.stop();
    live.stop();
    let dead_gw = gateway_over(vec!["127.0.0.1:1".to_string()], 1);
    let dead_addr = dead_gw.local_addr().to_string();
    let shed_ctx = TraceContext::root();
    let mut client = HttpClient::connect(&dead_addr).expect("gateway connection");
    client
        .send_traced("POST", "/predict", &body, Some(&shed_ctx.header_value()))
        .expect("send shed predict");
    let (status, _) = client.recv().expect("shed response");
    assert_eq!(status, 503, "dead cluster must shed");
    let (status, body) = client
        .get(&format!("/traces/{:032x}", shed_ctx.trace_id))
        .expect("shed trace fetch");
    assert_eq!(status, 200, "the shed trace was not retained: {body}");
    assert!(body.contains("\"status\":\"shed\""), "{body}");
    assert!(body.contains("gateway.request"), "{body}");

    dead_gw.stop();
}
