//! The extensibility proof the `DynWorkload` refactor exists for: a
//! brand-new scenario is registered **at runtime** with one catalog call
//! and then trained, persisted, reloaded, and served over real HTTP —
//! without touching a single line of `lam-serve` source. Alongside it:
//! the dataset-memoization guarantee (training every model family for
//! one workload runs exactly one oracle sweep, counted by a probe
//! workload) and the catalog-lookup error paths (unknown names in
//! `/predict`, in `FromStr`, and in saved-model envelopes).

use lam_analytical::traits::{AnalyticalModel, ConstantModel};
use lam_core::catalog::{CatalogError, DynWorkload, WorkloadCatalog};
use lam_core::hybrid::HybridConfig;
use lam_core::workload::Workload;
use lam_data::Dataset;
use lam_serve::http::{
    self, PredictRequest, PredictResponse, ServerOptions, WorkloadInfo, WorkloadsResponse,
};
use lam_serve::loadgen::HttpClient;
use lam_serve::persist::{ModelKind, SavedModel};
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use lam_serve::ServeError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_dynamic_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A scenario `lam-serve` has never heard of: a synthetic "pipelined
/// reduction" with a `(size, lanes)` tuning space, implemented as a plain
/// generic [`Workload`] — the catalog's blanket adapter erases it.
struct ReductionWorkload {
    configs: Vec<(u64, u64)>,
}

impl ReductionWorkload {
    fn new() -> Self {
        let mut configs = Vec::new();
        for size in [256u64, 512, 1024, 2048, 4096] {
            for lanes in 1..=8u64 {
                configs.push((size, lanes));
            }
        }
        Self { configs }
    }
}

impl Workload for ReductionWorkload {
    type Config = (u64, u64);

    fn name(&self) -> &str {
        "reduction-demo"
    }

    fn feature_names(&self) -> Vec<String> {
        vec!["size".to_string(), "lanes".to_string()]
    }

    fn param_space(&self) -> &[(u64, u64)] {
        &self.configs
    }

    fn features(&self, cfg: &(u64, u64)) -> Vec<f64> {
        vec![cfg.0 as f64, cfg.1 as f64]
    }

    fn execution_time(&self, cfg: &(u64, u64)) -> f64 {
        // Deterministic, positive, non-trivial: linear in size, saturating
        // speedup in lanes, plus keyed pseudo-noise.
        let (size, lanes) = (cfg.0 as f64, cfg.1 as f64);
        let jitter = 1.0 + 0.05 * (((cfg.0.wrapping_mul(2654435761) ^ cfg.1) % 89) as f64 / 89.0);
        1e-6 * size / lanes.sqrt() * jitter
    }

    fn problem_size(&self, cfg: &(u64, u64)) -> f64 {
        cfg.0 as f64
    }

    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        Box::new(ConstantModel(1e-3))
    }
}

#[test]
fn runtime_registered_workload_trains_persists_and_serves_over_http() {
    // One registration call; zero lam-serve edits.
    WorkloadCatalog::global()
        .register_workload("reduction-demo", ReductionWorkload::new())
        .expect("fresh name registers");

    // The serving layer resolves it like any built-in.
    let id = WorkloadId::get("reduction-demo").expect("registered name resolves");
    assert_eq!(id.n_features(), 2);
    assert_eq!(id.space_size(), 40);
    assert_eq!("reduction-demo".parse::<WorkloadId>().unwrap(), id);
    assert!(WorkloadId::all().contains(&id));

    // Train + persist every model family, then "restart" and reload from
    // disk with bit-identical predictions — the persistence round trip a
    // dynamically registered workload must survive.
    let root = temp_root("e2e");
    let rows = id.sample_rows(16);
    let mut before = Vec::new();
    {
        let registry = ModelRegistry::new(root.clone());
        for kind in ModelKind::all() {
            let key = ModelKey::new(id, kind, 1);
            let model = registry.get(key).expect("train-on-miss");
            assert!(registry.path_for(key).is_file(), "{kind} persisted");
            before.push(model.predict(&rows).predictions);
        }
    }
    let registry = Arc::new(ModelRegistry::new(root));
    for (kind, expected) in ModelKind::all().into_iter().zip(&before) {
        let reloaded = registry
            .get(ModelKey::new(id, kind, 1))
            .expect("loads from disk");
        let after = reloaded.predict(&rows).predictions;
        for (a, b) in expected.iter().zip(&after) {
            assert_eq!(a.to_bits(), b.to_bits(), "{kind} diverged after reload");
        }
    }

    // Serve it over a real socket.
    let handle = http::start(
        Arc::clone(&registry),
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connects");

    // /workloads discovers the runtime registration.
    let (status, body) = client.get("/workloads").unwrap();
    assert_eq!(status, 200);
    let listed: WorkloadsResponse = serde_json::from_str(&body).unwrap();
    let entry = listed
        .workloads
        .iter()
        .find(|w| w.name == "reduction-demo")
        .expect("runtime workload listed");
    assert_eq!(entry.feature_names, vec!["size", "lanes"]);
    assert_eq!(entry.n_features, 2);
    assert_eq!(entry.space_size, 40);
    let (status, body) = client.get("/workloads/reduction-demo").unwrap();
    assert_eq!(status, 200);
    let detail: WorkloadInfo = serde_json::from_str(&body).unwrap();
    assert_eq!(detail.name, "reduction-demo");

    // /predict answers with the served model's own predictions.
    let request = PredictRequest {
        workload: "reduction-demo".to_string(),
        kind: "hybrid".to_string(),
        version: Some(1),
        rows: rows.clone(),
    };
    let (status, body) = client
        .post("/predict", &serde_json::to_string(&request).unwrap())
        .unwrap();
    assert_eq!(status, 200, "body: {body}");
    let response: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.model, "reduction-demo/hybrid/v1");
    let hybrid_ix = ModelKind::all()
        .iter()
        .position(|k| *k == ModelKind::Hybrid)
        .unwrap();
    for (a, b) in response.predictions.iter().zip(&before[hybrid_ix]) {
        assert_eq!(a.to_bits(), b.to_bits(), "served != trained");
    }

    handle.stop();
}

/// A hand-rolled [`DynWorkload`] (no generic `Workload` behind it) that
/// counts oracle sweeps, proving the catalog memo pays exactly one.
struct ProbeWorkload;

static PROBE_SWEEPS: AtomicUsize = AtomicUsize::new(0);

impl DynWorkload for ProbeWorkload {
    fn name(&self) -> &str {
        "memo-probe"
    }

    fn feature_names(&self) -> Vec<String> {
        vec!["x".to_string(), "x2".to_string()]
    }

    fn space_size(&self) -> usize {
        48
    }

    fn feature_rows(&self) -> Vec<Vec<f64>> {
        (1..=48).map(|i| vec![i as f64, (i * i) as f64]).collect()
    }

    fn measure(&self, index: usize) -> f64 {
        // One point, not a sweep: must not bump the sweep counter.
        let row = &self.feature_rows()[index];
        1e-3 * row[0] + 1e-6 * row[1]
    }

    fn generate_dataset(&self) -> Dataset {
        PROBE_SWEEPS.fetch_add(1, Ordering::SeqCst);
        let mut data = Dataset::empty(self.feature_names());
        for row in self.feature_rows() {
            data.push(&row, 1e-3 * row[0] + 1e-6 * row[1]);
        }
        data
    }

    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        Box::new(ConstantModel(1e-3))
    }

    fn hybrid_config(&self) -> HybridConfig {
        HybridConfig::default()
    }
}

#[test]
fn training_all_model_kinds_generates_the_dataset_exactly_once() {
    WorkloadCatalog::global()
        .register("memo-probe", Box::new(ProbeWorkload))
        .expect("fresh name registers");
    let id = WorkloadId::get("memo-probe").unwrap();

    assert_eq!(PROBE_SWEEPS.load(Ordering::SeqCst), 0, "no eager sweep");
    let registry = ModelRegistry::new(temp_root("memo"));
    for kind in ModelKind::all() {
        registry
            .get(ModelKey::new(id, kind, 1))
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
    assert_eq!(
        PROBE_SWEEPS.load(Ordering::SeqCst),
        1,
        "training all {} model kinds must run exactly one oracle sweep",
        ModelKind::all().len()
    );
}

#[test]
fn catalog_lookup_error_paths() {
    // Unknown name: typed error from the handle lookup and from FromStr.
    assert!(matches!(
        WorkloadId::get("never-registered"),
        Err(ServeError::UnknownWorkload(n)) if n == "never-registered"
    ));
    assert!("never-registered".parse::<WorkloadId>().is_err());

    // Unknown name inside a saved-model envelope: the artifact must fail
    // to load, not produce an unservable id.
    let dir = temp_root("envelope");
    std::fs::create_dir_all(&dir).unwrap();
    let fmm_small = WorkloadId::get("fmm-small").unwrap();
    let trained = lam_serve::registry::train(ModelKey::new(fmm_small, ModelKind::Linear, 1))
        .expect("training succeeds");
    let json = serde_json::to_string(&trained).unwrap();
    let tampered = json.replace("\"fmm-small\"", "\"never-registered\"");
    assert_ne!(json, tampered, "envelope must embed the workload name");
    let path = dir.join("never-registered__linear__v1.json");
    std::fs::write(&path, tampered).unwrap();
    let err = SavedModel::load(&path).expect_err("unknown workload must not load");
    assert!(
        err.to_string().contains("unknown workload"),
        "unexpected error: {err}"
    );

    // Registration rejects duplicate and malformed names with typed
    // errors, leaving the original entries intact.
    assert!(matches!(
        WorkloadCatalog::global().register("fmm-small", Box::new(ProbeWorkload)),
        Err(CatalogError::Duplicate(_))
    ));
    assert!(matches!(
        WorkloadCatalog::global().register("Not_Kebab", Box::new(ProbeWorkload)),
        Err(CatalogError::InvalidName(_))
    ));
    assert_eq!(WorkloadId::get("fmm-small").unwrap().n_features(), 4);
}
