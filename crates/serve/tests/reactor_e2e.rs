//! End-to-end tests for the event-driven serve core: pipelining with
//! strict response ordering, graceful drain, load shedding under
//! overload, slowloris/oversized-head defenses, idle reaping, and
//! cross-connection micro-batch formation — all over real sockets
//! against a real server.

use lam_serve::http::{self, PredictRequest, ServeConfig, ServerOptions};
use lam_serve::loadgen::{self, HttpClient, LoadMode, LoadgenOptions, MetricsScrape};
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_reactor_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

fn base_config(workers: usize) -> ServeConfig {
    ServeConfig::new(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerOptions::default()
    })
}

/// One parsed raw response: status, headers (lowercased names), body.
struct RawResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl RawResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read exactly `n` pipelined responses off a raw socket.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<RawResponse> {
    let mut bytes = Vec::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(30);
    while out.len() < n {
        // Parse as many complete responses as the buffer holds.
        while out.len() < n {
            let Some(head_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") else {
                break;
            };
            let head = String::from_utf8(bytes[..head_end].to_vec()).expect("ascii head");
            let mut lines = head.split("\r\n");
            let status: u16 = lines
                .next()
                .expect("status line")
                .split_whitespace()
                .nth(1)
                .expect("status code")
                .parse()
                .expect("numeric status");
            let headers: Vec<(String, String)> = lines
                .filter_map(|l| l.split_once(':'))
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
                .collect();
            let content_length: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .map(|(_, v)| v.parse().expect("numeric content-length"))
                .unwrap_or(0);
            if bytes.len() < head_end + 4 + content_length {
                break;
            }
            let body =
                String::from_utf8(bytes[head_end + 4..head_end + 4 + content_length].to_vec())
                    .expect("utf-8 body");
            bytes.drain(..head_end + 4 + content_length);
            out.push(RawResponse {
                status,
                headers,
                body,
            });
        }
        if out.len() >= n {
            break;
        }
        assert!(Instant::now() < deadline, "timed out awaiting responses");
        match stream.read(&mut chunk) {
            Ok(0) => panic!(
                "server closed after {} of {n} expected responses",
                out.len()
            ),
            Ok(read) => bytes.extend_from_slice(&chunk[..read]),
            Err(e) => panic!("read failed after {} responses: {e}", out.len()),
        }
    }
    out
}

fn raw_request(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Read until EOF, returning everything received (for close-after-error
/// paths where the response count is exactly one).
fn read_to_eof(stream: &mut TcpStream) -> String {
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    text
}

#[test]
fn pipelined_requests_answer_strictly_in_order() {
    let registry = Arc::new(ModelRegistry::new(temp_root("pipeline")));
    // Train ahead of time so pipelined /predict answers are fast.
    registry
        .get(ModelKey::new(wid("fmm-small"), ModelKind::Linear, 1))
        .expect("trains");
    let handle = http::start_with(Arc::clone(&registry), base_config(2)).expect("binds");
    let addr = handle.local_addr();

    let rows = wid("fmm-small").sample_rows(1);
    let predict_body = serde_json::to_string(&PredictRequest {
        workload: "fmm-small".to_string(),
        kind: "linear".to_string(),
        version: Some(1),
        rows,
    })
    .unwrap();
    // A mixed pipeline: sync routes and scheduler-routed predicts
    // interleaved. Responses must come back in exactly this order even
    // though predict completions arrive from scheduler workers.
    let plan: Vec<(&str, &str, &str, &str)> = vec![
        ("GET", "/healthz", "", "\"uptime_ms\""),
        ("POST", "/predict", &predict_body, "\"predictions\""),
        ("GET", "/workloads/fmm-small", "", "\"fmm-small\""),
        ("POST", "/predict", &predict_body, "\"predictions\""),
        ("GET", "/workloads/spmv-small", "", "\"spmv-small\""),
        ("POST", "/predict", &predict_body, "\"predictions\""),
        ("GET", "/healthz", "", "\"uptime_ms\""),
    ];
    let mut stream = TcpStream::connect(addr).expect("connects");
    let mut wire = String::new();
    for (method, path, body, _) in &plan {
        wire.push_str(&raw_request(method, path, body));
    }
    stream.write_all(wire.as_bytes()).expect("writes pipeline");

    let responses = read_responses(&mut stream, plan.len());
    for (i, (resp, (method, path, _, marker))) in responses.iter().zip(&plan).enumerate() {
        assert_eq!(resp.status, 200, "request {i} ({method} {path})");
        assert!(
            resp.body.contains(marker),
            "response {i} out of order: expected {method} {path} (marker {marker}), got {}",
            resp.body
        );
    }
    handle.stop();
}

#[test]
fn graceful_drain_finishes_in_flight_requests() {
    let registry = Arc::new(ModelRegistry::new(temp_root("drain")));
    registry
        .get(ModelKey::new(wid("fmm-small"), ModelKind::Linear, 1))
        .expect("trains");
    let mut cfg = base_config(2);
    // The in-flight request must win over the drain deadline, not race it.
    cfg.drain_deadline = Duration::from_secs(30);
    let handle = http::start_with(Arc::clone(&registry), cfg).expect("binds");
    let addr = handle.local_addr();

    // A /tune request does real server-side work (model-guided search over
    // the configuration space), so it is still in flight when shutdown
    // begins.
    let tune_body = r#"{"workload":"fmm-small","strategy":"random","kind":"linear","budget":48,"top_k":3,"seed":7}"#;
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .write_all(raw_request("POST", "/tune", tune_body).as_bytes())
        .expect("writes");
    std::thread::sleep(Duration::from_millis(30));

    let reader = std::thread::spawn(move || read_responses(&mut stream, 1));
    handle.stop(); // must wait for the in-flight tune, not abandon it
    let responses = reader.join().expect("reader thread");
    assert_eq!(responses[0].status, 200, "body: {}", responses[0].body);
    assert!(responses[0].body.contains("\"report\""));

    // The server is gone: new connections are refused or dead.
    assert!(
        TcpStream::connect(addr).is_err() || {
            let mut c = HttpClient::connect(&addr.to_string()).unwrap();
            c.get("/healthz").is_err()
        }
    );
}

#[test]
fn overload_sheds_503_with_retry_after_and_survives() {
    let registry = Arc::new(ModelRegistry::new(temp_root("overload")));
    registry
        .get(ModelKey::new(wid("fmm-small"), ModelKind::Linear, 1))
        .expect("trains");
    // One handler thread and a single-slot dispatch queue: a deep
    // pipeline must overflow it.
    let mut cfg = base_config(1);
    cfg.dispatch_queue = 1;
    cfg.pipeline_depth = 64;
    let handle = http::start_with(Arc::clone(&registry), cfg).expect("binds");
    let addr = handle.local_addr();

    let rows = wid("fmm-small").sample_rows(2);
    let body = serde_json::to_string(&PredictRequest {
        workload: "fmm-small".to_string(),
        kind: "linear".to_string(),
        version: Some(1),
        rows,
    })
    .unwrap();
    let total = 60;
    let mut stream = TcpStream::connect(addr).expect("connects");
    let mut wire = String::new();
    for _ in 0..total {
        wire.push_str(&raw_request("POST", "/predict", &body));
    }
    stream.write_all(wire.as_bytes()).expect("writes burst");

    let responses = read_responses(&mut stream, total);
    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed: Vec<&RawResponse> = responses.iter().filter(|r| r.status == 503).collect();
    let other = responses
        .iter()
        .filter(|r| r.status != 200 && r.status != 503)
        .count();
    assert!(ok >= 1, "some requests must be served ({ok} of {total})");
    assert!(
        !shed.is_empty(),
        "a 1-deep dispatch queue under a {total}-request burst must shed"
    );
    assert_eq!(other, 0, "only 200s and 503s are acceptable");
    for r in &shed {
        assert_eq!(
            r.header("retry-after"),
            Some("1"),
            "every shed response tells the client when to return"
        );
    }

    // Shedding is survival, not failure: the same connection and fresh
    // connections keep working, and the shed counter says why.
    stream
        .write_all(raw_request("GET", "/healthz", "").as_bytes())
        .expect("same connection still works");
    let after = read_responses(&mut stream, 1);
    assert_eq!(after[0].status, 200);

    let mut client = HttpClient::connect(&addr.to_string()).expect("fresh connection");
    let scrape = MetricsScrape::fetch(&mut client).expect("scrapes");
    assert!(
        scrape.counter_with_label("lam_requests_shed_total", ("reason", "dispatch-queue"))
            >= shed.len() as u64,
        "shed responses must be attributed to the dispatch queue"
    );
    handle.stop();
}

#[test]
fn slowloris_connections_get_408_within_the_header_timeout() {
    let registry = Arc::new(ModelRegistry::new(temp_root("slowloris")));
    let mut cfg = base_config(1);
    cfg.header_timeout = Duration::from_millis(150);
    let handle = http::start_with(registry, cfg).expect("binds");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Trickle a partial request and stall mid-header, holding the
    // connection hostage the way a slowloris client would.
    stream
        .write_all(b"POST /predict HTTP/1.1\r\ncontent-le")
        .expect("partial write");
    let started = Instant::now();
    let text = read_to_eof(&mut stream);
    assert!(
        text.starts_with("HTTP/1.1 408 "),
        "stalled request must get 408, got: {text:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "408 must arrive promptly, not at some long idle cutoff"
    );
    handle.stop();
}

#[test]
fn oversized_request_heads_are_rejected_not_buffered() {
    let registry = Arc::new(ModelRegistry::new(temp_root("bighead")));
    let handle = http::start_with(registry, base_config(1)).expect("binds");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    // Headers forever, no terminating blank line; the server must cut
    // this off at its head cap instead of buffering without bound.
    let filler = format!("x-filler: {}\r\n", "y".repeat(120));
    for _ in 0..((16 << 10) / filler.len() + 4) {
        if stream.write_all(filler.as_bytes()).is_err() {
            break; // server already closed on us — also acceptable
        }
    }
    let text = read_to_eof(&mut stream);
    assert!(
        text.starts_with("HTTP/1.1 400 "),
        "oversized head must get 400, got: {text:?}"
    );
    assert!(text.contains("exceed"), "diagnostic names the cap: {text}");
    handle.stop();
}

#[test]
fn idle_connections_are_reaped() {
    let registry = Arc::new(ModelRegistry::new(temp_root("idle")));
    let mut cfg = base_config(1);
    cfg.idle_timeout = Duration::from_millis(150);
    let handle = http::start_with(registry, cfg).expect("binds");
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A completed request keeps the connection alive...
    stream
        .write_all(raw_request("GET", "/healthz", "").as_bytes())
        .unwrap();
    let first = read_responses(&mut stream, 1);
    assert_eq!(first[0].status, 200);
    // ...but going quiet past the idle timeout gets it closed (EOF, no
    // error response — an idle keep-alive is not a protocol violation).
    let text = read_to_eof(&mut stream);
    assert_eq!(text, "", "idle close is silent");
    handle.stop();
}

#[test]
fn connection_cap_sheds_new_connections_with_503() {
    let registry = Arc::new(ModelRegistry::new(temp_root("conncap")));
    let mut cfg = base_config(1);
    cfg.max_connections = 1;
    let handle = http::start_with(registry, cfg).expect("binds");
    let addr = handle.local_addr();

    // First connection occupies the only slot.
    let mut first = TcpStream::connect(addr).expect("connects");
    first
        .write_all(raw_request("GET", "/healthz", "").as_bytes())
        .unwrap();
    assert_eq!(read_responses(&mut first, 1)[0].status, 200);

    // The second is told to come back, then closed.
    let mut second = TcpStream::connect(addr).expect("tcp accept still happens");
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let text = read_to_eof(&mut second);
    assert!(
        text.starts_with("HTTP/1.1 503 "),
        "over-cap connection must get 503, got: {text:?}"
    );
    assert!(text.contains("retry-after: 1"), "{text}");

    // The first connection is unaffected.
    first
        .write_all(raw_request("GET", "/healthz", "").as_bytes())
        .unwrap();
    assert_eq!(read_responses(&mut first, 1)[0].status, 200);
    handle.stop();
}

#[test]
fn concurrent_single_row_traffic_forms_cross_connection_batches() {
    let registry = Arc::new(ModelRegistry::new(temp_root("occupancy")));
    registry
        .get(ModelKey::new(wid("fmm-small"), ModelKind::Linear, 1))
        .expect("trains");
    let mut cfg = base_config(4);
    // A slightly longer coalescing window makes batch formation robust on
    // a single-core CI box; correctness does not depend on it.
    cfg.batch.flush_deadline = Duration::from_millis(1);
    let handle = http::start_with(Arc::clone(&registry), cfg).expect("binds");
    let addr = handle.local_addr().to_string();

    let before = {
        let mut c = HttpClient::connect(&addr).expect("scrape conn");
        MetricsScrape::fetch(&mut c).expect("scrapes")
    };
    let report = loadgen::run(&LoadgenOptions {
        addrs: vec![addr.clone()],
        workload: wid("fmm-small"),
        kind: ModelKind::Linear,
        version: 1,
        seconds: 1.5,
        connections: 4,
        batch: 1, // single-row requests: any batching must come from coalescing
        pool: 64,
        mode: LoadMode::Pipeline(8),
    })
    .expect("loadgen runs");
    assert_eq!(report.errors, 0, "no transport errors");
    assert!(report.requests > 0);

    let mut c = HttpClient::connect(&addr).expect("scrape conn");
    let after = MetricsScrape::fetch(&mut c).expect("scrapes");
    let (c0, s0) = before.histogram_totals("lam_batch_occupancy", None);
    let (c1, s1) = after.histogram_totals("lam_batch_occupancy", None);
    let (flushes, submissions) = (c1 - c0, s1 - s0);
    assert!(flushes > 0, "the scheduler must have executed batches");
    let occupancy = submissions as f64 / flushes as f64;
    assert!(
        occupancy > 1.0,
        "single-row requests from 4 pipelined connections must coalesce \
         (mean occupancy {occupancy:.3} over {flushes} flushes)"
    );
    assert!(
        after.gauge_total("lam_connections_open") >= 1,
        "the scrape's own connection is registered with the reactor"
    );
    handle.stop();
}
