//! HTTP robustness suite: hostile or broken `/predict` traffic must come
//! back as 4xx client errors without killing worker threads or the
//! server, and — the PR-3 regression — non-finite feature values must be
//! rejected *before* model dispatch instead of panicking k-NN's distance
//! sort inside the handler.
//!
//! Every scenario drives a real server over a real socket and then proves
//! the same connection (or a fresh one, where the protocol demands a
//! close) still serves a valid request.

use lam_serve::http::{
    self, PredictRequest, PredictResponse, ServerOptions, WorkloadInfo, WorkloadsResponse,
};
use lam_serve::loadgen::HttpClient;
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use std::sync::Arc;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_http_robustness_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

/// Server over a fresh registry with a k-NN model for the small SpMV
/// space pre-trained (k-NN is the family whose distance sort the original
/// NaN panic reached).
fn start(tag: &str, max_body: usize) -> (http::ServerHandle, Arc<ModelRegistry>, String) {
    let registry = Arc::new(ModelRegistry::new(temp_root(tag)));
    registry
        .get(ModelKey::new(wid("spmv-small"), ModelKind::Knn, 1))
        .expect("train k-NN on spmv-small");
    let handle = http::start(
        Arc::clone(&registry),
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_body,
        },
    )
    .expect("server binds");
    let addr = handle.local_addr().to_string();
    (handle, registry, addr)
}

fn valid_body() -> String {
    serde_json::to_string(&PredictRequest {
        workload: "spmv-small".to_string(),
        kind: "knn".to_string(),
        version: Some(1),
        rows: wid("spmv-small").sample_rows(2),
    })
    .expect("serializes")
}

/// Prove `client`'s connection still works by completing a valid predict.
fn assert_connection_usable(client: &mut HttpClient) {
    let (status, body) = client.post("/predict", &valid_body()).expect("round-trip");
    assert_eq!(status, 200, "body: {body}");
    let parsed: PredictResponse = serde_json::from_str(&body).expect("parses");
    assert_eq!(parsed.predictions.len(), 2);
    assert!(parsed.predictions.iter().all(|p| p.is_finite()));
}

#[test]
fn non_finite_feature_rows_return_400_and_connection_survives() {
    let (handle, _registry, addr) = start("nonfinite", 1 << 20);
    let mut client = HttpClient::connect(&addr).expect("connects");

    // `1e999` parses to +inf — the non-finite value JSON can actually
    // smuggle in. Before the fix this reached the k-NN distance sort and
    // panicked the worker; now it must be a clean 400.
    let rows = wid("spmv-small").sample_rows(1);
    let inf_body = format!(
        r#"{{"workload":"spmv-small","kind":"knn","rows":[[1e999,{},{},{}]]}}"#,
        rows[0][1], rows[0][2], rows[0][3]
    );
    let (status, body) = client.post("/predict", &inf_body).expect("round-trip");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("not finite"), "body: {body}");

    // A literal NaN token is not JSON at all: also 400, never a panic.
    let nan_body = r#"{"workload":"spmv-small","kind":"knn","rows":[[NaN,1,64,1]]}"#;
    let (status, _) = client.post("/predict", nan_body).expect("round-trip");
    assert_eq!(status, 400);

    // The same keep-alive connection still serves valid traffic.
    assert_connection_usable(&mut client);
    handle.stop();
}

#[test]
fn bad_rows_never_trigger_train_on_miss() {
    let (handle, registry, addr) = start("notrain", 1 << 20);
    let mut client = HttpClient::connect(&addr).expect("connects");

    // A request for an untrained key with invalid rows must be rejected
    // before the registry resolves (and would otherwise train) the model.
    let untrained = ModelKey::new(wid("spmv-small"), ModelKind::Cart, 1);
    assert!(!registry.path_for(untrained).exists());
    let body = r#"{"workload":"spmv-small","kind":"cart","rows":[[1e999,3,64,1]]}"#;
    let (status, _) = client.post("/predict", body).expect("round-trip");
    assert_eq!(status, 400);
    let body = r#"{"workload":"spmv-small","kind":"cart","rows":[[1,2]]}"#;
    let (status, _) = client.post("/predict", body).expect("round-trip");
    assert_eq!(status, 400);
    assert!(
        !registry.path_for(untrained).exists(),
        "invalid rows must not cost a training run"
    );
    handle.stop();
}

#[test]
fn wrong_arity_rows_return_400_and_connection_survives() {
    let (handle, _registry, addr) = start("arity", 1 << 20);
    let mut client = HttpClient::connect(&addr).expect("connects");
    for rows in ["[[1.0]]", "[[1,2,3,4,5]]", "[[]]", "[[1,2,3,4],[1,2]]"] {
        let body = format!(r#"{{"workload":"spmv-small","kind":"knn","rows":{rows}}}"#);
        let (status, body) = client.post("/predict", &body).expect("round-trip");
        assert_eq!(status, 400, "rows {rows}: {body}");
        assert!(body.contains("features"), "rows {rows}: {body}");
    }
    assert_connection_usable(&mut client);
    handle.stop();
}

#[test]
fn malformed_json_returns_400_and_connection_survives() {
    let (handle, _registry, addr) = start("json", 1 << 20);
    let mut client = HttpClient::connect(&addr).expect("connects");
    for body in [
        "{not json",
        "",
        "null",
        r#"{"workload":"spmv-small"}"#,
        r#"{"workload":"no-such","kind":"knn","rows":[[1,2,3,4]]}"#,
        r#"{"workload":"spmv-small","kind":"no-such","rows":[[1,2,3,4]]}"#,
    ] {
        let (status, _) = client.post("/predict", body).expect("round-trip");
        assert_eq!(status, 400, "body `{body}`");
    }
    assert_connection_usable(&mut client);
    handle.stop();
}

#[test]
fn workloads_endpoint_lists_catalog_and_unknown_name_is_404() {
    let (handle, _registry, addr) = start("workloads", 1 << 20);
    let mut client = HttpClient::connect(&addr).expect("connects");

    // /workloads lists every servable scenario with its schema.
    let (status, body) = client.get("/workloads").expect("round-trip");
    assert_eq!(status, 200, "body: {body}");
    let parsed: WorkloadsResponse = serde_json::from_str(&body).expect("parses");
    for expected in ["stencil-grid", "fmm", "fmm-small", "spmv-small"] {
        assert!(
            parsed.workloads.iter().any(|w| w.name == expected),
            "{expected} missing from /workloads: {body}"
        );
    }
    for w in &parsed.workloads {
        assert_eq!(w.n_features, w.feature_names.len(), "{}", w.name);
        assert!(w.space_size > 0, "{}", w.name);
    }

    // /workloads/{name} answers one scenario's schema.
    let (status, body) = client.get("/workloads/spmv-small").expect("round-trip");
    assert_eq!(status, 200, "body: {body}");
    let detail: WorkloadInfo = serde_json::from_str(&body).expect("parses");
    assert_eq!(detail.name, "spmv-small");
    assert_eq!(detail.n_features, 4);
    assert!(detail.space_size >= 96);

    // An unknown name is a clean 404, and the connection survives.
    let (status, body) = client
        .get("/workloads/no-such-workload")
        .expect("round-trip");
    assert_eq!(status, 404, "body: {body}");
    assert!(body.contains("unknown workload"), "body: {body}");
    assert_connection_usable(&mut client);
    handle.stop();
}

#[test]
fn oversized_body_rejected_without_killing_the_server() {
    let (handle, _registry, addr) = start("oversized", 4096);
    let mut client = HttpClient::connect(&addr).expect("connects");
    let huge = format!(
        r#"{{"workload":"spmv-small","kind":"knn","rows":[[{}]]}}"#,
        "1.0,".repeat(4000) + "1.0"
    );
    assert!(huge.len() > 4096);
    let (status, body) = client.post("/predict", &huge).expect("round-trip");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("exceeds limit"), "body: {body}");

    // The protocol closes the connection after an over-limit body (it
    // cannot resynchronize), but the server itself must keep serving.
    let mut fresh = HttpClient::connect(&addr).expect("reconnects");
    assert_connection_usable(&mut fresh);
    handle.stop();
}
