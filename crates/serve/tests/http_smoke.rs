//! End-to-end serving smoke test, fully in-process and offline: train and
//! persist a hybrid model, serve it over a real TCP socket on a random
//! port, drive it with the load generator, and check the acceptance
//! properties — order-preserving batched responses that match direct
//! model predictions, non-zero cached throughput, a catalog that survives
//! "restart", and clean shutdown.

use lam_serve::http::{
    self, HealthResponse, ModelsResponse, PredictRequest, PredictResponse, ServerOptions,
};
use lam_serve::loadgen::{self, HttpClient, LoadgenOptions};
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use std::sync::Arc;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_http_smoke_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

fn start_server(registry: Arc<ModelRegistry>) -> http::ServerHandle {
    http::start(
        registry,
        ServerOptions {
            addr: "127.0.0.1:0".to_string(), // random free port
            workers: 4,
            ..ServerOptions::default()
        },
    )
    .expect("server binds")
}

#[test]
fn serve_restart_predict_and_loadgen_end_to_end() {
    let root = temp_root("e2e");
    let key = ModelKey::new(wid("fmm-small"), ModelKind::Hybrid, 1);

    // Phase 1: train + persist, then drop the registry (process "exit").
    {
        let registry = ModelRegistry::new(root.clone());
        registry.get(key).expect("train-on-miss");
        assert!(registry.path_for(key).is_file());
    }

    // Phase 2: a fresh registry ("restart") serves the artifact from disk.
    let registry = Arc::new(ModelRegistry::new(root));
    let model = registry.get(key).expect("loads from disk");
    let handle = start_server(Arc::clone(&registry));
    let addr = handle.local_addr().to_string();

    let mut client = HttpClient::connect(&addr).expect("connects");

    // /healthz
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health: HealthResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(health.status, "ok");
    assert!(health.models_loaded >= 1);

    // /models lists the persisted artifact.
    let (status, body) = client.get("/models").unwrap();
    assert_eq!(status, 200);
    let models: ModelsResponse = serde_json::from_str(&body).unwrap();
    assert!(models
        .models
        .iter()
        .any(|m| m.workload == "fmm-small" && m.kind == "hybrid" && m.version == 1));

    // /predict answers in request order with the model's own predictions.
    let rows = wid("fmm-small").sample_rows(96);
    let request = PredictRequest {
        workload: "fmm-small".to_string(),
        kind: "hybrid".to_string(),
        version: Some(1),
        rows: rows.clone(),
    };
    let (status, body) = client
        .post("/predict", &serde_json::to_string(&request).unwrap())
        .unwrap();
    assert_eq!(status, 200, "body: {body}");
    let response: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.predictions.len(), rows.len());
    for (i, row) in rows.iter().enumerate() {
        let expected = model.predict_row_uncached(row);
        assert_eq!(
            response.predictions[i].to_bits(),
            expected.to_bits(),
            "row {i} out of order or corrupted"
        );
    }

    // A second identical request is answered from the prediction cache.
    let (_, body) = client
        .post("/predict", &serde_json::to_string(&request).unwrap())
        .unwrap();
    let warm: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(warm.cache_hits, rows.len() as u64);
    assert_eq!(warm.predictions, response.predictions);

    // Bad requests are 4xx, not hangs.
    let (status, _) = client.post("/predict", "{not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .post(
            "/predict",
            r#"{"workload":"fmm-small","kind":"hybrid","rows":[[1.0]]}"#,
        )
        .unwrap();
    assert_eq!(status, 400, "feature-count mismatch is a client error");
    let (status, _) = client.get("/nope").unwrap();
    assert_eq!(status, 404);

    // Loadgen sustains real throughput against the cached model.
    let report = loadgen::run(&LoadgenOptions {
        addrs: vec![addr.clone()],
        workload: wid("fmm-small"),
        kind: ModelKind::Hybrid,
        version: 1,
        seconds: 1.0,
        connections: 3,
        batch: 64,
        pool: 192,
        mode: loadgen::LoadMode::Closed,
    })
    .expect("loadgen runs");
    assert_eq!(report.errors, 0);
    assert!(report.requests > 0);
    assert!(
        report.throughput > 0.0,
        "throughput {} not positive",
        report.throughput
    );
    assert!(report.p99_us >= report.p50_us);
    assert!(report.cache_hit_fraction > 0.5, "pool rotates into cache");

    // Clean shutdown: stop() joins all workers without hanging.
    handle.stop();
    // The port no longer accepts new work.
    assert!(
        HttpClient::connect(&addr).is_err() || {
            // Accepted by OS backlog but nobody serves: a request must fail.
            let mut c = HttpClient::connect(&addr).unwrap();
            c.get("/healthz").is_err()
        }
    );
}

#[test]
fn spmv_small_served_for_all_model_kinds() {
    // The third scenario must be a first-class citizen of the serving
    // path: every model family trains, persists, and answers `/predict`
    // for `spmv-small` exactly like the paper's scenarios.
    let root = temp_root("spmv_kinds");
    let registry = Arc::new(ModelRegistry::new(root));
    let handle = start_server(Arc::clone(&registry));
    let addr = handle.local_addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connects");

    let rows = wid("spmv-small").sample_rows(8);
    for kind in ModelKind::all() {
        let request = PredictRequest {
            workload: "spmv-small".to_string(),
            kind: kind.to_string(),
            version: Some(1),
            rows: rows.clone(),
        };
        let (status, body) = client
            .post("/predict", &serde_json::to_string(&request).unwrap())
            .unwrap();
        assert_eq!(status, 200, "kind {kind}: {body}");
        let response: PredictResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(response.model, format!("spmv-small/{kind}/v1"));
        assert_eq!(response.predictions.len(), rows.len());
        assert!(
            response.predictions.iter().all(|p| p.is_finite()),
            "kind {kind}: predictions must be finite: {:?}",
            response.predictions
        );
        // Tree-based families average training responses, so they stay
        // positive; the unconstrained linear family is exempt.
        if kind != ModelKind::Linear {
            assert!(
                response.predictions.iter().all(|p| *p > 0.0),
                "kind {kind}: predictions must be positive times: {:?}",
                response.predictions
            );
        }
        let key = ModelKey::new(wid("spmv-small"), kind, 1);
        assert!(registry.path_for(key).is_file(), "kind {kind} persisted");
    }
    handle.stop();
}

#[test]
fn predict_trains_on_miss_over_http() {
    let root = temp_root("miss");
    let registry = Arc::new(ModelRegistry::new(root));
    let handle = start_server(Arc::clone(&registry));
    let addr = handle.local_addr().to_string();

    // No artifact exists; the first request trains, persists, and serves.
    let key = ModelKey::new(wid("fmm-small"), ModelKind::Linear, 1);
    assert!(!registry.path_for(key).is_file());
    let request = PredictRequest {
        workload: "fmm-small".to_string(),
        kind: "linear".to_string(),
        version: None, // defaults to v1
        rows: wid("fmm-small").sample_rows(4),
    };
    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, body) = client
        .post("/predict", &serde_json::to_string(&request).unwrap())
        .unwrap();
    assert_eq!(status, 200, "body: {body}");
    let response: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.model, "fmm-small/linear/v1");
    assert_eq!(response.predictions.len(), 4);
    assert!(registry.path_for(key).is_file(), "artifact persisted");

    handle.stop();
}
