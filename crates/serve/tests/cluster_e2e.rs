//! End-to-end cluster-gateway tests, fully in-process and offline: real
//! backends on random TCP ports fronted by a real gateway, driven over
//! real sockets.
//!
//! Metrics are process-global, so every server in this binary shares one
//! registry. All assertions on counters therefore use *deltas* bracketing
//! the action under test, and the peer-replication test owns the `cart`
//! model kind exclusively (no other test here may train or fetch a cart
//! model) so its no-duplicate-training assertion cannot race a sibling
//! test thread.

use lam_serve::cluster::{start_gateway, GatewayConfig, GatewayHandle, GatewayHealthResponse};
use lam_serve::http::{self, PredictRequest, PredictResponse, ServerOptions};
use lam_serve::loadgen::{HttpClient, MetricsScrape};
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::route::HashRing;
use lam_serve::workload::WorkloadId;
use std::sync::Arc;
use std::time::Duration;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_cluster_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

fn start_backend(registry: Arc<ModelRegistry>) -> http::ServerHandle {
    http::start(
        registry,
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("backend binds")
}

/// A gateway over `backends` with test-friendly timings (fast probes,
/// instant ejection on the first hard connect failure).
fn gateway_over(backends: Vec<String>, replicas: usize) -> GatewayHandle {
    let mut cfg = GatewayConfig::new(backends);
    cfg.serve.opts.workers = 2;
    cfg.replicas = replicas;
    cfg.probe_interval = Duration::from_millis(100);
    cfg.fail_threshold = 1;
    cfg.recover_threshold = 1;
    start_gateway(cfg).expect("gateway binds")
}

fn predict_body(workload: &str, kind: &str, rows: Vec<Vec<f64>>) -> String {
    serde_json::to_string(&PredictRequest {
        workload: workload.to_string(),
        kind: kind.to_string(),
        version: Some(1),
        rows,
    })
    .expect("request serializes")
}

fn scrape(addr: &str) -> MetricsScrape {
    let mut c = HttpClient::connect(addr).expect("scrape connection");
    MetricsScrape::fetch(&mut c).expect("metrics scrape")
}

/// Gateway upstream 2xx count for one backend address (both labels
/// pinned — `counter_with_label` would sum across status classes).
fn upstream_2xx(s: &MetricsScrape, backend: &str) -> u64 {
    s.counters
        .iter()
        .filter(|c| c.name == "lam_gateway_upstream_requests_total")
        .filter(|c| c.labels.get("backend").is_some_and(|v| v == backend))
        .filter(|c| c.labels.get("status").is_some_and(|v| v == "2xx"))
        .map(|c| c.value.max(0) as u64)
        .sum()
}

/// Which backend absorbed the upstream delta between two scrapes.
fn delta_owner<'a>(
    before: &MetricsScrape,
    after: &MetricsScrape,
    backends: &'a [String],
) -> &'a str {
    let deltas: Vec<u64> = backends
        .iter()
        .map(|b| upstream_2xx(after, b).saturating_sub(upstream_2xx(before, b)))
        .collect();
    let total: u64 = deltas.iter().sum();
    assert!(total > 0, "no upstream traffic was recorded");
    let (idx, _) = deltas
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .expect("non-empty backend list");
    &backends[idx]
}

#[test]
fn routing_is_deterministic_across_gateway_restarts() {
    let root = temp_root("restart");
    let registry = Arc::new(ModelRegistry::new(root));
    let b1 = start_backend(Arc::clone(&registry));
    let b2 = start_backend(Arc::clone(&registry));
    let backends = vec![b1.local_addr().to_string(), b2.local_addr().to_string()];
    let body = predict_body("fmm-small", "linear", vec![vec![2.0, 8192.0, 64.0, 4.0]]);

    let route_once = |gw_addr: &str| -> String {
        let before = scrape(gw_addr);
        let mut client = HttpClient::connect(gw_addr).expect("gateway connection");
        for _ in 0..3 {
            let (status, _) = client.post("/predict", &body).expect("predict");
            assert_eq!(status, 200);
        }
        let after = scrape(gw_addr);
        delta_owner(&before, &after, &backends).to_string()
    };

    let gw1 = gateway_over(backends.clone(), 1);
    let owner1 = route_once(&gw1.local_addr().to_string());
    gw1.stop();

    // A brand-new gateway process over the same backend list must route
    // the same key to the same backend — the ring is derived from the
    // backend addresses alone.
    let gw2 = gateway_over(backends.clone(), 1);
    let owner2 = route_once(&gw2.local_addr().to_string());
    gw2.stop();
    assert_eq!(owner1, owner2, "gateway restart moved the key");

    // And the owner is exactly what the hash ring predicts.
    let ring = HashRing::new(&backends, 64);
    let predicted = &backends[ring.primary("fmm-small", "linear").unwrap()];
    assert_eq!(&owner1, predicted, "live routing disagrees with the ring");

    b1.stop();
    b2.stop();
}

#[test]
fn scatter_gather_preserves_row_order_under_pipelining() {
    let root = temp_root("order");
    // Pre-train once; both backends load the identical artifact so any
    // chunk interleaving mistake shows up as a prediction mismatch.
    let key = ModelKey::new(wid("stencil-grid"), ModelKind::Linear, 1);
    ModelRegistry::new(root.clone())
        .get(key)
        .expect("pre-train");
    let b1 = start_backend(Arc::new(ModelRegistry::new(root.clone())));
    let b2 = start_backend(Arc::new(ModelRegistry::new(root.clone())));
    let backends = vec![b1.local_addr().to_string(), b2.local_addr().to_string()];
    let gw = gateway_over(backends, 2);
    let gw_addr = gw.local_addr().to_string();

    // Distinct row blocks; each request must scatter (5 rows over 2
    // replicas -> 3+2 chunks).
    let pool = wid("stencil-grid").sample_rows(40);
    let bodies: Vec<String> = (0..8)
        .map(|i| {
            let rows: Vec<Vec<f64>> = (0..5)
                .map(|j| pool[(5 * i + j) % pool.len()].clone())
                .collect();
            predict_body("stencil-grid", "linear", rows)
        })
        .collect();

    // Ground truth straight from one backend.
    let direct_addr = b1.local_addr().to_string();
    let mut direct_client = HttpClient::connect(&direct_addr).expect("direct connection");
    let direct: Vec<Vec<f64>> = bodies
        .iter()
        .map(|b| {
            let (status, body) = direct_client.post("/predict", b).expect("direct predict");
            assert_eq!(status, 200);
            serde_json::from_str::<PredictResponse>(&body)
                .unwrap()
                .predictions
        })
        .collect();

    // Same bodies through the gateway, pipelined 4 deep: responses must
    // come back in order and each must carry its own request's rows.
    let mut client = HttpClient::connect(&gw_addr).expect("gateway connection");
    let depth = 4;
    let mut results: Vec<Vec<f64>> = Vec::new();
    let mut inflight = 0usize;
    let mut next = 0usize;
    while results.len() < bodies.len() {
        while inflight < depth && next < bodies.len() {
            client
                .send("POST", "/predict", &bodies[next])
                .expect("send");
            next += 1;
            inflight += 1;
        }
        let (status, body) = client.recv().expect("recv");
        assert_eq!(status, 200);
        results.push(
            serde_json::from_str::<PredictResponse>(&body)
                .unwrap()
                .predictions,
        );
        inflight -= 1;
    }
    assert_eq!(results, direct, "scatter/gather reordered rows");

    // The fan-out histogram saw multi-shard requests.
    let s = scrape(&gw_addr);
    let (count, sum) = s.histogram_totals("lam_gateway_fanout_size", None);
    assert!(
        count > 0 && sum > count,
        "no multi-shard fan-out recorded ({count}, {sum})"
    );

    gw.stop();
    b1.stop();
    b2.stop();
}

#[test]
fn killing_a_backend_fails_over_with_zero_client_errors() {
    let root = temp_root("failover");
    let registry = Arc::new(ModelRegistry::new(root));
    let b1 = start_backend(Arc::clone(&registry));
    let b2 = start_backend(Arc::clone(&registry));
    let backends = vec![b1.local_addr().to_string(), b2.local_addr().to_string()];
    let gw = gateway_over(backends.clone(), 1);
    let gw_addr = gw.local_addr().to_string();
    let body = predict_body("fmm-small", "linear", vec![vec![2.0, 8192.0, 64.0, 4.0]]);

    // Warm the key and find its owner.
    let before = scrape(&gw_addr);
    let mut client = HttpClient::connect(&gw_addr).expect("gateway connection");
    let (status, _) = client.post("/predict", &body).expect("warm predict");
    assert_eq!(status, 200);
    let after = scrape(&gw_addr);
    let owner = delta_owner(&before, &after, &backends).to_string();

    // Kill the owning backend; every subsequent request must still be
    // answered 200 by the surviving replica (connection-level failures
    // fail over inside the gateway, invisibly to the client).
    let mut handles = vec![Some(b1), Some(b2)];
    let owner_idx = backends.iter().position(|b| *b == owner).unwrap();
    handles[owner_idx].take().unwrap().stop();
    for i in 0..30 {
        // A stopped reactor closes established keep-alive sockets, so a
        // fresh client connection per request exercises the full path.
        let mut c = HttpClient::connect(&gw_addr).expect("gateway connection");
        let (status, resp) = c.post("/predict", &body).expect("failover predict");
        assert_eq!(status, 200, "request {i} failed after backend kill: {resp}");
    }

    // The gateway noticed: the dead backend is ejected from /healthz.
    let (status, health) = client.get("/healthz").expect("gateway healthz");
    assert_eq!(status, 200);
    let health: GatewayHealthResponse = serde_json::from_str(&health).unwrap();
    assert_eq!(health.backends_healthy, 1, "dead backend was not ejected");

    gw.stop();
    for handle in handles.into_iter().flatten() {
        handle.stop();
    }
}

#[test]
fn cold_backend_fetches_artifact_from_peer_instead_of_training() {
    // This test owns ModelKind::Cart in this binary (see module docs):
    // the no-duplicate-training assertion below counts global `cart`
    // training events.
    let root_a = temp_root("peer_a");
    let root_b = temp_root("peer_b");
    let key = ModelKey::new(wid("spmv-small"), ModelKind::Cart, 1);

    // Backend A trains the artifact (the one legitimate training).
    let registry_a = Arc::new(ModelRegistry::new(root_a));
    registry_a.get(key).expect("train on A");
    let a = start_backend(Arc::clone(&registry_a));
    let a_addr = a.local_addr().to_string();

    // Backend B is cold but knows A as a peer.
    let registry_b = Arc::new(ModelRegistry::with_peers(
        root_b.clone(),
        vec![a_addr.clone()],
    ));
    let b = start_backend(registry_b);
    let b_addr = b.local_addr().to_string();

    let trained_carts = |s: &MetricsScrape| {
        s.histograms
            .iter()
            .filter(|h| h.name == "lam_train_duration_ns")
            .filter(|h| h.labels.get("kind").is_some_and(|v| v == "cart"))
            .map(|h| h.count)
            .sum::<u64>()
    };
    let peer_fetches = |s: &MetricsScrape| {
        s.counter_with_label("lam_registry_resolutions_total", ("path", "peer"))
    };

    let before = scrape(&b_addr);
    let body = predict_body(
        "spmv-small",
        "cart",
        vec![wid("spmv-small").sample_rows(1)[0].clone()],
    );
    let mut client = HttpClient::connect(&b_addr).expect("connects to B");
    let (status, resp) = client.post("/predict", &body).expect("predict on B");
    assert_eq!(status, 200, "cold predict on B failed: {resp}");
    let after = scrape(&b_addr);

    assert_eq!(
        peer_fetches(&after).saturating_sub(peer_fetches(&before)),
        1,
        "the miss was not resolved via the peer path"
    );
    assert_eq!(
        trained_carts(&after).saturating_sub(trained_carts(&before)),
        0,
        "B re-trained a model its peer already had"
    );
    // The fetched artifact was persisted locally: B now serves it from
    // disk after a "restart" (fresh registry over the same root, peers
    // gone), no peer and no training involved.
    b.stop();
    let registry_b2 = Arc::new(ModelRegistry::new(root_b));
    registry_b2
        .get(key)
        .expect("artifact replicated to B's disk");

    a.stop();
}

#[test]
fn ring_spreads_builtin_catalog_within_twice_the_mean() {
    // The acceptance balance bound: >= 64 vnodes spread the full builtin
    // (workload x kind) key set to <= 2x the mean shard, no empty shard.
    let backends: Vec<String> = (0..3).map(|i| format!("10.0.0.{i}:9000")).collect();
    let ring = HashRing::new(&backends, 64);
    let mut counts = vec![0usize; backends.len()];
    let mut keys = 0usize;
    for workload in WorkloadId::all() {
        for kind in ModelKind::all() {
            counts[ring.primary(&workload.to_string(), kind.name()).unwrap()] += 1;
            keys += 1;
        }
    }
    let mean = keys as f64 / backends.len() as f64;
    for (idx, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64) <= 2.0 * mean,
            "backend {idx} owns {c} of {keys} keys (mean {mean:.1}): {counts:?}"
        );
        assert!(c > 0, "backend {idx} owns no keys: {counts:?}");
    }
}
