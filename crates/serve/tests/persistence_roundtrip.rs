//! Property tests for model persistence: for every model kind, training
//! on a drawn key, saving, and loading back yields *bit-identical*
//! predictions over the **full** configuration space of both
//! applications — the stencil and FMM parameter spaces the paper
//! enumerates.
//!
//! The proptest strategy draws the model family and artifact version;
//! the scenario is exercised exhaustively (every row of the space), so a
//! pass means no float in any persisted tree threshold, leaf, forest
//! member, k-NN training row, or linear coefficient drifted through the
//! JSON round trip.

use lam_serve::persist::{ModelKind, SavedModel};
use lam_serve::registry::{train, ModelKey};
use lam_serve::workload::WorkloadId;
use proptest::prelude::*;

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

/// Train → save → load → compare over every row of the workload space.
fn assert_roundtrip_bit_identical(
    workload: WorkloadId,
    kind: ModelKind,
    version: u32,
) -> Result<(), TestCaseError> {
    let key = ModelKey::new(workload, kind, version);
    let trained = train(key).expect("training succeeds");
    let dir =
        std::env::temp_dir().join(format!("lam_serve_roundtrip_{workload}_{kind}_v{version}"));
    let path = trained.save(&dir).expect("save succeeds");
    let loaded = SavedModel::load(&path).expect("load succeeds");

    let original = trained.into_predictor();
    let reloaded = loaded.into_predictor();
    let data = workload.dataset();
    for i in 0..data.len() {
        let row = data.row(i);
        let a = original.predict_row(row);
        let b = reloaded.predict_row(row);
        prop_assert!(
            a.to_bits() == b.to_bits(),
            "{}: row {} diverged after reload: {} vs {}",
            key,
            i,
            a,
            b
        );
    }
    Ok(())
}

/// Strategy over every servable model family.
fn any_kind() -> impl Strategy<Value = ModelKind> {
    (0..ModelKind::all().len()).prop_map(|i| ModelKind::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn stencil_roundtrip_bit_identical(kind in any_kind(), version in 1u32..4) {
        assert_roundtrip_bit_identical(wid("stencil-grid"), kind, version)?;
    }

    #[test]
    fn fmm_roundtrip_bit_identical(kind in any_kind(), version in 1u32..4) {
        assert_roundtrip_bit_identical(wid("fmm-small"), kind, version)?;
    }
}

#[test]
fn every_kind_roundtrips_on_fmm() {
    // Deterministic exhaustive sweep alongside the drawn cases: every
    // family at version 1 on the quick FMM space.
    for kind in ModelKind::all() {
        assert_roundtrip_bit_identical(wid("fmm-small"), kind, 1).unwrap();
    }
}
