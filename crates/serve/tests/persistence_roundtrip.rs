//! Property tests for model persistence: for every model kind, training
//! on a drawn key, saving, and loading back yields *bit-identical*
//! predictions over the **full** configuration space of both
//! applications — the stencil and FMM parameter spaces the paper
//! enumerates.
//!
//! The proptest strategy draws the model family and artifact version;
//! the scenario is exercised exhaustively (every row of the space), so a
//! pass means no float in any persisted tree threshold, leaf, forest
//! member, k-NN training row, or linear coefficient drifted through
//! either round trip — the compact binary format (`.lamb`, the canonical
//! artifact) or JSON (the fallback). Each comparison also pits the
//! arena-compiled serving predictor against the interpreted reference
//! assembly, so a pass certifies the whole chain:
//! train → persist (both formats) → load → compile ≡ train → interpret.

use lam_serve::persist::{ModelKind, SavedModel};
use lam_serve::registry::{train, ModelKey};
use lam_serve::workload::WorkloadId;
use proptest::prelude::*;

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

/// Train → save → load → compare over every row of the workload space.
fn assert_roundtrip_bit_identical(
    workload: WorkloadId,
    kind: ModelKind,
    version: u32,
) -> Result<(), TestCaseError> {
    let key = ModelKey::new(workload, kind, version);
    let trained = train(key).expect("training succeeds");
    let dir =
        std::env::temp_dir().join(format!("lam_serve_roundtrip_{workload}_{kind}_v{version}"));
    let bin_path = trained.save(&dir).expect("binary save succeeds");
    let json_path = trained.save_json(&dir).expect("json save succeeds");
    prop_assert!(bin_path != json_path);
    let from_bin = SavedModel::load(&bin_path).expect("binary load succeeds");
    let from_json = SavedModel::load(&json_path).expect("json load succeeds");

    // The interpreted assembly of the in-memory model is the reference;
    // both reloads serve through the compiled fast path.
    let reference = trained.into_interpreted_predictor();
    let compiled_bin = from_bin.into_predictor().expect("compiles");
    let compiled_json = from_json.into_predictor().expect("compiles");
    let data = workload.dataset();
    for i in 0..data.len() {
        let row = data.row(i);
        let a = reference.predict_row(row);
        let b = compiled_bin.predict_row(row);
        let c = compiled_json.predict_row(row);
        prop_assert!(
            a.to_bits() == b.to_bits() && a.to_bits() == c.to_bits(),
            "{}: row {} diverged after reload: interpreted {} vs binary {} vs json {}",
            key,
            i,
            a,
            b,
            c
        );
    }
    Ok(())
}

/// Strategy over every servable model family.
fn any_kind() -> impl Strategy<Value = ModelKind> {
    (0..ModelKind::all().len()).prop_map(|i| ModelKind::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn stencil_roundtrip_bit_identical(kind in any_kind(), version in 1u32..4) {
        assert_roundtrip_bit_identical(wid("stencil-grid"), kind, version)?;
    }

    #[test]
    fn fmm_roundtrip_bit_identical(kind in any_kind(), version in 1u32..4) {
        assert_roundtrip_bit_identical(wid("fmm-small"), kind, version)?;
    }

    #[test]
    fn spmv_roundtrip_bit_identical(kind in any_kind(), version in 1u32..4) {
        assert_roundtrip_bit_identical(wid("spmv-small"), kind, version)?;
    }
}

#[test]
fn every_kind_roundtrips_on_fmm() {
    // Deterministic exhaustive sweep alongside the drawn cases: every
    // family at version 1 on the quick FMM space.
    for kind in ModelKind::all() {
        assert_roundtrip_bit_identical(wid("fmm-small"), kind, 1).unwrap();
    }
}
