//! End-to-end observability test: serve a model, drive traffic (including
//! a syntactically invalid request), and check that `/metrics` speaks
//! valid Prometheus text covering the request/cache/batch/registry
//! families, `/metrics.json` parses into the loadgen scraper's types, and
//! `/healthz` carries the new birth-timestamp and totals fields.

use lam_serve::http::{self, HealthResponse, PredictRequest, ServerOptions};
use lam_serve::loadgen::{HttpClient, MetricsScrape};
use lam_serve::registry::ModelRegistry;
use lam_serve::workload::WorkloadId;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lam_serve_metrics_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write raw bytes to a fresh connection and read the whole response
/// (the server closes non-keep-alive connections after answering).
fn raw_request(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(bytes).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    response
}

/// Find one counter series by name + one distinguishing label.
fn counter_value(scrape: &MetricsScrape, name: &str, label: (&str, &str)) -> i64 {
    scrape
        .counters
        .iter()
        .filter(|c| c.name == name)
        .filter(|c| c.labels.get(label.0).is_some_and(|v| v == label.1))
        .map(|c| c.value)
        .sum()
}

#[test]
fn metrics_cover_the_serving_stack_end_to_end() {
    let root = temp_root("e2e");
    let registry = Arc::new(ModelRegistry::new(root));
    let handle = http::start(
        registry,
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("server binds");
    let addr = handle.local_addr().to_string();
    let mut client = HttpClient::connect(&addr).expect("connects");

    // Drive traffic: a train-on-miss predict, a cached repeat, a 4xx.
    let request = PredictRequest {
        workload: "fmm-small".to_string(),
        kind: "linear".to_string(),
        version: Some(1),
        rows: WorkloadId::get("fmm-small").unwrap().sample_rows(16),
    };
    let body = serde_json::to_string(&request).unwrap();
    let (status, _) = client.post("/predict", &body).unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.post("/predict", &body).unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.post("/predict", "{not json").unwrap();
    assert_eq!(status, 400);

    // /metrics: Prometheus text with HELP/TYPE lines and every family
    // the instrumentation promises.
    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("# TYPE lam_requests_total counter"), "{text}");
    assert!(
        text.contains(
            "# HELP lam_request_duration_ns Server-side request handling time, nanoseconds."
        ),
        "{text}"
    );
    assert!(text.contains("# TYPE lam_request_duration_ns histogram"));
    assert!(text.contains("# TYPE lam_requests_in_flight gauge"));
    assert!(text.contains(r#"lam_requests_total{endpoint="predict",status="2xx"} 2"#));
    assert!(text.contains(r#"lam_requests_total{endpoint="predict",status="4xx"} 1"#));
    assert!(text.contains(r#"lam_request_duration_ns_bucket{endpoint="predict",le="+Inf"} 3"#));
    // Batch + registry + phase families, fed by the predict traffic.
    assert!(text.contains("lam_cache_hits_total{scope=\"fmm-small/linear\"}"));
    assert!(text.contains("lam_cache_misses_total{scope=\"fmm-small/linear\"}"));
    assert!(text.contains("lam_batch_rows"));
    assert!(text.contains("lam_batch_queue_wait_ns"));
    assert!(text.contains(r#"lam_registry_resolutions_total{path="train"} 1"#));
    assert!(text.contains("lam_train_duration_ns"));
    assert!(text.contains(r#"lam_phase_duration_ns_bucket{endpoint="predict",phase="predict","#));
    // Every family has exactly one HELP and one TYPE line (no duplicate
    // family emission), and buckets are well-formed.
    for family in ["lam_requests_total", "lam_request_duration_ns"] {
        assert_eq!(
            text.matches(&format!("# HELP {family} ")).count(),
            1,
            "{family}"
        );
        assert_eq!(
            text.matches(&format!("# TYPE {family} ")).count(),
            1,
            "{family}"
        );
    }

    // /metrics.json parses into the scraper types loadgen uses.
    let scrape = MetricsScrape::fetch(&mut client).expect("scrapes");
    assert_eq!(
        counter_value(&scrape, "lam_requests_total", ("endpoint", "predict")),
        3
    );
    assert!(scrape.counter_total("lam_cache_hits_total") >= 16);
    let (count, sum) = scrape.histogram_totals("lam_phase_duration_ns", Some(("phase", "parse")));
    assert!(count >= 2 && sum > 0, "parse phase recorded");

    // A request whose bytes never parse still lands in the accounting,
    // under its own endpoint label with a 4xx status class.
    let malformed_before = counter_value(&scrape, "lam_requests_total", ("endpoint", "malformed"));
    let response = raw_request(&addr, b"NONSENSE\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    let scrape = MetricsScrape::fetch(&mut client).expect("scrapes again");
    assert_eq!(
        counter_value(&scrape, "lam_requests_total", ("endpoint", "malformed")) - malformed_before,
        1
    );
    assert_eq!(
        counter_value(&scrape, "lam_requests_total", ("status", "4xx")),
        2,
        "bad JSON + malformed bytes are both 4xx"
    );

    // /metrics itself serves the Prometheus content type, fast.
    let started = std::time::Instant::now();
    let response = raw_request(&addr, b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(started.elapsed().as_millis() < 50, "metrics render quickly");
    assert!(
        response.contains("content-type: text/plain; version=0.0.4"),
        "{}",
        response.lines().take(5).collect::<Vec<_>>().join("\n")
    );

    // /healthz: birth timestamp plus top-level totals.
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health: HealthResponse = serde_json::from_str(&body).unwrap();
    assert!(
        health.started_at.ends_with('Z') && health.started_at.contains('T'),
        "RFC 3339: {}",
        health.started_at
    );
    assert!(health.requests_total >= 6, "{}", health.requests_total);
    assert!(
        health.cache_hit_ratio > 0.0 && health.cache_hit_ratio <= 1.0,
        "{}",
        health.cache_hit_ratio
    );

    handle.stop();
}
