//! # lam-serve
//!
//! Turns trained hybrid performance models from one-shot experiment
//! artifacts into durable, servable assets:
//!
//! * [`persist`] — save/load every trained model family (CART trees,
//!   forests, extra trees, boosting, k-NN, linear, and the hybrid) as JSON
//!   under `results/models/`, with bit-exact prediction round-trips;
//! * [`workload`] — [`workload::WorkloadId`], a validated interned-name
//!   handle into the process-wide [`lam_core::catalog::WorkloadCatalog`],
//!   so a saved model can rebuild its analytical component from first
//!   principles on load — and so a scenario registered at runtime is
//!   trained, persisted, and served with zero edits to this crate;
//! * [`registry`] — a [`registry::ModelRegistry`] keyed by
//!   `(workload, kind, version)` that trains on miss, persists the result,
//!   and memoizes loaded models behind `Arc`;
//! * [`batch`] — request-row validation in front of the shared
//!   [`lam_core::batch`] prediction cache + micro-batch executor;
//! * [`http`] — an event-driven HTTP/JSON server (epoll reactor, vendored
//!   shim, no external async stack) with `/predict`, `/tune` (a thin shim
//!   over the `lam-tune` autotuner), `/models`, `/workloads`, and
//!   `/healthz`; small `/predict` requests coalesce into cross-connection
//!   micro-batches, and both the dispatch queue and the batch queue shed
//!   with `503` + `retry-after` under overload;
//! * [`proto`] — the incremental HTTP/1.1 request parser and response
//!   encoder shared by the reactor's per-connection state machines;
//! * [`reference`] — the original blocking thread-per-connection server,
//!   kept as the benchmark baseline for the reactor;
//! * [`loadgen`] — a load generator (closed-loop, pipelined, or open-loop)
//!   reporting throughput and p50/p90/p95/p99 latency against a running
//!   server.
//!
//! Binaries: `serve` (train-or-load + HTTP), `loadgen`, and `tune`
//! (autotune a workload from the command line).
//!
//! ## Quick example
//!
//! ```no_run
//! use lam_serve::registry::{ModelKey, ModelRegistry};
//! use lam_serve::persist::ModelKind;
//! use lam_serve::workload::WorkloadId;
//!
//! let registry = ModelRegistry::new("results/models");
//! // Trains, persists, and memoizes on first call; loads from disk after
//! // a restart; pure memo hit afterwards.
//! let fmm_small = WorkloadId::get("fmm-small").unwrap();
//! let model = registry
//!     .get(ModelKey::new(fmm_small, ModelKind::Hybrid, 1))
//!     .unwrap();
//! let y = model.predict(&[vec![2.0, 8192.0, 64.0, 4.0]]).predictions[0];
//! assert!(y > 0.0);
//! ```

pub mod batch;
pub mod cluster;
pub mod http;
pub mod loadgen;
pub mod persist;
pub mod proto;
pub(crate) mod reactor;
pub mod reference;
pub mod registry;
pub mod route;
pub mod tuning;
pub mod workload;

use std::fmt;

/// Errors produced across the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// Unknown workload name in a request or CLI flag.
    UnknownWorkload(String),
    /// Unknown model kind in a request or CLI flag.
    UnknownKind(String),
    /// Unknown tuning strategy in a request or CLI flag.
    UnknownStrategy(String),
    /// The autotuner failed (see [`lam_tune::TuneError`]).
    Tune(lam_tune::TuneError),
    /// A request row had the wrong number of features.
    FeatureCount {
        /// Features the model expects.
        expected: usize,
        /// Features the offending row carried.
        actual: usize,
        /// Index of the offending row within the request.
        row: usize,
    },
    /// A request row carried a NaN or infinite feature value. Rejected up
    /// front: non-finite values would poison the prediction cache's key
    /// space and panic distance sorts in k-NN and metric code.
    NonFiniteFeature {
        /// Index of the offending row within the request.
        row: usize,
        /// Column of the offending value within the row.
        col: usize,
    },
    /// Training failed.
    Fit(lam_ml::model::FitError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(String),
    /// Malformed HTTP traffic.
    Http(String),
    /// A persisted model could not be lowered into its servable form
    /// (e.g. an artifact with an unfitted tree — see
    /// [`lam_ml::compile::CompileError`]).
    Model(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownWorkload(w) => write!(f, "unknown workload `{w}`"),
            ServeError::UnknownKind(k) => write!(f, "unknown model kind `{k}`"),
            ServeError::UnknownStrategy(s) => write!(
                f,
                "unknown strategy `{s}`: use one of {:?} or `{}`",
                lam_tune::STRATEGY_NAMES,
                lam_tune::ACTIVE_STRATEGY
            ),
            ServeError::Tune(e) => write!(f, "tuning failed: {e}"),
            ServeError::FeatureCount {
                expected,
                actual,
                row,
            } => write!(
                f,
                "row {row} has {actual} features, model expects {expected}"
            ),
            ServeError::NonFiniteFeature { row, col } => {
                write!(f, "row {row} feature {col} is not finite")
            }
            ServeError::Fit(e) => write!(f, "training failed: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Json(m) => write!(f, "json error: {m}"),
            ServeError::Http(m) => write!(f, "http error: {m}"),
            ServeError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<lam_ml::model::FitError> for ServeError {
    fn from(e: lam_ml::model::FitError) -> Self {
        ServeError::Fit(e)
    }
}

impl From<lam_tune::TuneError> for ServeError {
    fn from(e: lam_tune::TuneError) -> Self {
        ServeError::Tune(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Json(e.to_string())
    }
}

impl From<lam_ml::compile::CompileError> for ServeError {
    fn from(e: lam_ml::compile::CompileError) -> Self {
        ServeError::Model(e.to_string())
    }
}

impl From<lam_data::io::IoError> for ServeError {
    fn from(e: lam_data::io::IoError) -> Self {
        match e {
            lam_data::io::IoError::Io(io) => ServeError::Io(io),
            other => ServeError::Json(other.to_string()),
        }
    }
}
