//! The event-driven connection core: one epoll reactor thread owning
//! every socket, a bounded dispatch queue feeding the handler pool, and
//! a completion queue bringing finished responses back.
//!
//! ```text
//!                    ┌──────────────────────────────┐
//!   accept ─────────▶│  reactor (epoll, 1 thread)   │◀── eventfd doorbell
//!   non-blocking I/O │  per-conn HTTP state machine │         ▲
//!                    └───────┬──────────────▲───────┘         │
//!                    dispatch│(bounded, 503)│ write           │
//!                    ┌───────▼──────────────┴───────┐  ┌──────┴──────┐
//!                    │ handler pool (route, parse)  │─▶│ completions │
//!                    └───────┬──────────────────────┘  └──────▲──────┘
//!                     submit │ (coalesced micro-batches)      │
//!                    ┌───────▼──────────────────────┐         │
//!                    │ lam_core BatchScheduler      │─────────┘
//!                    └──────────────────────────────┘
//! ```
//!
//! Responsibilities are split so each stays blocking-free where it must
//! be: the reactor never computes (it parses bytes already in memory and
//! moves buffers), handlers never touch sockets (they end by pushing a
//! completion and ringing the doorbell), and the batch scheduler sees
//! rows from *all* connections, which is what lets micro-batches form
//! across requests.
//!
//! Every queue hop is bounded and sheds: a full dispatch queue answers
//! `503` + `retry-after` immediately from the reactor; the scheduler's
//! row budget refuses in the handler (also `503`). Pipelined requests on
//! one connection are answered strictly in order through per-connection
//! response slots; reading is suspended past a pipeline depth so one
//! connection cannot queue unbounded work. Shutdown drains: accepting
//! stops, idle connections close, in-flight requests finish (up to a
//! deadline), then everything force-closes.

use crate::proto::{encode_response, ParseStep, ParsedRequest, RequestParser};
use epoll::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use lam_core::batch::{BatchScheduler, ProducerGuard};
use lam_obs::{Counter, Gauge};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Reactor tuning knobs, filled from `http::ServeConfig`.
#[derive(Debug, Clone)]
pub(crate) struct ReactorConfig {
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Open-connection cap; accepts beyond it are answered 503 + close.
    pub max_connections: usize,
    /// Close a connection with no request in progress after this long.
    pub idle_timeout: Duration,
    /// Close a connection stalled *mid-request* (the slowloris case)
    /// with a 408 after this long without a byte.
    pub header_timeout: Duration,
    /// In-flight pipelined requests per connection before reading stops.
    pub pipeline_depth: usize,
    /// How long graceful shutdown waits for in-flight requests.
    pub drain_deadline: Duration,
    /// `retry-after` seconds on shed responses.
    pub retry_after_secs: u32,
}

/// One parsed request traveling to the handler pool with its response
/// channel and (optionally) the batch scheduler's producer hint.
pub(crate) struct Job {
    pub req: ParsedRequest,
    pub responder: Responder,
    /// Held from dispatch until the handler finishes submitting, so the
    /// scheduler knows rows may still be coming and a short coalescing
    /// wait can pay off.
    pub hint: Option<ProducerGuard>,
}

struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded handoff from the reactor to the handler pool. The reactor is
/// the only producer, so capacity checks ([`JobQueue::has_room`]) and
/// pushes need not be atomic with each other.
pub(crate) struct JobQueue {
    state: Mutex<JobQueueState>,
    takers: Condvar,
    cap: usize,
    hint_source: OnceLock<Arc<BatchScheduler>>,
}

impl JobQueue {
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(JobQueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            cap: cap.max(1),
            hint_source: OnceLock::new(),
        })
    }

    /// Wire the scheduler whose producer hint dispatched jobs should
    /// hold. Set once at server startup, before the reactor runs.
    pub fn set_hint_source(&self, sched: Arc<BatchScheduler>) {
        let _ = self.hint_source.set(sched);
    }

    pub fn has_room(&self) -> bool {
        let state = self.state.lock().expect("job queue poisoned");
        !state.closed && state.jobs.len() < self.cap
    }

    pub fn push(&self, req: ParsedRequest, responder: Responder) {
        let hint = self.hint_source.get().map(|s| s.producer_hint());
        let mut state = self.state.lock().expect("job queue poisoned");
        state.jobs.push_back(Job {
            req,
            responder,
            hint,
        });
        drop(state);
        self.takers.notify_one();
    }

    /// Blocking pop; `None` once the queue is closed and empty (the
    /// handler-thread exit signal).
    pub fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.takers.wait(state).expect("job queue poisoned");
        }
    }

    pub fn close(&self) {
        self.state.lock().expect("job queue poisoned").closed = true;
        self.takers.notify_all();
    }
}

/// A finished response heading back to the reactor.
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    retry_after: Option<u32>,
}

/// The handler-side half of the reactor: a completion list plus the
/// eventfd doorbell that wakes epoll when one lands.
pub(crate) struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    /// True while a notify is outstanding that the reactor has not yet
    /// drained; lets a burst of completions ring the doorbell once.
    signaled: AtomicBool,
    wake: EventFd,
}

impl ReactorShared {
    pub fn new() -> std::io::Result<Arc<Self>> {
        Ok(Arc::new(Self {
            completions: Mutex::new(Vec::new()),
            signaled: AtomicBool::new(false),
            wake: EventFd::new()?,
        }))
    }

    /// Ring the doorbell without a completion (shutdown notification).
    pub fn wake(&self) {
        self.wake.notify();
    }

    fn push(&self, c: Completion) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(c);
        if !self.signaled.swap(true, Ordering::SeqCst) {
            self.wake.notify();
        }
    }

    fn drain(&self) -> Vec<Completion> {
        // Clear the flag before taking the list: a completion pushed
        // after the take re-rings the doorbell (at worst one spurious
        // wakeup), never goes silent.
        self.signaled.store(false, Ordering::SeqCst);
        std::mem::take(&mut *self.completions.lock().expect("completions poisoned"))
    }
}

/// The single-use response channel for one request. Exactly one response
/// reaches the reactor per slot: sending consumes the responder, and a
/// responder dropped without sending (a panicked handler) reports a 500
/// so its connection slot never wedges.
pub(crate) struct Responder {
    inner: Option<(usize, u64, u64, Arc<ReactorShared>)>,
}

impl Responder {
    fn new(conn: usize, gen: u64, seq: u64, shared: Arc<ReactorShared>) -> Self {
        Self {
            inner: Some((conn, gen, seq, shared)),
        }
    }

    pub fn send(
        self,
        status: u16,
        content_type: &'static str,
        body: String,
        retry_after: Option<u32>,
    ) {
        self.send_bytes(status, content_type, body.into_bytes(), retry_after);
    }

    /// Byte-body variant for non-textual payloads (binary model
    /// artifacts proxied by the gateway).
    pub fn send_bytes(
        mut self,
        status: u16,
        content_type: &'static str,
        body: Vec<u8>,
        retry_after: Option<u32>,
    ) {
        let (conn, gen, seq, shared) = self.inner.take().expect("responder sends once");
        shared.push(Completion {
            conn,
            gen,
            seq,
            status,
            content_type,
            body,
            retry_after,
        });
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some((conn, gen, seq, shared)) = self.inner.take() {
            shared.push(Completion {
                conn,
                gen,
                seq,
                status: 500,
                content_type: crate::http::JSON_CONTENT_TYPE,
                body: br#"{"error":"handler dropped the request"}"#.to_vec(),
                retry_after: None,
            });
        }
    }
}

/// Pre-interned reactor metrics.
struct ReactorMetrics {
    connections_open: Arc<Gauge>,
    shed_dispatch: Arc<Counter>,
    shed_connections: Arc<Counter>,
    timeouts_408: Arc<Counter>,
}

fn reactor_metrics() -> &'static ReactorMetrics {
    static METRICS: OnceLock<ReactorMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = lam_obs::global();
        ReactorMetrics {
            connections_open: reg.gauge(
                "lam_connections_open",
                "Client connections currently registered with the reactor.",
                &[],
            ),
            shed_dispatch: reg.counter(
                "lam_requests_shed_total",
                "Requests refused to bound queueing, by shedding site.",
                &[("reason", "dispatch-queue")],
            ),
            shed_connections: reg.counter(
                "lam_requests_shed_total",
                "Requests refused to bound queueing, by shedding site.",
                &[("reason", "max-connections")],
            ),
            timeouts_408: reg.counter(
                "lam_request_timeouts_total",
                "Connections closed with 408 for stalling mid-request.",
                &[],
            ),
        }
    })
}

/// One response slot: pipelined requests answer strictly in order, so a
/// connection's slots form a queue and only the front slot's bytes are
/// ever written.
struct Slot {
    keep_alive: bool,
    bytes: Option<Vec<u8>>,
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    /// Unconsumed input bytes.
    buf: Vec<u8>,
    parser: RequestParser,
    /// Encoded response bytes mid-write.
    out: Vec<u8>,
    out_pos: usize,
    slots: VecDeque<Slot>,
    /// Sequence number of `slots.front()`.
    base_seq: u64,
    next_seq: u64,
    last_activity: Instant,
    /// Interest bits currently registered with epoll.
    interest: u32,
    /// No further requests are read or parsed (EOF, protocol error,
    /// `connection: close`, or drain); pending responses still flush.
    closing: bool,
    /// Close as soon as `out` finishes writing (set when the response
    /// being written was `connection: close`).
    close_when_flushed: bool,
}

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;
const EVENT_BATCH: usize = 256;
const READ_CHUNK: usize = 16 << 10;

/// Pack a slab index and generation into an epoll token. The generation
/// makes stale events for a reused slab slot self-identifying.
fn token(idx: usize, gen: u64) -> u64 {
    (gen << 32) | idx as u64
}

fn untoken(token: u64) -> (usize, u64) {
    ((token & 0xFFFF_FFFF) as usize, token >> 32)
}

pub(crate) struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    cfg: ReactorConfig,
    queue: Arc<JobQueue>,
    shared: Arc<ReactorShared>,
    stop: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    gen_counter: u64,
    open: usize,
    draining: bool,
    drain_by: Option<Instant>,
}

impl Reactor {
    pub fn new(
        listener: TcpListener,
        cfg: ReactorConfig,
        queue: Arc<JobQueue>,
        shared: Arc<ReactorShared>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
        epoll.add(shared.wake.as_raw_fd(), EPOLLIN, WAKE_TOKEN)?;
        Ok(Self {
            epoll,
            listener,
            cfg,
            queue,
            shared,
            stop,
            conns: Vec::new(),
            free: Vec::new(),
            gen_counter: 0,
            open: 0,
            draining: false,
            drain_by: None,
        })
    }

    pub fn run(mut self) {
        let mut events = [EpollEvent::zeroed(); EVENT_BATCH];
        loop {
            let timeout = self.next_timeout();
            let n = self.epoll.wait(&mut events, Some(timeout));
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            let mut conn_events: Vec<(usize, u64, u32)> = Vec::with_capacity(n);
            let mut accept = false;
            for ev in events.iter().take(n) {
                match ev.token() {
                    LISTENER_TOKEN => accept = true,
                    WAKE_TOKEN => {
                        self.shared.wake.drain();
                    }
                    t => {
                        let (idx, gen) = untoken(t);
                        conn_events.push((idx, gen, ev.events()));
                    }
                }
            }
            if accept && !self.draining {
                self.accept_ready();
            }
            // Fill every completed slot first, then flush each touched
            // connection once: a pipelined burst leaves the reactor as
            // one write, not one per response.
            let mut dirty: Vec<usize> = Vec::new();
            for c in self.shared.drain() {
                if let Some(idx) = self.fill_slot(c) {
                    if !dirty.contains(&idx) {
                        dirty.push(idx);
                    }
                }
            }
            for idx in dirty {
                self.pump(idx);
            }
            for (idx, gen, bits) in conn_events {
                self.handle_conn_event(idx, gen, bits);
            }
            self.sweep_timeouts();
            if self.draining {
                if self.open == 0 {
                    return;
                }
                if self.drain_by.is_some_and(|by| Instant::now() >= by) {
                    // Deadline passed: abandon what's still in flight.
                    for idx in 0..self.conns.len() {
                        if self.conns[idx].is_some() {
                            self.close(idx);
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Epoll wait bound: the nearest per-connection timeout (idle or
    /// slowloris) or the drain deadline, capped so the stop flag is
    /// polled a few times a second even on a silent server.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut nearest = Duration::from_millis(250);
        let mut consider = |deadline: Instant| {
            let left = deadline.saturating_duration_since(now);
            if left < nearest {
                nearest = left;
            }
        };
        for conn in self.conns.iter().flatten() {
            if conn.parser.mid_request(&conn.buf) && !conn.closing {
                consider(conn.last_activity + self.cfg.header_timeout);
            } else if conn.slots.is_empty() && conn.out.is_empty() {
                consider(conn.last_activity + self.cfg.idle_timeout);
            }
        }
        if let Some(by) = self.drain_by {
            consider(by);
        }
        nearest.max(Duration::from_millis(1))
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_by = Some(Instant::now() + self.cfg.drain_deadline);
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        for idx in 0..self.conns.len() {
            let Some(conn) = &mut self.conns[idx] else {
                continue;
            };
            // Stop reading everywhere; unparsed pipeline bytes are
            // abandoned, already-dispatched requests finish.
            conn.closing = true;
            conn.buf.clear();
            if conn.slots.is_empty() && conn.out.is_empty() {
                self.close(idx);
            } else {
                self.update_io(idx);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.open >= self.cfg.max_connections {
                        reactor_metrics().shed_connections.inc();
                        // Best-effort refusal; the close is the message.
                        let _ = stream.set_nonblocking(true);
                        let mut s = stream;
                        let _ = s.write_all(&encode_response(
                            503,
                            crate::http::JSON_CONTENT_TYPE,
                            br#"{"error":"connection limit reached"}"#,
                            false,
                            Some(self.cfg.retry_after_secs),
                        ));
                        continue;
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient accept errors (ECONNABORTED, EMFILE) must not
                // kill the reactor; the level-triggered listener will
                // re-report readiness if connections remain.
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        self.gen_counter += 1;
        let gen = self.gen_counter;
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let interest = EPOLLIN | EPOLLRDHUP;
        if self
            .epoll
            .add(stream.as_raw_fd(), interest, token(idx, gen))
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            gen,
            buf: Vec::new(),
            parser: RequestParser::new(self.cfg.max_body),
            out: Vec::new(),
            out_pos: 0,
            slots: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            last_activity: Instant::now(),
            interest,
            closing: false,
            close_when_flushed: false,
        });
        self.open += 1;
        reactor_metrics().connections_open.add(1);
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.free.push(idx);
            self.open -= 1;
            reactor_metrics().connections_open.add(-1);
        }
    }

    fn handle_conn_event(&mut self, idx: usize, gen: u64, bits: u32) {
        let Some(conn) = &self.conns[idx] else {
            return;
        };
        if conn.gen != gen {
            return;
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(idx);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.readable(idx);
        }
        if self.conns[idx].as_ref().is_some_and(|c| c.gen == gen) && bits & EPOLLOUT != 0 {
            self.update_io(idx);
        }
    }

    fn readable(&mut self, idx: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = false;
        {
            let Some(conn) = &mut self.conns[idx] else {
                return;
            };
            if conn.closing {
                // Drain-and-discard so the level-triggered fd quiets; the
                // peer's extra bytes are not requests we will serve.
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(_) => {}
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            eof = true;
                            break;
                        }
                    }
                }
            } else {
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.buf.extend_from_slice(&chunk[..n]);
                            conn.last_activity = Instant::now();
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            eof = true;
                            break;
                        }
                    }
                }
            }
        }
        self.pump(idx);
        if eof {
            if let Some(conn) = &mut self.conns[idx] {
                conn.closing = true;
                conn.buf.clear();
                if conn.slots.is_empty() && conn.out.is_empty() {
                    self.close(idx);
                    return;
                }
            }
        }
        self.update_io(idx);
    }

    /// Parse as many pipelined requests as the pipeline depth allows and
    /// dispatch them. Never touches the socket.
    fn parse_ready(&mut self, idx: usize) {
        loop {
            let Some(conn) = &mut self.conns[idx] else {
                return;
            };
            if conn.closing || conn.slots.len() >= self.cfg.pipeline_depth || conn.buf.is_empty() {
                return;
            }
            match conn.parser.poll(&mut conn.buf) {
                ParseStep::Incomplete => return,
                ParseStep::Request(req) => self.dispatch(idx, req),
                ParseStep::Invalid { status, message } => {
                    // Unparseable bytes still get accounted (endpoint
                    // `malformed`) and answered before the close.
                    crate::http::account_malformed(status);
                    let body = crate::http::error_body(&message);
                    let bytes = encode_response(
                        status,
                        crate::http::JSON_CONTENT_TYPE,
                        body.as_bytes(),
                        false,
                        None,
                    );
                    conn.next_seq += 1;
                    conn.slots.push_back(Slot {
                        keep_alive: false,
                        bytes: Some(bytes),
                    });
                    conn.closing = true;
                    conn.buf.clear();
                    return;
                }
            }
        }
    }

    fn dispatch(&mut self, idx: usize, req: ParsedRequest) {
        let room = self.queue.has_room() && !self.draining;
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        let keep_alive = req.keep_alive;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        if room {
            conn.slots.push_back(Slot {
                keep_alive,
                bytes: None,
            });
            let responder = Responder::new(idx, conn.gen, seq, Arc::clone(&self.shared));
            self.queue.push(req, responder);
        } else {
            // Shed at the door: the queue is the latency budget, and a
            // 503 now beats a timeout later. The connection stays open —
            // the client is told when to come back.
            reactor_metrics().shed_dispatch.inc();
            crate::http::account_shed(&req);
            let body = crate::http::error_body("server overloaded, request shed");
            conn.slots.push_back(Slot {
                keep_alive,
                bytes: Some(encode_response(
                    503,
                    crate::http::JSON_CONTENT_TYPE,
                    body.as_bytes(),
                    keep_alive,
                    Some(self.cfg.retry_after_secs),
                )),
            });
        }
    }

    /// Encode a completion into its pipeline slot. Returns the connection
    /// index when the slot was live (the caller flushes it afterwards).
    fn fill_slot(&mut self, c: Completion) -> Option<usize> {
        let conn = self.conns[c.conn].as_mut()?;
        if conn.gen != c.gen || c.seq < conn.base_seq {
            return None; // connection was reused or the slot already errored
        }
        let offset = (c.seq - conn.base_seq) as usize;
        let slot = conn.slots.get_mut(offset)?;
        if slot.bytes.is_none() {
            slot.bytes = Some(encode_response(
                c.status,
                c.content_type,
                &c.body,
                slot.keep_alive,
                c.retry_after,
            ));
        }
        Some(c.conn)
    }

    /// Alternate flushing and parsing until the connection stops making
    /// progress. One round is not enough: a burst of inline-answered
    /// requests (shed 503s) can fill the whole pipeline window and then
    /// flush it with no handler completion ever coming back to resume
    /// parsing, leaving buffered requests stranded until the peer happens
    /// to send more bytes — or forever, if it is waiting on us.
    fn pump(&mut self, idx: usize) {
        loop {
            self.update_io(idx);
            let Some(conn) = self.conns[idx].as_ref() else {
                return;
            };
            if conn.closing || conn.buf.is_empty() || conn.slots.len() >= self.cfg.pipeline_depth {
                return;
            }
            let before = (conn.buf.len(), conn.next_seq);
            self.parse_ready(idx);
            let Some(conn) = self.conns[idx].as_ref() else {
                return;
            };
            if (conn.buf.len(), conn.next_seq) == before {
                return; // an incomplete request is waiting for more bytes
            }
        }
    }

    /// Move ready response bytes toward the socket and reconcile epoll
    /// interest with what this connection now needs.
    fn update_io(&mut self, idx: usize) {
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        // Gather every consecutive ready response into the flush buffer
        // first: one write syscall then covers the whole burst.
        if !conn.close_when_flushed {
            while let Some(front) = conn.slots.front() {
                if front.bytes.is_none() {
                    break;
                }
                let slot = conn.slots.pop_front().expect("front checked");
                conn.base_seq += 1;
                conn.out
                    .extend_from_slice(slot.bytes.as_deref().expect("bytes checked"));
                conn.last_activity = Instant::now();
                if !slot.keep_alive {
                    conn.close_when_flushed = true;
                    conn.closing = true;
                    break;
                }
            }
        }
        let mut dead = false;
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.close_when_flushed {
                dead = true;
            }
        }
        if dead || (conn.closing && conn.slots.is_empty() && conn.out.is_empty()) {
            self.close(idx);
            return;
        }
        let mut want = EPOLLRDHUP;
        if !conn.closing && conn.slots.len() < self.cfg.pipeline_depth {
            want |= EPOLLIN;
        }
        if conn.out_pos < conn.out.len() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let t = token(idx, conn.gen);
            let fd = conn.stream.as_raw_fd();
            if self.epoll.modify(fd, want, t).is_err() {
                self.close(idx);
            }
        }
    }

    /// Enforce idle and slowloris timeouts, and close drained-out
    /// connections whose peer went quiet.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let Some(conn) = &mut self.conns[idx] else {
                continue;
            };
            if conn.closing {
                continue;
            }
            let stalled_mid_request = conn.parser.mid_request(&conn.buf);
            let silent_for = now.saturating_duration_since(conn.last_activity);
            if stalled_mid_request && silent_for >= self.cfg.header_timeout {
                // Slowloris: a peer trickling a request holds state but
                // never completes; answer 408 after its pending
                // responses and close.
                reactor_metrics().timeouts_408.inc();
                crate::http::account_malformed(408);
                let body = crate::http::error_body("timed out waiting for the request");
                conn.slots.push_back(Slot {
                    keep_alive: false,
                    bytes: Some(encode_response(
                        408,
                        crate::http::JSON_CONTENT_TYPE,
                        body.as_bytes(),
                        false,
                        None,
                    )),
                });
                conn.next_seq += 1;
                conn.closing = true;
                conn.buf.clear();
                self.update_io(idx);
            } else if !stalled_mid_request
                && conn.slots.is_empty()
                && conn.out.is_empty()
                && silent_for >= self.cfg.idle_timeout
            {
                self.close(idx);
            }
        }
    }
}
