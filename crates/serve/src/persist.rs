//! Trained-model persistence: every model family the workspace trains can
//! be saved and loaded back with *bit-identical* predictions.
//!
//! The trained state of each family is a plain serializable struct
//! ([`lam_ml`] derives the vendored serde traits on all of them); this
//! module adds the closed [`TrainedMl`] sum over those families plus the
//! [`SavedModel`] envelope carrying the metadata a later process needs to
//! serve the model: the scenario ([`WorkloadId`]), the model kind, a
//! version, the feature schema, and — for hybrids — the
//! [`HybridConfig`] whose analytical component is rebuilt from the
//! workload id at load time (analytical models are closed-form and carry
//! no trained state, so persisting their name is persisting the model).
//!
//! ## Two artifact formats
//!
//! The canonical artifact is **compact binary** (`.lamb`, see
//! [`lam_data::binio`]): `f64` bit patterns are written verbatim in
//! little-endian order behind a versioned magic header, so loading a
//! forest is a bounds-checked byte walk with no float parsing — an
//! order of magnitude faster cold start than JSON. [`SavedModel::save`]
//! writes it; registries resolve it first.
//!
//! **JSON** (`.json`, via [`SavedModel::save_json`]) remains fully
//! supported for human inspection and for artifacts written by earlier
//! builds; [`SavedModel::load`] dispatches on the file extension and
//! registries fall back to it when no binary artifact exists. Floats
//! survive the JSON trip exactly too: the vendored `serde_json` writes
//! shortest-exact `f64` and parses with `FromStr`, so both formats load
//! bit-equal thresholds and leaves.
//!
//! Loading also *compiles*: [`SavedModel::into_predictor`] lowers tree
//! ensembles into the [`lam_ml::compile`] SoA arena, so everything
//! downstream of a load (the registry, the batch engine, the tuning
//! strategies) serves from the blocked, branchless fast path while
//! staying bit-identical to the interpreted model.

use crate::workload::WorkloadId;
use crate::ServeError;
use lam_core::hybrid::HybridConfig;
use lam_core::hybrid::{HybridModel, HybridPredictor};
use lam_core::predict::{Compiled, PredictRow};
use lam_ml::compile::CompileError;
use lam_ml::ensemble::GradientBoostingRegressor;
use lam_ml::forest::{ExtraTreesRegressor, RandomForestRegressor};
use lam_ml::knn::KnnRegressor;
use lam_ml::linear::LinearRegressor;
use lam_ml::model::Regressor;
use lam_ml::tree::DecisionTreeRegressor;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Version tag written into every model file; bump on breaking layout
/// changes so stale artifacts fail loudly instead of deserializing wrong.
pub const FORMAT_VERSION: u32 = 1;

/// The servable model families, by stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Single CART regression tree.
    Cart,
    /// Random forest (bootstrap + best splits).
    RandomForest,
    /// Extremely randomized trees — the paper's best pure-ML model.
    ExtraTrees,
    /// Gradient-boosted trees.
    Boosting,
    /// Distance-weighted k-nearest neighbours.
    Knn,
    /// Ridge-regularized linear regression.
    Linear,
    /// The paper's hybrid: analytical model stacked under extra trees.
    Hybrid,
}

impl ModelKind {
    /// Every servable kind, in canonical order.
    pub fn all() -> [ModelKind; 7] {
        [
            ModelKind::Cart,
            ModelKind::RandomForest,
            ModelKind::ExtraTrees,
            ModelKind::Boosting,
            ModelKind::Knn,
            ModelKind::Linear,
            ModelKind::Hybrid,
        ]
    }

    /// Stable name used in URLs, file names, and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Cart => "cart",
            ModelKind::RandomForest => "random-forest",
            ModelKind::ExtraTrees => "extra-trees",
            ModelKind::Boosting => "boosting",
            ModelKind::Knn => "knn",
            ModelKind::Linear => "linear",
            ModelKind::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ModelKind {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKind::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| ServeError::UnknownKind(s.to_string()))
    }
}

impl Serialize for ModelKind {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for ModelKind {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "ModelKind", value))?;
        s.parse()
            .map_err(|_| DeError::custom(format!("unknown model kind `{s}`")))
    }
}

/// The trained state of one ML model, as a closed serializable sum.
///
/// For [`ModelKind::Hybrid`] this is the *stacked* component — the
/// regressor fitted on rows augmented with the analytical prediction; the
/// analytical side lives in the enclosing [`SavedModel`] as a
/// [`WorkloadId`] + [`HybridConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TrainedMl {
    /// A fitted CART tree.
    Cart(DecisionTreeRegressor),
    /// A fitted random forest.
    RandomForest(RandomForestRegressor),
    /// A fitted extra-trees forest.
    ExtraTrees(ExtraTreesRegressor),
    /// A fitted boosting ensemble.
    Boosting(GradientBoostingRegressor),
    /// A fitted k-NN model (stores its training set).
    Knn(KnnRegressor),
    /// A fitted linear model.
    Linear(LinearRegressor),
}

impl TrainedMl {
    /// Move the trained model into a boxed [`Regressor`].
    pub fn into_regressor(self) -> Box<dyn Regressor> {
        match self {
            TrainedMl::Cart(m) => Box::new(m),
            TrainedMl::RandomForest(m) => Box::new(m),
            TrainedMl::ExtraTrees(m) => Box::new(m),
            TrainedMl::Boosting(m) => Box::new(m),
            TrainedMl::Knn(m) => Box::new(m),
            TrainedMl::Linear(m) => Box::new(m),
        }
    }

    /// Lower the trained model into its fastest [`PredictRow`] form: tree
    /// families are arena-compiled ([`lam_ml::compile`], bit-identical
    /// predictions, blocked batch evaluation); k-NN and linear models are
    /// boxed directly (no tree structure to compile).
    ///
    /// An artifact carrying an unfitted tree surfaces here as a typed
    /// [`CompileError::NotFitted`] — once per load, not per prediction.
    pub fn into_fast_predictor(self) -> Result<Box<dyn PredictRow>, CompileError> {
        Ok(match self {
            TrainedMl::Cart(m) => Box::new(Compiled(m.compile()?)),
            TrainedMl::RandomForest(m) => Box::new(Compiled(m.compile()?)),
            TrainedMl::ExtraTrees(m) => Box::new(Compiled(m.compile()?)),
            TrainedMl::Boosting(m) => Box::new(Compiled(m.compile()?)),
            TrainedMl::Knn(m) => Box::new(m),
            TrainedMl::Linear(m) => Box::new(m),
        })
    }
}

/// A persisted trained model: metadata + trained state, the unit written
/// to and read from `results/models/`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// File-format version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Scenario the model was trained for.
    pub workload: WorkloadId,
    /// Model family.
    pub kind: ModelKind,
    /// Artifact version within `(workload, kind)`.
    pub version: u32,
    /// Feature-column names of *request* rows (pre-augmentation).
    pub feature_names: Vec<String>,
    /// Number of training rows used.
    pub trained_rows: usize,
    /// Hybrid configuration; `Some` exactly when `kind` is
    /// [`ModelKind::Hybrid`].
    pub hybrid: Option<HybridConfig>,
    /// The trained (stacked, for hybrids) regressor.
    pub ml: TrainedMl,
}

impl SavedModel {
    /// Canonical (binary) file name of this artifact:
    /// `{workload}__{kind}__v{n}.lamb`.
    pub fn file_name(workload: WorkloadId, kind: ModelKind, version: u32) -> String {
        format!("{workload}__{kind}__v{version}.lamb")
    }

    /// JSON file name of this artifact: `{workload}__{kind}__v{n}.json`.
    pub fn json_file_name(workload: WorkloadId, kind: ModelKind, version: u32) -> String {
        format!("{workload}__{kind}__v{version}.json")
    }

    /// Parse an artifact file name (either format's extension) back into
    /// its key parts; `None` for foreign files.
    pub fn parse_file_name(name: &str) -> Option<(WorkloadId, ModelKind, u32)> {
        let stem = name
            .strip_suffix(".lamb")
            .or_else(|| name.strip_suffix(".json"))?;
        let mut parts = stem.split("__");
        let workload = parts.next()?.parse().ok()?;
        let kind = parts.next()?.parse().ok()?;
        let version = parts.next()?.strip_prefix('v')?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some((workload, kind, version))
    }

    /// Atomically publish `bytes` as `dir/name` (write to a temp file,
    /// then rename): registries in other processes polling
    /// `path.is_file()` never observe a truncated artifact. The temp name
    /// carries the pid *and* a process-wide counter so concurrent
    /// train-on-miss saves of the same key (the registry deliberately lets
    /// racers both train) never collide on the temp path.
    fn publish(dir: &Path, name: &str, bytes: &[u8]) -> Result<PathBuf, ServeError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let tmp = dir.join(format!(
            ".{name}.tmp-{}-{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Encode the model in the canonical compact binary format — the
    /// bytes [`SavedModel::save`] publishes and the
    /// `GET /models/{workload}/{kind}/artifact` endpoint serves to peers.
    pub fn to_lamb_bytes(&self) -> Result<Vec<u8>, ServeError> {
        Ok(lam_data::binio::to_bytes(self)?)
    }

    /// Decode and validate binary artifact bytes. A peer-fetched artifact
    /// is untrusted input exactly like a file on disk, so the same
    /// invariants apply: format version, hybrid-config consistency, and
    /// stacked-weight range. `source` labels errors (a path or peer URL).
    pub fn from_lamb_bytes(bytes: &[u8], source: &str) -> Result<Self, ServeError> {
        let model: SavedModel = lam_data::binio::from_bytes(bytes)?;
        model.validate(source)?;
        Ok(model)
    }

    /// Write the model in the canonical compact binary format under
    /// `dir`, creating the directory if needed. Publication is atomic.
    /// Returns the path written.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, ServeError> {
        let name = Self::file_name(self.workload, self.kind, self.version);
        let bytes = self.to_lamb_bytes()?;
        Self::publish(dir, &name, &bytes)
    }

    /// Write the model as pretty JSON under `dir` — the human-readable
    /// sibling of [`SavedModel::save`], same atomic publication.
    pub fn save_json(&self, dir: &Path) -> Result<PathBuf, ServeError> {
        let name = Self::json_file_name(self.workload, self.kind, self.version);
        let bytes = serde_json::to_string_pretty(self)?.into_bytes();
        Self::publish(dir, &name, &bytes)
    }

    /// Load a model written by [`SavedModel::save`] or
    /// [`SavedModel::save_json`], dispatching on the file extension
    /// (`.lamb` → binary, anything else → JSON).
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let is_binary = path.extension().is_some_and(|e| e == "lamb");
        let model: SavedModel = if is_binary {
            lam_data::binio::read_binary(path)?
        } else {
            lam_data::io::read_json(path)?
        };
        model.validate(&path.display().to_string())?;
        Ok(model)
    }

    /// The invariants every artifact must satisfy before it may serve,
    /// wherever its bytes came from (disk or a peer).
    fn validate(&self, source: &str) -> Result<(), ServeError> {
        if self.format_version != FORMAT_VERSION {
            return Err(ServeError::Json(format!(
                "model artifact {source} has format version {}, this build reads {}",
                self.format_version, FORMAT_VERSION
            )));
        }
        // A hybrid without its config (or vice versa) would silently serve
        // the stacked model on unaugmented rows — and the stacked forest
        // splits on the augmentation column, so predictions would index
        // out of bounds. Refuse the artifact instead.
        if (self.kind == ModelKind::Hybrid) != self.hybrid.is_some() {
            return Err(ServeError::Json(format!(
                "model artifact {source} is inconsistent: kind `{}` with hybrid config {}",
                self.kind,
                if self.hybrid.is_some() {
                    "present"
                } else {
                    "absent"
                }
            )));
        }
        // Training validates stacked_weight ∈ [0, 1]; a hand-edited or
        // corrupted config must not bypass that and serve extrapolated
        // aggregations (e.g. negative runtimes).
        if let Some(config) = &self.hybrid {
            if !(0.0..=1.0).contains(&config.stacked_weight) {
                return Err(ServeError::Json(format!(
                    "model artifact {source} has stacked_weight {} outside [0, 1]",
                    config.stacked_weight
                )));
            }
        }
        Ok(())
    }

    /// Assemble the servable predictor, arena-compiling every tree
    /// ensemble on the way ([`TrainedMl::into_fast_predictor`]): pure-ML
    /// kinds serve the compiled model directly; hybrids become a
    /// [`HybridPredictor`] over the compiled stacked model, the persisted
    /// configuration, and the workload's analytical model. Predictions are
    /// bit-identical to the interpreted assembly
    /// ([`SavedModel::into_interpreted_predictor`]).
    pub fn into_predictor(self) -> Result<Box<dyn PredictRow>, ServeError> {
        match self.hybrid {
            Some(config) => Ok(Box::new(HybridPredictor::new(
                self.workload.analytical_model(),
                self.ml.into_fast_predictor()?,
                config,
            ))),
            None => Ok(self.ml.into_fast_predictor()?),
        }
    }

    /// Assemble the predictor *without* arena compilation: the plain
    /// regressor for pure-ML kinds, or a [`HybridModel`] reassembled from
    /// fitted parts for hybrids. This is the pre-compilation serving path,
    /// kept as the reference implementation that equivalence tests and
    /// benchmarks compare [`SavedModel::into_predictor`] against.
    pub fn into_interpreted_predictor(self) -> Box<dyn PredictRow> {
        match self.hybrid {
            Some(config) => Box::new(HybridModel::from_fitted_parts(
                self.workload.analytical_model(),
                self.ml.into_regressor(),
                config,
            )),
            None => {
                let boxed: Box<dyn Regressor> = self.ml.into_regressor();
                Box::new(boxed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmm_small() -> WorkloadId {
        WorkloadId::get("fmm-small").expect("builtin workload")
    }

    #[test]
    fn kind_names_round_trip() {
        for k in ModelKind::all() {
            assert_eq!(k.name().parse::<ModelKind>().unwrap(), k);
        }
        assert!("gbm".parse::<ModelKind>().is_err());
    }

    #[test]
    fn file_names_round_trip() {
        for w in WorkloadId::all() {
            for k in ModelKind::all() {
                let name = SavedModel::file_name(w, k, 3);
                assert!(name.ends_with(".lamb"));
                assert_eq!(SavedModel::parse_file_name(&name), Some((w, k, 3)));
                let json = SavedModel::json_file_name(w, k, 3);
                assert!(json.ends_with(".json"));
                assert_eq!(SavedModel::parse_file_name(&json), Some((w, k, 3)));
            }
        }
        assert_eq!(SavedModel::parse_file_name("notes.txt"), None);
        assert_eq!(SavedModel::parse_file_name("a__b__v1.json"), None);
        assert_eq!(
            SavedModel::parse_file_name("fmm-small__cart__v1__extra.json"),
            None
        );
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        use lam_ml::model::Regressor as _;
        let data = fmm_small().dataset();
        let mut tree = DecisionTreeRegressor::new(lam_ml::tree::TreeParams::default(), 7);
        tree.fit(&data).unwrap();
        let saved = SavedModel {
            format_version: FORMAT_VERSION,
            workload: fmm_small(),
            kind: ModelKind::Cart,
            version: 1,
            feature_names: fmm_small().feature_names(),
            trained_rows: data.len(),
            hybrid: None,
            ml: TrainedMl::Cart(tree.clone()),
        };
        let dir = std::env::temp_dir().join("lam_serve_persist_test");
        let path = saved.save(&dir).unwrap();
        let back = SavedModel::load(&path).unwrap();
        assert_eq!(back.version, 1);
        assert_eq!(back.kind, ModelKind::Cart);
        let predictor = back.into_predictor().unwrap();
        for i in 0..data.len() {
            assert_eq!(
                lam_ml::model::Regressor::predict_row(&tree, data.row(i)).to_bits(),
                predictor.predict_row(data.row(i)).to_bits()
            );
        }
    }

    #[test]
    fn hybrid_config_invariant_enforced_on_load() {
        use lam_ml::model::Regressor as _;
        let dir = std::env::temp_dir().join("lam_serve_persist_badhybrid");
        std::fs::create_dir_all(&dir).unwrap();
        let d = lam_data::Dataset::new(vec!["x".into()], vec![1.0, 2.0], vec![1.0, 2.0]).unwrap();
        let mut lin = LinearRegressor::new(0.0);
        lin.fit(&d).unwrap();
        // Claims to be a hybrid but carries no hybrid config.
        let path = dir.join("fmm-small__hybrid__v3.json");
        let inconsistent = SavedModel {
            format_version: FORMAT_VERSION,
            workload: fmm_small(),
            kind: ModelKind::Hybrid,
            version: 3,
            feature_names: vec!["x".into()],
            trained_rows: 2,
            hybrid: None,
            ml: TrainedMl::Linear(lin),
        };
        lam_data::io::write_json(&inconsistent, &path).unwrap();
        assert!(matches!(SavedModel::load(&path), Err(ServeError::Json(_))));
    }

    #[test]
    fn format_version_mismatch_rejected() {
        let dir = std::env::temp_dir().join("lam_serve_persist_badver");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fmm-small__linear__v9.json");
        // Hand-write a file with a wrong format version.
        let mut lin = LinearRegressor::new(0.0);
        let d = lam_data::Dataset::new(vec!["x".into()], vec![1.0, 2.0], vec![1.0, 2.0]).unwrap();
        use lam_ml::model::Regressor;
        lin.fit(&d).unwrap();
        let bad = SavedModel {
            format_version: FORMAT_VERSION + 1,
            workload: fmm_small(),
            kind: ModelKind::Linear,
            version: 9,
            feature_names: vec!["x".into()],
            trained_rows: 2,
            hybrid: None,
            ml: TrainedMl::Linear(lin),
        };
        lam_data::io::write_json(&bad, &path).unwrap();
        assert!(matches!(SavedModel::load(&path), Err(ServeError::Json(_))));
    }
}
