//! The model registry: `(workload, kind, version)` → a loaded, servable
//! model.
//!
//! Resolution order on [`ModelRegistry::get`]:
//!
//! 1. **memo** — models already loaded this process, shared behind `Arc`;
//! 2. **binary artifact** — a compact `.lamb` file under the registry
//!    root written by an earlier process (the canonical format — loads
//!    without any float parsing);
//! 3. **JSON artifact** — a `.json` file under the root (artifacts from
//!    earlier builds, or written for inspection);
//! 4. **peer fetch** — when the registry was built with
//!    [`ModelRegistry::with_peers`], ask each peer's
//!    `GET /models/{workload}/{kind}/artifact` for the binary artifact;
//!    a hit is validated, persisted locally, and memoized — a cold
//!    replica pulls an already-trained model instead of re-training it;
//! 5. **train** — generate the workload dataset, fit the requested model
//!    family deterministically (seed derived from the key), persist the
//!    binary artifact, then memoize it.
//!
//! Loading arena-compiles tree ensembles ([`SavedModel::into_predictor`]),
//! so every served prediction runs the blocked, branchless fast path.
//!
//! Training happens *outside* the registry lock, so a cold miss on one
//! model never blocks serving traffic on already-loaded ones; if two
//! threads race on the same cold key, the first insert wins and the loser
//! adopts the winner's `Arc` (training is deterministic, so both built
//! the same model).

use crate::batch::{BatchEngine, BatchOutcome};
use crate::persist::{ModelKind, SavedModel, TrainedMl, FORMAT_VERSION};
use crate::workload::WorkloadId;
use crate::ServeError;
use lam_core::predict::PredictRow;
use lam_ml::ensemble::GradientBoostingRegressor;
use lam_ml::forest::{ExtraTreesRegressor, RandomForestRegressor};
use lam_ml::knn::KnnRegressor;
use lam_ml::linear::LinearRegressor;
use lam_ml::model::Regressor;
use lam_ml::sampling::train_test_split_fraction;
use lam_ml::tree::{DecisionTreeRegressor, TreeParams};
use lam_obs::recorder::SpanStatus;
use lam_obs::{Counter, SpanRecord};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fraction of the workload dataset used to train servable models (the
/// rest is the serving surface the paper's protocol predicts onto).
pub const TRAIN_FRACTION: f64 = 0.35;

/// Trees per servable forest (smaller than the figure experiments' 100:
/// serving favours latency, and accuracy saturates well before this).
pub const N_TREES: usize = 50;

/// Identity of one servable model artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Scenario the model serves.
    pub workload: WorkloadId,
    /// Model family.
    pub kind: ModelKind,
    /// Artifact version within `(workload, kind)`.
    pub version: u32,
}

impl ModelKey {
    /// Assemble a key.
    pub fn new(workload: WorkloadId, kind: ModelKind, version: u32) -> Self {
        Self {
            workload,
            kind,
            version,
        }
    }

    /// Deterministic training seed: stable across processes so a retrain
    /// of the same key reproduces the same artifact bit for bit.
    fn train_seed(&self) -> u64 {
        let kind_ix = ModelKind::all()
            .iter()
            .position(|k| *k == self.kind)
            .expect("kind in canonical list") as u64;
        0x5E_ED_1A_A1 ^ (kind_ix << 32) ^ u64::from(self.version)
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/v{}", self.workload, self.kind, self.version)
    }
}

/// A loaded model ready to serve: metadata, the immutable predictor, and
/// its private batched-inference engine (the cache is keyed by feature
/// vector, so sharing one across models would alias their entries).
pub struct LoadedModel {
    /// The model's identity.
    pub key: ModelKey,
    /// Feature schema requests must match.
    pub feature_names: Vec<String>,
    /// Training rows used when the artifact was built.
    pub trained_rows: usize,
    predictor: Box<dyn PredictRow>,
    engine: BatchEngine,
}

impl LoadedModel {
    fn from_saved(key: ModelKey, saved: SavedModel) -> Result<Self, ServeError> {
        // Per-model metric scope (`workload/kind`): cache hit rates and
        // batch-size distributions are only actionable per model. Label
        // interning happens here, at load time — never per prediction.
        let scope = format!("{}/{}", key.workload, key.kind);
        Ok(Self {
            key,
            feature_names: saved.feature_names.clone(),
            trained_rows: saved.trained_rows,
            predictor: saved.into_predictor()?,
            engine: BatchEngine::scoped(
                lam_core::batch::DEFAULT_MICRO_BATCH,
                lam_core::batch::DEFAULT_MICRO_BATCH,
                &scope,
            ),
        })
    }

    /// Validate feature counts and finiteness, then predict the batch
    /// through the cache and micro-batch executor. Response order matches
    /// request order.
    pub fn predict_checked(&self, rows: &[Vec<f64>]) -> Result<BatchOutcome, ServeError> {
        crate::batch::validate_rows(self.feature_names.len(), rows)?;
        Ok(self.engine.predict(&*self.predictor, rows))
    }

    /// Predict a batch, panicking on schema mismatch (test/bench helper).
    pub fn predict(&self, rows: &[Vec<f64>]) -> BatchOutcome {
        self.predict_checked(rows).expect("feature count matches")
    }

    /// Direct, cache-bypassing single-row prediction.
    pub fn predict_row_uncached(&self, row: &[f64]) -> f64 {
        self.predictor.predict_row(row)
    }

    /// The model's batched-inference engine.
    pub fn engine(&self) -> &BatchEngine {
        &self.engine
    }
}

// A loaded model is a coalescing target for the cross-connection
// `BatchScheduler`: rows gathered from many concurrent requests run as
// one batch through this model's own cache + executor, and the per-row
// hit mask lets the scheduler hand each request back its exact
// `cache_hits` share.
impl lam_core::batch::BatchTarget for LoadedModel {
    fn run_batch(&self, rows: &[Vec<f64>]) -> lam_core::batch::MaskedOutcome {
        self.engine.predict_masked(&*self.predictor, rows)
    }
}

// A loaded model is directly usable wherever an object-safe predictor is
// expected — e.g. as the guiding model of a `lam-tune` strategy. Batch
// prediction routes through the model's own cache + executor.
impl PredictRow for LoadedModel {
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.predictor.predict_row(x)
    }

    fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.engine.predict(&*self.predictor, rows).predictions
    }
}

/// One row of the registry's catalog (the `/models` endpoint).
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The artifact's identity.
    pub key: ModelKey,
    /// Artifact path under the registry root.
    pub path: PathBuf,
    /// `true` when the model is memoized in this process.
    pub loaded: bool,
}

/// Resolution-path counters of one registry, interned at construction:
/// how a `get` was satisfied. The ratio of `memo` to the disk/train
/// paths is the cold-start picture of a serving process.
struct ResolutionCounters {
    memo: Arc<Counter>,
    disk_lamb: Arc<Counter>,
    disk_json: Arc<Counter>,
    peer: Arc<Counter>,
    train: Arc<Counter>,
}

impl ResolutionCounters {
    fn new() -> Self {
        let counter = |path: &str| {
            lam_obs::global().counter(
                "lam_registry_resolutions_total",
                "Model-registry resolutions, by resolution path.",
                &[("path", path)],
            )
        };
        Self {
            memo: counter("memo"),
            disk_lamb: counter("disk-lamb"),
            disk_json: counter("disk-json"),
            peer: counter("peer"),
            train: counter("train"),
        }
    }
}

/// Train-on-miss, persist, memoize model registry.
pub struct ModelRegistry {
    root: PathBuf,
    memo: Mutex<HashMap<ModelKey, Arc<LoadedModel>>>,
    resolutions: ResolutionCounters,
    /// Peer backends (`host:port`) asked for artifacts before training.
    peers: Vec<String>,
}

impl ModelRegistry {
    /// Registry rooted at `root` (conventionally `results/models`). The
    /// directory is created lazily on first persist.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            memo: Mutex::new(HashMap::new()),
            resolutions: ResolutionCounters::new(),
            peers: Vec::new(),
        }
    }

    /// Registry that asks `peers` (`host:port` addresses of other
    /// lam-serve processes) for missing artifacts before falling back to
    /// training them itself.
    pub fn with_peers(root: impl Into<PathBuf>, peers: Vec<String>) -> Self {
        let mut reg = Self::new(root);
        reg.peers = peers;
        reg
    }

    /// The conventional on-disk root.
    pub fn default_root() -> PathBuf {
        PathBuf::from("results/models")
    }

    /// Canonical (binary) artifact path for a key.
    pub fn path_for(&self, key: ModelKey) -> PathBuf {
        self.root
            .join(SavedModel::file_name(key.workload, key.kind, key.version))
    }

    /// JSON artifact path for a key (the fallback format).
    pub fn json_path_for(&self, key: ModelKey) -> PathBuf {
        self.root.join(SavedModel::json_file_name(
            key.workload,
            key.kind,
            key.version,
        ))
    }

    /// Registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of models memoized in this process.
    pub fn loaded_count(&self) -> usize {
        self.memo.lock().expect("registry poisoned").len()
    }

    /// Resolve a key: memo, then disk, then train + persist (see module
    /// docs for the concurrency contract).
    pub fn get(&self, key: ModelKey) -> Result<Arc<LoadedModel>, ServeError> {
        if let Some(hit) = self.memo.lock().expect("registry poisoned").get(&key) {
            self.resolutions.memo.inc();
            return Ok(Arc::clone(hit));
        }
        // Every non-memo path is slow (disk read, peer fetch, or a full
        // training run), so it earns a `registry.resolve` span hung off
        // the requesting handler's thread-local trace context.
        let resolve_started = Instant::now();
        let mut resolved_via = "disk-lamb";
        // Binary first, JSON fallback (see module docs).
        let on_disk = [self.path_for(key), self.json_path_for(key)]
            .into_iter()
            .find(|p| p.is_file());
        let saved = match on_disk {
            Some(path) => {
                if path.extension().is_some_and(|e| e == "lamb") {
                    self.resolutions.disk_lamb.inc();
                } else {
                    self.resolutions.disk_json.inc();
                    resolved_via = "disk-json";
                }
                let saved = SavedModel::load(&path)?;
                // A renamed or tampered artifact must not be served under
                // the requested identity (wrong schema, silently wrong
                // answers).
                let embedded = ModelKey::new(saved.workload, saved.kind, saved.version);
                if embedded != key {
                    return Err(ServeError::Json(format!(
                        "artifact {} embeds key {embedded}, expected {key}",
                        path.display()
                    )));
                }
                saved
            }
            None => match self.fetch_from_peers(key) {
                Some(fetched) => {
                    resolved_via = "peer";
                    fetched
                }
                None => {
                    resolved_via = "train";
                    self.resolutions.train.inc();
                    // Train duration is a cold-path metric: interning the
                    // (workload, kind) labels here costs nothing that
                    // matters next to the training run itself.
                    let timer = lam_obs::enabled().then(Instant::now);
                    let trained = train(key)?;
                    if let Some(t) = timer {
                        lam_obs::global()
                            .histogram(
                                "lam_train_duration_ns",
                                "Train-on-miss model training time, nanoseconds.",
                                &[
                                    ("workload", &key.workload.to_string()),
                                    ("kind", key.kind.name()),
                                ],
                            )
                            .record(t.elapsed().as_nanos() as u64);
                    }
                    trained.save(&self.root)?;
                    trained
                }
            },
        };
        let loaded = Arc::new(LoadedModel::from_saved(key, saved)?);
        if let Some(parent) = lam_obs::trace::current() {
            lam_obs::recorder::global().record(
                SpanRecord::finish(
                    &parent.child(crate::http::CHILD_RESOLVE),
                    parent.span_id,
                    "registry.resolve",
                    resolve_started,
                    SpanStatus::Ok,
                )
                .annotate("path", resolved_via)
                .annotate("model", key.to_string()),
            );
        }
        let mut memo = self.memo.lock().expect("registry poisoned");
        // First insert wins; a racing trainer built the identical model.
        Ok(Arc::clone(memo.entry(key).or_insert(loaded)))
    }

    /// Ask each configured peer for the artifact, first answer wins. A
    /// fetched artifact is validated (embedded key must match the
    /// request) and persisted locally so the *next* cold start resolves
    /// from disk. Any per-peer failure — connect refused, non-200, bytes
    /// that do not decode — moves on to the next peer; `None` falls the
    /// caller through to training.
    fn fetch_from_peers(&self, key: ModelKey) -> Option<SavedModel> {
        for peer in &self.peers {
            let bytes = match crate::cluster::fetch_artifact(peer, key) {
                Ok(bytes) => bytes,
                Err(_) => continue,
            };
            let source = format!("peer {peer}");
            let saved = match SavedModel::from_lamb_bytes(&bytes, &source) {
                Ok(saved) => saved,
                Err(_) => continue,
            };
            // Same defense as the disk path: a peer serving bytes for the
            // wrong identity must not be served under the requested key.
            let embedded = ModelKey::new(saved.workload, saved.kind, saved.version);
            if embedded != key {
                continue;
            }
            self.resolutions.peer.inc();
            // Best-effort local persist: a full disk degrades the next
            // cold start back to peer-fetch, it does not fail this one.
            let _ = saved.save(&self.root);
            return Some(saved);
        }
        None
    }

    /// The binary artifact bytes for a key, *without ever training*: the
    /// `.lamb` file's bytes when present, else a conversion of the
    /// `.json` artifact, else `None` (the artifact endpoint's 404). Peers
    /// poll each other through this, so a miss must stay cheap.
    pub fn artifact_bytes(&self, key: ModelKey) -> Result<Option<Vec<u8>>, ServeError> {
        let lamb = self.path_for(key);
        if lamb.is_file() {
            // Validate before serving: replicating a corrupt or renamed
            // artifact across the cluster would be worse than a 404.
            let saved = SavedModel::load(&lamb)?;
            if ModelKey::new(saved.workload, saved.kind, saved.version) != key {
                return Err(ServeError::Json(format!(
                    "artifact {} embeds a different key, refusing to serve it",
                    lamb.display()
                )));
            }
            return Ok(Some(std::fs::read(&lamb)?));
        }
        let json = self.json_path_for(key);
        if json.is_file() {
            let saved = SavedModel::load(&json)?;
            if ModelKey::new(saved.workload, saved.kind, saved.version) != key {
                return Err(ServeError::Json(format!(
                    "artifact {} embeds a different key, refusing to serve it",
                    json.display()
                )));
            }
            return Ok(Some(saved.to_lamb_bytes()?));
        }
        Ok(None)
    }

    /// Everything the registry can serve without training: artifacts on
    /// disk plus models memoized in this process, sorted by name.
    pub fn catalog(&self) -> Result<Vec<CatalogEntry>, ServeError> {
        let memo = self.memo.lock().expect("registry poisoned");
        let mut entries: HashMap<ModelKey, CatalogEntry> = memo
            .keys()
            .map(|&key| {
                (
                    key,
                    CatalogEntry {
                        key,
                        path: self.path_for(key),
                        loaded: true,
                    },
                )
            })
            .collect();
        drop(memo);
        if self.root.is_dir() {
            for entry in std::fs::read_dir(&self.root)? {
                let name = entry?.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some((workload, kind, version)) = SavedModel::parse_file_name(name) else {
                    continue;
                };
                let key = ModelKey::new(workload, kind, version);
                // A key persisted in both formats catalogs once, under its
                // canonical binary path.
                entries
                    .entry(key)
                    .and_modify(|e| {
                        if name.ends_with(".lamb") {
                            e.path = self.root.join(name);
                        }
                    })
                    .or_insert_with(|| CatalogEntry {
                        key,
                        path: self.root.join(name),
                        loaded: false,
                    });
            }
        }
        let mut list: Vec<CatalogEntry> = entries.into_values().collect();
        list.sort_by_key(|e| e.key.to_string());
        Ok(list)
    }
}

/// Train the model a key names, deterministically. The workload dataset
/// comes from the catalog entry's memo, so training all model kinds for
/// one workload pays exactly one oracle sweep.
pub fn train(key: ModelKey) -> Result<SavedModel, ServeError> {
    let data = key.workload.dataset();
    let seed = key.train_seed();
    let (train, _) = train_test_split_fraction(&data, TRAIN_FRACTION, seed);
    let params = TreeParams::default();

    let (hybrid, ml) = match key.kind {
        ModelKind::Cart => {
            let mut m = DecisionTreeRegressor::new(params, seed);
            m.fit(&train)?;
            (None, TrainedMl::Cart(m))
        }
        ModelKind::RandomForest => {
            let mut m = RandomForestRegressor::with_params(N_TREES, params, seed);
            m.fit(&train)?;
            (None, TrainedMl::RandomForest(m))
        }
        ModelKind::ExtraTrees => {
            let mut m = ExtraTreesRegressor::with_params(N_TREES, params, seed);
            m.fit(&train)?;
            (None, TrainedMl::ExtraTrees(m))
        }
        ModelKind::Boosting => {
            let mut m = GradientBoostingRegressor::new(200, 0.1, seed);
            m.fit(&train)?;
            (None, TrainedMl::Boosting(m))
        }
        ModelKind::Knn => {
            let mut m = KnnRegressor::new(5).weighted();
            m.fit(&train)?;
            (None, TrainedMl::Knn(m))
        }
        ModelKind::Linear => {
            let mut m = LinearRegressor::new(1e-9);
            m.fit(&train)?;
            (None, TrainedMl::Linear(m))
        }
        ModelKind::Hybrid => {
            // Augment exactly as HybridModel::fit would, fit the stacked
            // extra trees on the augmented rows, and persist the parts the
            // hybrid is reassembled from at load time.
            let config = key.workload.hybrid_config();
            let am = key.workload.analytical_model();
            let am_feature: Vec<f64> = (0..train.len())
                .map(|i| config.stacked_feature(am.predict(train.row(i))))
                .collect();
            let augmented = train
                .with_column(lam_core::hybrid::AM_FEATURE, &am_feature)
                .expect("augmentation length matches dataset");
            let mut m = ExtraTreesRegressor::with_params(N_TREES, params, seed);
            m.fit(&augmented)?;
            (Some(config), TrainedMl::ExtraTrees(m))
        }
    };

    Ok(SavedModel {
        format_version: FORMAT_VERSION,
        workload: key.workload,
        kind: key.kind,
        version: key.version,
        feature_names: key.workload.feature_names(),
        trained_rows: train.len(),
        hybrid,
        ml,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!("lam_serve_registry_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        ModelRegistry::new(dir)
    }

    fn fmm_small() -> WorkloadId {
        WorkloadId::get("fmm-small").expect("builtin workload")
    }

    #[test]
    fn get_trains_persists_and_memoizes() {
        let reg = temp_registry("basic");
        let key = ModelKey::new(fmm_small(), ModelKind::Cart, 1);
        assert!(!reg.path_for(key).exists());
        let a = reg.get(key).unwrap();
        assert!(reg.path_for(key).is_file(), "artifact persisted");
        assert_eq!(reg.loaded_count(), 1);
        // Second get is a pure memo hit: the same Arc.
        let b = reg.get(key).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn restart_loads_from_disk_with_identical_predictions() {
        let reg = temp_registry("restart");
        let key = ModelKey::new(fmm_small(), ModelKind::Hybrid, 2);
        let first = reg.get(key).unwrap();
        let rows = fmm_small().sample_rows(32);
        let before = first.predict(&rows).predictions;

        // A fresh registry over the same root simulates a process restart.
        let reg2 = ModelRegistry::new(reg.root().to_path_buf());
        let second = reg2.get(key).unwrap();
        let after = second.predict(&rows).predictions;
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn training_is_deterministic_per_key() {
        let key = ModelKey::new(fmm_small(), ModelKind::ExtraTrees, 7);
        let a = train(key).unwrap();
        let b = train(key).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn versions_are_distinct_artifacts() {
        let reg = temp_registry("versions");
        let v1 = ModelKey::new(fmm_small(), ModelKind::Cart, 1);
        let v2 = ModelKey::new(fmm_small(), ModelKind::Cart, 2);
        reg.get(v1).unwrap();
        reg.get(v2).unwrap();
        assert_ne!(reg.path_for(v1), reg.path_for(v2));
        assert!(reg.path_for(v1).is_file() && reg.path_for(v2).is_file());
        assert_eq!(reg.loaded_count(), 2);
    }

    #[test]
    fn resolution_paths_feed_the_metrics_registry() {
        let path_counter = |path: &str| {
            lam_obs::global()
                .counter("lam_registry_resolutions_total", "", &[("path", path)])
                .get()
        };
        let (memo0, lamb0, json0, train0) = (
            path_counter("memo"),
            path_counter("disk-lamb"),
            path_counter("disk-json"),
            path_counter("train"),
        );
        let reg = temp_registry("obs_paths");
        let key = ModelKey::new(fmm_small(), ModelKind::Linear, 9);
        reg.get(key).unwrap(); // cold: train
        reg.get(key).unwrap(); // memo hit
        let reg2 = ModelRegistry::new(reg.root().to_path_buf());
        reg2.get(key).unwrap(); // binary artifact from disk
        let reg3 = temp_registry("obs_paths_json");
        train(key).unwrap().save_json(reg3.root()).unwrap();
        reg3.get(key).unwrap(); // JSON fallback
                                // Other tests in this binary bump the same global series
                                // concurrently, so assert growth, not exact values.
        assert!(path_counter("train") > train0);
        assert!(path_counter("memo") > memo0);
        assert!(path_counter("disk-lamb") > lamb0);
        assert!(path_counter("disk-json") > json0);
    }

    #[test]
    fn catalog_merges_disk_and_memo() {
        let reg = temp_registry("catalog");
        let key = ModelKey::new(fmm_small(), ModelKind::Linear, 1);
        reg.get(key).unwrap();
        // A foreign file in the root is ignored.
        std::fs::write(reg.root().join("README.txt"), "not a model").unwrap();
        let catalog = reg.catalog().unwrap();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog[0].key, key);
        assert!(catalog[0].loaded);

        // A fresh registry sees the artifact on disk, unloaded.
        let reg2 = ModelRegistry::new(reg.root().to_path_buf());
        let catalog2 = reg2.catalog().unwrap();
        assert_eq!(catalog2.len(), 1);
        assert!(!catalog2[0].loaded);
    }

    #[test]
    fn json_artifact_resolves_when_no_binary_exists() {
        let reg = temp_registry("json_fallback");
        let key = ModelKey::new(fmm_small(), ModelKind::Cart, 1);
        train(key).unwrap().save_json(reg.root()).unwrap();
        assert!(!reg.path_for(key).exists());
        let model = reg.get(key).unwrap();
        // Train-on-miss would have persisted a binary artifact; its
        // absence proves the JSON fallback served the request.
        assert!(
            !reg.path_for(key).exists(),
            "resolved from JSON without retraining"
        );
        assert_eq!(model.key, key);
    }

    #[test]
    fn binary_artifact_preferred_over_json() {
        let reg = temp_registry("binary_first");
        let key = ModelKey::new(fmm_small(), ModelKind::Cart, 1);
        train(key).unwrap().save(reg.root()).unwrap();
        // A corrupt JSON sibling must never be read when the binary
        // artifact exists.
        std::fs::write(reg.json_path_for(key), "{ not json").unwrap();
        assert!(reg.get(key).is_ok());
    }

    #[test]
    fn catalog_lists_dual_format_artifacts_once() {
        let reg = temp_registry("dual_catalog");
        let key = ModelKey::new(fmm_small(), ModelKind::Linear, 1);
        let trained = train(key).unwrap();
        trained.save(reg.root()).unwrap();
        trained.save_json(reg.root()).unwrap();
        let catalog = reg.catalog().unwrap();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog[0].path, reg.path_for(key), "canonical binary path");
    }

    #[test]
    fn renamed_artifact_rejected() {
        let reg = temp_registry("renamed");
        let key = ModelKey::new(fmm_small(), ModelKind::Cart, 1);
        reg.get(key).unwrap();
        // An artifact copied under another key's filename must not be
        // served as that key.
        let other = ModelKey::new(fmm_small(), ModelKind::Cart, 2);
        std::fs::copy(reg.path_for(key), reg.path_for(other)).unwrap();
        let fresh = ModelRegistry::new(reg.root().to_path_buf());
        assert!(matches!(fresh.get(other), Err(ServeError::Json(_))));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let reg = temp_registry("schema");
        let key = ModelKey::new(fmm_small(), ModelKind::Linear, 1);
        let model = reg.get(key).unwrap();
        let bad = vec![vec![1.0, 2.0]]; // fmm rows have 4 features
        assert!(matches!(
            model.predict_checked(&bad),
            Err(ServeError::FeatureCount {
                expected: 4,
                actual: 2,
                row: 0
            })
        ));
    }
}
