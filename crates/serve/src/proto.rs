//! Incremental HTTP/1.1 request parsing and response encoding for the
//! event-driven server: pure byte-buffer in, value out — no I/O, no
//! blocking, so the reactor can feed it whatever a non-blocking read
//! produced and resume exactly where the bytes ran out.
//!
//! The parser is deliberately the same dialect the old blocking reader
//! accepted: request line + headers terminated by a blank line (bare `\n`
//! line endings tolerated), `content-length` framing only (no chunked
//! bodies — no client of this API sends them), `connection: close` as the
//! sole keep-alive opt-out. What *is* new is that every limit is enforced
//! incrementally: an unbounded header stream trips [`ParseStep::Invalid`]
//! as soon as the buffered head exceeds the cap, not after an allocation.

/// One fully parsed request, ready for routing.
#[derive(Debug)]
pub struct ParsedRequest {
    /// Request method, e.g. `GET`.
    pub method: String,
    /// Request path, e.g. `/predict`.
    pub path: String,
    /// Whether the connection stays open after the response
    /// (HTTP/1.1 default true; `connection: close` opts out).
    pub keep_alive: bool,
    /// Request body, exactly `content-length` bytes.
    pub body: Vec<u8>,
}

/// Outcome of one [`RequestParser::poll`] call.
#[derive(Debug)]
pub enum ParseStep {
    /// The buffer does not hold a full request yet; read more bytes.
    Incomplete,
    /// One request parsed and drained from the buffer. More pipelined
    /// requests may follow — poll again.
    Request(ParsedRequest),
    /// The byte stream is not a request this server can serve. Answer
    /// with `status`/`message` and close: after a framing error the
    /// stream cannot be resynchronized.
    Invalid {
        /// Response status (always 4xx).
        status: u16,
        /// Human-readable diagnostic for the error body.
        message: String,
    },
}

/// Total bytes allowed for a request line + headers. Bounds
/// per-connection memory for the pre-body part of a request the way
/// `max_body` bounds the body, and is the slowloris attacker's budget.
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// Head parsed, waiting for `content_length` body bytes.
#[derive(Debug)]
struct PendingBody {
    method: String,
    path: String,
    keep_alive: bool,
    content_length: usize,
}

/// Per-connection incremental parser. Holds only *parse position*, never
/// bytes — the connection's read buffer is the single copy of unconsumed
/// input.
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    pending: Option<PendingBody>,
    /// Prefix of the buffer already scanned for the head terminator, so
    /// repeated polls over a slowly growing head stay linear overall.
    scanned: usize,
}

impl RequestParser {
    /// Parser enforcing `max_body` (the head cap is the fixed
    /// [`MAX_HEAD_BYTES`]).
    pub fn new(max_body: usize) -> Self {
        Self {
            max_body,
            pending: None,
            scanned: 0,
        }
    }

    /// A request is mid-parse: some bytes arrived (or a head parsed) but
    /// the request is not complete. Distinguishes a stalled sender (the
    /// slowloris timeout applies) from an idle keep-alive connection (the
    /// longer idle timeout applies).
    pub fn mid_request(&self, buf: &[u8]) -> bool {
        self.pending.is_some() || !buf.is_empty()
    }

    /// Try to parse one request out of `buf`, draining consumed bytes.
    pub fn poll(&mut self, buf: &mut Vec<u8>) -> ParseStep {
        if self.pending.is_none() {
            match self.find_head_end(buf) {
                Some(head_end) => {
                    let step = self.parse_head(&buf[..head_end]);
                    buf.drain(..head_end);
                    self.scanned = 0;
                    if let Some(invalid) = step {
                        return invalid;
                    }
                }
                None => {
                    if buf.len() > MAX_HEAD_BYTES {
                        return ParseStep::Invalid {
                            status: 400,
                            message: format!(
                                "request line and headers exceed {MAX_HEAD_BYTES} bytes"
                            ),
                        };
                    }
                    return ParseStep::Incomplete;
                }
            }
        }
        let pending = self.pending.as_ref().expect("head parsed above");
        if buf.len() < pending.content_length {
            return ParseStep::Incomplete;
        }
        let pending = self.pending.take().expect("checked");
        let body: Vec<u8> = buf.drain(..pending.content_length).collect();
        ParseStep::Request(ParsedRequest {
            method: pending.method,
            path: pending.path,
            keep_alive: pending.keep_alive,
            body,
        })
    }

    /// Index one past the head's terminating blank line (`\r\n\r\n` or
    /// any `\n`-delimited empty line), or `None` if not yet received.
    fn find_head_end(&mut self, buf: &[u8]) -> Option<usize> {
        // Resume a few bytes back so a terminator split across reads is
        // still seen: the scan anchors on the *first* `\n` of `\n\n` /
        // `\n\r\n`, which can sit up to 3 bytes before the old end when
        // the tail of a `\r\n\r\n` arrives in a later read.
        let start = self.scanned.saturating_sub(3);
        for i in start..buf.len() {
            if buf[i] != b'\n' {
                continue;
            }
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        self.scanned = buf.len();
        None
    }

    /// Parse the request line + headers; on success stores the pending
    /// body frame and returns `None`, otherwise returns the `Invalid`
    /// step to serve.
    fn parse_head(&mut self, head: &[u8]) -> Option<ParseStep> {
        if head.len() > MAX_HEAD_BYTES {
            return Some(ParseStep::Invalid {
                status: 400,
                message: format!("request line and headers exceed {MAX_HEAD_BYTES} bytes"),
            });
        }
        let Ok(head) = std::str::from_utf8(head) else {
            return Some(ParseStep::Invalid {
                status: 400,
                message: "request bytes are not utf-8".to_string(),
            });
        };
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
            return Some(ParseStep::Invalid {
                status: 400,
                message: "malformed request line".to_string(),
            });
        };
        let mut content_length = 0usize;
        let mut keep_alive = true; // HTTP/1.1 default
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.parse() else {
                    return Some(ParseStep::Invalid {
                        status: 400,
                        message: "bad content-length".to_string(),
                    });
                };
                content_length = n;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
        if content_length > self.max_body {
            return Some(ParseStep::Invalid {
                status: 400,
                message: format!(
                    "body of {content_length} bytes exceeds limit {}",
                    self.max_body
                ),
            });
        }
        self.pending = Some(PendingBody {
            method: method.to_string(),
            path: path.to_string(),
            keep_alive,
            content_length,
        });
        None
    }
}

/// Reason phrase for every status this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Encode one response. `retry_after` adds a `retry-after: N` header
/// (load-shedding responses carry it so clients back off instead of
/// hammering).
pub fn encode_response(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u32>,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = Vec::with_capacity(160 + body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            reason(status),
            body.len()
        )
        .as_bytes(),
    );
    if let Some(secs) = retry_after {
        out.extend_from_slice(format!("retry-after: {secs}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll_all(parser: &mut RequestParser, buf: &mut Vec<u8>) -> Vec<ParsedRequest> {
        let mut out = Vec::new();
        loop {
            match parser.poll(buf) {
                ParseStep::Request(r) => out.push(r),
                ParseStep::Incomplete => return out,
                ParseStep::Invalid { status, message } => {
                    panic!("unexpected invalid ({status}): {message}")
                }
            }
        }
    }

    #[test]
    fn parses_a_request_delivered_byte_by_byte() {
        let raw = b"POST /predict HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        let mut parser = RequestParser::new(1024);
        let mut buf = Vec::new();
        for (i, &b) in raw.iter().enumerate() {
            buf.push(b);
            match parser.poll(&mut buf) {
                ParseStep::Incomplete => assert!(i + 1 < raw.len(), "never completed"),
                ParseStep::Request(req) => {
                    assert_eq!(i + 1, raw.len(), "completed early at byte {i}");
                    assert_eq!(req.method, "POST");
                    assert_eq!(req.path, "/predict");
                    assert_eq!(req.body, b"abcd");
                    assert!(req.keep_alive);
                    assert!(buf.is_empty());
                    return;
                }
                ParseStep::Invalid { message, .. } => panic!("invalid: {message}"),
            }
        }
        panic!("request never parsed");
    }

    #[test]
    fn parses_pipelined_requests_in_order() {
        let mut parser = RequestParser::new(1024);
        let mut buf = Vec::new();
        buf.extend_from_slice(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let reqs = poll_all(&mut parser, &mut buf);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].path, "/a");
        assert!(reqs[0].keep_alive);
        assert_eq!(reqs[1].path, "/b");
        assert!(!reqs[1].keep_alive);
        assert!(buf.is_empty());
    }

    #[test]
    fn tolerates_bare_newline_heads() {
        let mut parser = RequestParser::new(1024);
        let mut buf = b"GET /healthz HTTP/1.1\nhost: x\n\n".to_vec();
        let reqs = poll_all(&mut parser, &mut buf);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/healthz");
    }

    #[test]
    fn oversized_body_is_invalid_with_the_contract_message() {
        let mut parser = RequestParser::new(8);
        let mut buf = b"POST /predict HTTP/1.1\r\ncontent-length: 9\r\n\r\n".to_vec();
        match parser.poll(&mut buf) {
            ParseStep::Invalid { status, message } => {
                assert_eq!(status, 400);
                assert!(message.contains("exceeds limit"), "{message}");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_head_is_rejected_at_the_cap() {
        let mut parser = RequestParser::new(1024);
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        // Headers forever, never a blank line.
        while buf.len() <= MAX_HEAD_BYTES {
            buf.extend_from_slice(b"x-filler: yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
            match parser.poll(&mut buf) {
                ParseStep::Incomplete => {}
                ParseStep::Invalid { status, message } => {
                    assert_eq!(status, 400);
                    assert!(message.contains("exceed"), "{message}");
                    return;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match parser.poll(&mut buf) {
            ParseStep::Invalid { .. } => {}
            other => panic!("cap never enforced: {other:?}"),
        }
    }

    #[test]
    fn garbage_request_line_is_invalid() {
        let mut parser = RequestParser::new(1024);
        let mut buf = b"NONSENSE\r\n\r\n".to_vec();
        match parser.poll(&mut buf) {
            ParseStep::Invalid { status, message } => {
                assert_eq!(status, 400);
                assert!(message.contains("malformed request line"), "{message}");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn mid_request_distinguishes_idle_from_stalled() {
        let mut parser = RequestParser::new(1024);
        let mut buf = Vec::new();
        assert!(!parser.mid_request(&buf), "idle connection");
        buf.extend_from_slice(b"GET /he");
        assert!(parser.mid_request(&buf), "partial head");
        buf.clear();
        buf.extend_from_slice(b"POST /p HTTP/1.1\r\ncontent-length: 5\r\n\r\nab");
        assert!(matches!(parser.poll(&mut buf), ParseStep::Incomplete));
        assert!(parser.mid_request(&buf), "head parsed, body outstanding");
    }

    #[test]
    fn encode_response_shapes_the_wire_bytes() {
        let bytes = encode_response(503, "application/json", "{}", true, Some(1));
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        let bytes = encode_response(200, "application/json", "hi", false, None);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("connection: close"), "{text}");
        assert!(!text.contains("retry-after"), "{text}");
    }
}
