//! Incremental HTTP/1.1 request *and response* parsing plus response
//! encoding for the event-driven server and the cluster gateway: pure
//! byte-buffer in, value out — no I/O, no blocking, so the reactor (and
//! the gateway's upstream scatter/gather loop) can feed it whatever a
//! non-blocking read produced and resume exactly where the bytes ran
//! out.
//!
//! The parser is deliberately the same dialect the old blocking reader
//! accepted: request line + headers terminated by a blank line (bare `\n`
//! line endings tolerated), `content-length` framing only (no chunked
//! bodies — no client of this API sends them), `connection: close` as the
//! sole keep-alive opt-out. What *is* new is that every limit is enforced
//! incrementally: an unbounded header stream trips [`ParseStep::Invalid`]
//! as soon as the buffered head exceeds the cap, not after an allocation.

/// One fully parsed request, ready for routing.
#[derive(Debug)]
pub struct ParsedRequest {
    /// Request method, e.g. `GET`.
    pub method: String,
    /// Request path, e.g. `/predict`.
    pub path: String,
    /// Whether the connection stays open after the response
    /// (HTTP/1.1 default true; `connection: close` opts out).
    pub keep_alive: bool,
    /// Raw `x-lam-trace` header value, if the client sent one (parsed
    /// lazily by handlers that trace; a malformed value is treated as
    /// absent there, never rejected here).
    pub trace: Option<String>,
    /// Request body, exactly `content-length` bytes.
    pub body: Vec<u8>,
}

/// Outcome of one [`RequestParser::poll`] call.
#[derive(Debug)]
pub enum ParseStep {
    /// The buffer does not hold a full request yet; read more bytes.
    Incomplete,
    /// One request parsed and drained from the buffer. More pipelined
    /// requests may follow — poll again.
    Request(ParsedRequest),
    /// The byte stream is not a request this server can serve. Answer
    /// with `status`/`message` and close: after a framing error the
    /// stream cannot be resynchronized.
    Invalid {
        /// Response status (always 4xx).
        status: u16,
        /// Human-readable diagnostic for the error body.
        message: String,
    },
}

/// Total bytes allowed for a request line + headers. Bounds
/// per-connection memory for the pre-body part of a request the way
/// `max_body` bounds the body, and is the slowloris attacker's budget.
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// Head parsed, waiting for `content_length` body bytes.
#[derive(Debug)]
struct PendingBody {
    method: String,
    path: String,
    keep_alive: bool,
    trace: Option<String>,
    content_length: usize,
}

/// Per-connection incremental parser. Holds only *parse position*, never
/// bytes — the connection's read buffer is the single copy of unconsumed
/// input.
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    pending: Option<PendingBody>,
    /// Prefix of the buffer already scanned for the head terminator, so
    /// repeated polls over a slowly growing head stay linear overall.
    scanned: usize,
}

impl RequestParser {
    /// Parser enforcing `max_body` (the head cap is the fixed
    /// [`MAX_HEAD_BYTES`]).
    pub fn new(max_body: usize) -> Self {
        Self {
            max_body,
            pending: None,
            scanned: 0,
        }
    }

    /// A request is mid-parse: some bytes arrived (or a head parsed) but
    /// the request is not complete. Distinguishes a stalled sender (the
    /// slowloris timeout applies) from an idle keep-alive connection (the
    /// longer idle timeout applies).
    pub fn mid_request(&self, buf: &[u8]) -> bool {
        self.pending.is_some() || !buf.is_empty()
    }

    /// Try to parse one request out of `buf`, draining consumed bytes.
    pub fn poll(&mut self, buf: &mut Vec<u8>) -> ParseStep {
        if self.pending.is_none() {
            match self.find_head_end(buf) {
                Some(head_end) => {
                    let step = self.parse_head(&buf[..head_end]);
                    buf.drain(..head_end);
                    self.scanned = 0;
                    if let Some(invalid) = step {
                        return invalid;
                    }
                }
                None => {
                    if buf.len() > MAX_HEAD_BYTES {
                        return ParseStep::Invalid {
                            status: 400,
                            message: format!(
                                "request line and headers exceed {MAX_HEAD_BYTES} bytes"
                            ),
                        };
                    }
                    return ParseStep::Incomplete;
                }
            }
        }
        let pending = self.pending.as_ref().expect("head parsed above");
        if buf.len() < pending.content_length {
            return ParseStep::Incomplete;
        }
        let pending = self.pending.take().expect("checked");
        let body: Vec<u8> = buf.drain(..pending.content_length).collect();
        ParseStep::Request(ParsedRequest {
            method: pending.method,
            path: pending.path,
            keep_alive: pending.keep_alive,
            trace: pending.trace,
            body,
        })
    }

    /// Index one past the head's terminating blank line (`\r\n\r\n` or
    /// any `\n`-delimited empty line), or `None` if not yet received.
    fn find_head_end(&mut self, buf: &[u8]) -> Option<usize> {
        // Resume a few bytes back so a terminator split across reads is
        // still seen: the scan anchors on the *first* `\n` of `\n\n` /
        // `\n\r\n`, which can sit up to 3 bytes before the old end when
        // the tail of a `\r\n\r\n` arrives in a later read.
        let start = self.scanned.saturating_sub(3);
        for i in start..buf.len() {
            if buf[i] != b'\n' {
                continue;
            }
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        self.scanned = buf.len();
        None
    }

    /// Parse the request line + headers; on success stores the pending
    /// body frame and returns `None`, otherwise returns the `Invalid`
    /// step to serve.
    fn parse_head(&mut self, head: &[u8]) -> Option<ParseStep> {
        if head.len() > MAX_HEAD_BYTES {
            return Some(ParseStep::Invalid {
                status: 400,
                message: format!("request line and headers exceed {MAX_HEAD_BYTES} bytes"),
            });
        }
        let Ok(head) = std::str::from_utf8(head) else {
            return Some(ParseStep::Invalid {
                status: 400,
                message: "request bytes are not utf-8".to_string(),
            });
        };
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
            return Some(ParseStep::Invalid {
                status: 400,
                message: "malformed request line".to_string(),
            });
        };
        let mut content_length = 0usize;
        let mut keep_alive = true; // HTTP/1.1 default
        let mut trace = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.parse() else {
                    return Some(ParseStep::Invalid {
                        status: 400,
                        message: "bad content-length".to_string(),
                    });
                };
                content_length = n;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case(lam_obs::trace::HEADER) {
                trace = Some(value.to_string());
            }
        }
        if content_length > self.max_body {
            return Some(ParseStep::Invalid {
                status: 400,
                message: format!(
                    "body of {content_length} bytes exceeds limit {}",
                    self.max_body
                ),
            });
        }
        self.pending = Some(PendingBody {
            method: method.to_string(),
            path: path.to_string(),
            keep_alive,
            trace,
            content_length,
        });
        None
    }
}

/// One fully parsed HTTP/1.1 response, as read from an upstream backend
/// by the cluster gateway.
#[derive(Debug)]
pub struct ParsedResponse {
    /// Response status code.
    pub status: u16,
    /// `content-type` header value (empty when absent).
    pub content_type: String,
    /// Whether the upstream connection stays open after this response.
    pub keep_alive: bool,
    /// Response body, exactly `content-length` bytes.
    pub body: Vec<u8>,
}

/// Outcome of one [`ResponseParser::poll`] call.
#[derive(Debug)]
pub enum ResponseStep {
    /// The buffer does not hold a full response yet; read more bytes.
    Incomplete,
    /// One response parsed and drained from the buffer.
    Response(ParsedResponse),
    /// The byte stream is not an HTTP/1.1 response this client can read
    /// (the connection cannot be resynchronized afterwards).
    Invalid(String),
}

/// Head parsed, waiting for `content_length` body bytes.
#[derive(Debug)]
struct PendingResponseBody {
    status: u16,
    content_type: String,
    keep_alive: bool,
    content_length: usize,
}

/// Per-upstream-connection incremental response parser — the mirror of
/// [`RequestParser`] for the gateway's client side. Same dialect:
/// `content-length` framing only (the backends it talks to never send
/// chunked bodies), head capped at [`MAX_HEAD_BYTES`].
#[derive(Debug)]
pub struct ResponseParser {
    max_body: usize,
    pending: Option<PendingResponseBody>,
    scanned: usize,
}

impl ResponseParser {
    /// Parser enforcing `max_body` on response bodies.
    pub fn new(max_body: usize) -> Self {
        Self {
            max_body,
            pending: None,
            scanned: 0,
        }
    }

    /// Try to parse one response out of `buf`, draining consumed bytes.
    pub fn poll(&mut self, buf: &mut Vec<u8>) -> ResponseStep {
        if self.pending.is_none() {
            let start = self.scanned.saturating_sub(3);
            let head_end = (start..buf.len()).find_map(|i| {
                if buf[i] != b'\n' {
                    return None;
                }
                match buf.get(i + 1) {
                    Some(b'\n') => Some(i + 2),
                    Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => Some(i + 3),
                    _ => None,
                }
            });
            match head_end {
                Some(end) => {
                    let step = self.parse_head(&buf[..end]);
                    buf.drain(..end);
                    self.scanned = 0;
                    if let Some(invalid) = step {
                        return invalid;
                    }
                }
                None => {
                    if buf.len() > MAX_HEAD_BYTES {
                        return ResponseStep::Invalid(format!(
                            "response status line and headers exceed {MAX_HEAD_BYTES} bytes"
                        ));
                    }
                    self.scanned = buf.len();
                    return ResponseStep::Incomplete;
                }
            }
        }
        let pending = self.pending.as_ref().expect("head parsed above");
        if buf.len() < pending.content_length {
            return ResponseStep::Incomplete;
        }
        let pending = self.pending.take().expect("checked");
        let body: Vec<u8> = buf.drain(..pending.content_length).collect();
        ResponseStep::Response(ParsedResponse {
            status: pending.status,
            content_type: pending.content_type,
            keep_alive: pending.keep_alive,
            body,
        })
    }

    fn parse_head(&mut self, head: &[u8]) -> Option<ResponseStep> {
        let Ok(head) = std::str::from_utf8(head) else {
            return Some(ResponseStep::Invalid(
                "response head is not utf-8".to_string(),
            ));
        };
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let status_line = lines.next().unwrap_or("");
        let Some(status) = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
        else {
            return Some(ResponseStep::Invalid(format!(
                "malformed status line `{status_line}`"
            )));
        };
        let mut content_length = 0usize;
        let mut content_type = String::new();
        let mut keep_alive = true; // HTTP/1.1 default
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.parse() else {
                    return Some(ResponseStep::Invalid("bad content-length".to_string()));
                };
                content_length = n;
            } else if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
        if content_length > self.max_body {
            return Some(ResponseStep::Invalid(format!(
                "response body of {content_length} bytes exceeds limit {}",
                self.max_body
            )));
        }
        self.pending = Some(PendingResponseBody {
            status,
            content_type,
            keep_alive,
            content_length,
        });
        None
    }
}

/// Reason phrase for every status this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Encode one response. The body is raw bytes (JSON, Prometheus text,
/// or a binary model artifact). `retry_after` adds a `retry-after: N`
/// header (load-shedding responses carry it so clients back off instead
/// of hammering).
pub fn encode_response(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u32>,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = Vec::with_capacity(160 + body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            reason(status),
            body.len()
        )
        .as_bytes(),
    );
    if let Some(secs) = retry_after {
        out.extend_from_slice(format!("retry-after: {secs}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Encode one request heading to an upstream backend: the gateway's
/// mirror of [`encode_response`]. Keep-alive is implied (HTTP/1.1
/// default) — upstream connections are pooled.
pub fn encode_request(method: &str, path: &str, host: &str, body: &[u8]) -> Vec<u8> {
    encode_request_traced(method, path, host, body, None)
}

/// [`encode_request`] with an optional `x-lam-trace` header carrying a
/// propagated trace context to the upstream hop.
pub fn encode_request_traced(
    method: &str,
    path: &str,
    host: &str,
    body: &[u8],
    trace: Option<&str>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(
        format!(
            "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        )
        .as_bytes(),
    );
    if let Some(value) = trace {
        out.extend_from_slice(format!("{}: {value}\r\n", lam_obs::trace::HEADER).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll_all(parser: &mut RequestParser, buf: &mut Vec<u8>) -> Vec<ParsedRequest> {
        let mut out = Vec::new();
        loop {
            match parser.poll(buf) {
                ParseStep::Request(r) => out.push(r),
                ParseStep::Incomplete => return out,
                ParseStep::Invalid { status, message } => {
                    panic!("unexpected invalid ({status}): {message}")
                }
            }
        }
    }

    #[test]
    fn parses_a_request_delivered_byte_by_byte() {
        let raw = b"POST /predict HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        let mut parser = RequestParser::new(1024);
        let mut buf = Vec::new();
        for (i, &b) in raw.iter().enumerate() {
            buf.push(b);
            match parser.poll(&mut buf) {
                ParseStep::Incomplete => assert!(i + 1 < raw.len(), "never completed"),
                ParseStep::Request(req) => {
                    assert_eq!(i + 1, raw.len(), "completed early at byte {i}");
                    assert_eq!(req.method, "POST");
                    assert_eq!(req.path, "/predict");
                    assert_eq!(req.body, b"abcd");
                    assert!(req.keep_alive);
                    assert!(buf.is_empty());
                    return;
                }
                ParseStep::Invalid { message, .. } => panic!("invalid: {message}"),
            }
        }
        panic!("request never parsed");
    }

    #[test]
    fn parses_pipelined_requests_in_order() {
        let mut parser = RequestParser::new(1024);
        let mut buf = Vec::new();
        buf.extend_from_slice(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let reqs = poll_all(&mut parser, &mut buf);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].path, "/a");
        assert!(reqs[0].keep_alive);
        assert_eq!(reqs[1].path, "/b");
        assert!(!reqs[1].keep_alive);
        assert!(buf.is_empty());
    }

    #[test]
    fn tolerates_bare_newline_heads() {
        let mut parser = RequestParser::new(1024);
        let mut buf = b"GET /healthz HTTP/1.1\nhost: x\n\n".to_vec();
        let reqs = poll_all(&mut parser, &mut buf);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/healthz");
    }

    #[test]
    fn oversized_body_is_invalid_with_the_contract_message() {
        let mut parser = RequestParser::new(8);
        let mut buf = b"POST /predict HTTP/1.1\r\ncontent-length: 9\r\n\r\n".to_vec();
        match parser.poll(&mut buf) {
            ParseStep::Invalid { status, message } => {
                assert_eq!(status, 400);
                assert!(message.contains("exceeds limit"), "{message}");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_head_is_rejected_at_the_cap() {
        let mut parser = RequestParser::new(1024);
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        // Headers forever, never a blank line.
        while buf.len() <= MAX_HEAD_BYTES {
            buf.extend_from_slice(b"x-filler: yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
            match parser.poll(&mut buf) {
                ParseStep::Incomplete => {}
                ParseStep::Invalid { status, message } => {
                    assert_eq!(status, 400);
                    assert!(message.contains("exceed"), "{message}");
                    return;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match parser.poll(&mut buf) {
            ParseStep::Invalid { .. } => {}
            other => panic!("cap never enforced: {other:?}"),
        }
    }

    #[test]
    fn garbage_request_line_is_invalid() {
        let mut parser = RequestParser::new(1024);
        let mut buf = b"NONSENSE\r\n\r\n".to_vec();
        match parser.poll(&mut buf) {
            ParseStep::Invalid { status, message } => {
                assert_eq!(status, 400);
                assert!(message.contains("malformed request line"), "{message}");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn mid_request_distinguishes_idle_from_stalled() {
        let mut parser = RequestParser::new(1024);
        let mut buf = Vec::new();
        assert!(!parser.mid_request(&buf), "idle connection");
        buf.extend_from_slice(b"GET /he");
        assert!(parser.mid_request(&buf), "partial head");
        buf.clear();
        buf.extend_from_slice(b"POST /p HTTP/1.1\r\ncontent-length: 5\r\n\r\nab");
        assert!(matches!(parser.poll(&mut buf), ParseStep::Incomplete));
        assert!(parser.mid_request(&buf), "head parsed, body outstanding");
    }

    #[test]
    fn encode_response_shapes_the_wire_bytes() {
        let bytes = encode_response(503, "application/json", b"{}", true, Some(1));
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        let bytes = encode_response(200, "application/json", b"hi", false, None);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("connection: close"), "{text}");
        assert!(!text.contains("retry-after"), "{text}");
    }

    #[test]
    fn encode_request_shapes_the_wire_bytes() {
        let bytes = encode_request("POST", "/predict", "127.0.0.1:9", b"{\"x\":1}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("POST /predict HTTP/1.1\r\n"), "{text}");
        assert!(text.contains("host: 127.0.0.1:9\r\n"), "{text}");
        assert!(text.contains("content-length: 7\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"), "{text}");
    }

    #[test]
    fn trace_header_is_captured_and_injected() {
        // Extraction: the parser surfaces the raw header value.
        let mut parser = RequestParser::new(1024);
        let mut buf =
            b"POST /predict HTTP/1.1\r\nX-Lam-Trace: abc-def-01\r\ncontent-length: 0\r\n\r\n"
                .to_vec();
        let reqs = poll_all(&mut parser, &mut buf);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].trace.as_deref(), Some("abc-def-01"));
        // Absent header parses to None.
        let mut buf = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
        let reqs = poll_all(&mut parser, &mut buf);
        assert_eq!(reqs[0].trace, None);
        // Injection: the traced encoder adds exactly one extra header
        // and the untraced one stays byte-identical to the old shape.
        let traced = encode_request_traced("POST", "/predict", "h", b"{}", Some("t-s-00"));
        let text = String::from_utf8(traced).unwrap();
        assert!(text.contains("x-lam-trace: t-s-00\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        // Round trip through the request parser.
        let mut buf = text.into_bytes();
        let reqs = poll_all(&mut parser, &mut buf);
        assert_eq!(reqs[0].trace.as_deref(), Some("t-s-00"));
    }

    #[test]
    fn response_parser_handles_byte_by_byte_delivery() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 4\r\nconnection: keep-alive\r\n\r\nabcd";
        let mut parser = ResponseParser::new(1024);
        let mut buf = Vec::new();
        for (i, &b) in raw.iter().enumerate() {
            buf.push(b);
            match parser.poll(&mut buf) {
                ResponseStep::Incomplete => assert!(i + 1 < raw.len(), "never completed"),
                ResponseStep::Response(resp) => {
                    assert_eq!(i + 1, raw.len(), "completed early at byte {i}");
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.content_type, "application/json");
                    assert_eq!(resp.body, b"abcd");
                    assert!(resp.keep_alive);
                    assert!(buf.is_empty());
                    return;
                }
                ResponseStep::Invalid(message) => panic!("invalid: {message}"),
            }
        }
        panic!("response never parsed");
    }

    #[test]
    fn response_parser_handles_pipelined_responses_and_close() {
        let mut parser = ResponseParser::new(1024);
        let mut buf = Vec::new();
        buf.extend_from_slice(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok");
        buf.extend_from_slice(
            b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
        );
        let first = match parser.poll(&mut buf) {
            ResponseStep::Response(r) => r,
            other => panic!("expected first response, got {other:?}"),
        };
        assert_eq!(first.status, 200);
        assert_eq!(first.body, b"ok");
        assert!(first.keep_alive);
        let second = match parser.poll(&mut buf) {
            ResponseStep::Response(r) => r,
            other => panic!("expected second response, got {other:?}"),
        };
        assert_eq!(second.status, 503);
        assert!(second.body.is_empty());
        assert!(!second.keep_alive);
        assert!(matches!(parser.poll(&mut buf), ResponseStep::Incomplete));
    }

    #[test]
    fn response_parser_rejects_oversized_bodies() {
        let mut parser = ResponseParser::new(8);
        let mut buf = b"HTTP/1.1 200 OK\r\ncontent-length: 9\r\n\r\n".to_vec();
        match parser.poll(&mut buf) {
            ResponseStep::Invalid(message) => {
                assert!(message.contains("exceeds limit"), "{message}")
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }
}
