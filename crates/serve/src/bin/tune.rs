//! Autotune a workload from the command line: resolve (or train) the
//! guiding model through the registry, run a `lam-tune` strategy under a
//! measurement budget, and print the recommendation.
//!
//! ```text
//! tune --workload stencil-grid --strategy halving
//!      [--kind hybrid] [--version 1] [--budget 32] [--top-k 5] [--seed 0]
//!      [--models-dir results/models] [--out results/tune.json]
//! ```
//!
//! `--strategy active` runs the active-learning loop (initial sample →
//! refit → propose → measure) instead of a fixed-model strategy; `--kind`
//! and `--version` are ignored there because the loop refits its own
//! hybrid as measurements arrive. Dispatch and regret reporting go
//! through [`lam_serve::tuning::run_tune`] — the same code path as the
//! server's `POST /tune`.

use lam_serve::persist::ModelKind;
use lam_serve::registry::ModelRegistry;
use lam_serve::tuning::{run_tune, TuneSpec};
use lam_serve::workload::WorkloadId;
use lam_serve::ServeError;

struct Args {
    spec: TuneSpec,
    models_dir: String,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec: TuneSpec {
            workload: WorkloadId::get("stencil-grid").expect("builtin stencil-grid registered"),
            strategy: "active".to_string(),
            kind: ModelKind::Hybrid,
            version: 1,
            budget: 32,
            top_k: 5,
            seed: 0,
        },
        models_dir: ModelRegistry::default_root().display().to_string(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workload" => args.spec.workload = value("--workload")?.parse().map_err(err_str)?,
            "--strategy" => args.spec.strategy = value("--strategy")?,
            "--kind" => args.spec.kind = value("--kind")?.parse().map_err(err_str)?,
            "--version" => args.spec.version = value("--version")?.parse().map_err(err_str)?,
            "--budget" => args.spec.budget = value("--budget")?.parse().map_err(err_str)?,
            "--top-k" => args.spec.top_k = value("--top-k")?.parse().map_err(err_str)?,
            "--seed" => args.spec.seed = value("--seed")?.parse().map_err(err_str)?,
            "--models-dir" => args.models_dir = value("--models-dir")?,
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn err_str<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn main() {
    if let Err(e) = run() {
        eprintln!("tune: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(ServeError::Http)?;
    let spec = &args.spec;
    println!(
        "{} search on {} (space {}, budget {})",
        spec.strategy,
        spec.workload,
        spec.workload.space_size(),
        spec.budget
    );

    let registry = ModelRegistry::new(&args.models_dir);
    let (model_name, report) = run_tune(&registry, spec)?;
    if let Some(model) = &model_name {
        println!("guided by {model} ({})", registry.root().display());
    }

    println!(
        "spent {}/{} oracle evaluations; recommending config #{}",
        report.evaluations, report.budget, report.best.index
    );
    println!("  rank  config  predicted      measured      features");
    for (rank, cfg) in report.top.iter().enumerate() {
        let measured = cfg
            .oracle
            .map(|t| format!("{:>10.3} ms", t * 1e3))
            .unwrap_or_else(|| "         —   ".to_string());
        println!(
            "  {:>4}  #{:<5} {:>10.3} ms {measured}  {:?}",
            rank + 1,
            cfg.index,
            cfg.predicted * 1e3,
            cfg.features
        );
    }
    if let (Some(regret), Some(true_best)) = (report.regret, report.true_best) {
        println!(
            "regret vs true best: {:.3}x (true best {:.3} ms)",
            regret,
            true_best * 1e3
        );
    }

    if let Some(path) = &args.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        println!("report written to {path}");
    }
    Ok(())
}
