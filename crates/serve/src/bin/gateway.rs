//! Cluster gateway: front a set of `serve` backends with consistent-hash
//! routing, scatter/gather `/predict` batching, health-check failover,
//! and load shedding.
//!
//! ```text
//! gateway (--backend HOST:PORT ... | --backend-file PATH ...)
//!         [--addr 127.0.0.1:0] [--workers 4] [--vnodes 64] [--replicas 1]
//!         [--probe-interval-ms 500] [--fail-threshold 3]
//!         [--recover-threshold 2] [--max-connections 1024]
//!         [--addr-file PATH] [--max-seconds S]
//! ```
//!
//! `--backend` repeats, one per lam-serve backend; `--backend-file`
//! repeats and reads each address from a file a backend wrote with its
//! own `--addr-file` (the random-port handshake scripts use). `--addr
//! 127.0.0.1:0` (the default) binds a random free port and prints it;
//! `--addr-file` writes it for scripts. `--max-seconds` shuts the
//! gateway down cleanly on its own — used by the CI smoke test.

use lam_serve::cluster::{start_gateway, GatewayConfig};
use lam_serve::http::{ServeConfig, ServerOptions};
use lam_serve::ServeError;
use std::time::Duration;

struct Args {
    backends: Vec<String>,
    addr: String,
    workers: usize,
    vnodes: usize,
    replicas: usize,
    probe_interval_ms: u64,
    fail_threshold: u32,
    recover_threshold: u32,
    max_connections: Option<usize>,
    addr_file: Option<String>,
    max_seconds: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        backends: Vec::new(),
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        vnodes: 64,
        replicas: 1,
        probe_interval_ms: 500,
        fail_threshold: 3,
        recover_threshold: 2,
        max_connections: None,
        addr_file: None,
        max_seconds: None,
    };
    let mut backend_files = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--backend" => args.backends.push(value("--backend")?),
            "--backend-file" => backend_files.push(value("--backend-file")?),
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = value("--workers")?.parse().map_err(err_str)?,
            "--vnodes" => args.vnodes = value("--vnodes")?.parse().map_err(err_str)?,
            "--replicas" => args.replicas = value("--replicas")?.parse().map_err(err_str)?,
            "--probe-interval-ms" => {
                args.probe_interval_ms = value("--probe-interval-ms")?.parse().map_err(err_str)?
            }
            "--fail-threshold" => {
                args.fail_threshold = value("--fail-threshold")?.parse().map_err(err_str)?
            }
            "--recover-threshold" => {
                args.recover_threshold = value("--recover-threshold")?.parse().map_err(err_str)?
            }
            "--max-connections" => {
                args.max_connections = Some(value("--max-connections")?.parse().map_err(err_str)?)
            }
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--max-seconds" => {
                args.max_seconds = Some(value("--max-seconds")?.parse().map_err(err_str)?)
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    for path in backend_files {
        let addr =
            std::fs::read_to_string(&path).map_err(|e| format!("--backend-file {path}: {e}"))?;
        args.backends.push(addr.trim().to_string());
    }
    if args.backends.is_empty() {
        return Err("at least one --backend or --backend-file is required".to_string());
    }
    Ok(args)
}

fn err_str<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn main() {
    if let Err(e) = run() {
        eprintln!("gateway: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(ServeError::Http)?;
    let mut cfg = GatewayConfig::new(args.backends.clone());
    cfg.serve = ServeConfig::new(ServerOptions {
        addr: args.addr.clone(),
        workers: args.workers,
        ..ServerOptions::default()
    });
    if let Some(n) = args.max_connections {
        cfg.serve.max_connections = n;
    }
    cfg.vnodes = args.vnodes;
    cfg.replicas = args.replicas;
    cfg.probe_interval = Duration::from_millis(args.probe_interval_ms);
    cfg.fail_threshold = args.fail_threshold;
    cfg.recover_threshold = args.recover_threshold;

    let handle = start_gateway(cfg)?;
    let addr = handle.local_addr();
    println!(
        "gateway on http://{addr} fronting {} backend(s): {}",
        args.backends.len(),
        args.backends.join(", ")
    );
    println!(
        "vnodes={} replicas={} probe={}ms eject@{} recover@{}",
        args.vnodes,
        args.replicas,
        args.probe_interval_ms,
        args.fail_threshold,
        args.recover_threshold
    );
    if let Some(path) = &args.addr_file {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, addr.to_string())?;
        println!("address written to {path}");
    }

    match args.max_seconds {
        Some(s) => {
            std::thread::sleep(Duration::from_secs_f64(s));
            println!("max-seconds reached; shutting down");
            handle.stop();
            println!("shutdown complete");
        }
        None => loop {
            // Serve until killed.
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    Ok(())
}
