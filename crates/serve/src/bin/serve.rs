//! Prediction server: train-or-load a model through the registry, then
//! serve it over HTTP.
//!
//! ```text
//! serve [--workload fmm-small] [--kind hybrid] [--version 1]
//!       [--models-dir results/models] [--addr 127.0.0.1:0] [--workers 4]
//!       [--max-connections 1024] [--dispatch-queue 256]
//!       [--max-batch-rows 256] [--flush-deadline-us 200]
//!       [--peer HOST:PORT ...] [--peer-file PATH ...]
//!       [--train-only] [--addr-file PATH] [--max-seconds S]
//! ```
//!
//! `--peer` (repeatable; `--peer-file` reads an address from a file a
//! peer wrote with `--addr-file`) names sibling backends in a cluster:
//! on a registry miss not answered by disk, the model's binary `.lamb`
//! artifact is fetched from the first peer that has it before falling
//! back to training — so one cluster trains each model exactly once.
//!
//! `--max-connections` / `--dispatch-queue` bound the event-driven serve
//! core (accepts and parsed requests beyond them shed with `503`);
//! `--max-batch-rows` / `--flush-deadline-us` shape the cross-connection
//! micro-batch scheduler.
//!
//! `--addr 127.0.0.1:0` (the default) binds a random free port; the
//! resolved address is printed and, with `--addr-file`, written to a file
//! scripts can read. `--max-seconds` makes the server shut down cleanly
//! on its own — used by the CI smoke test. `--train-only` trains and
//! persists the artifact, then exits without serving.

use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use lam_serve::{http, ServeError};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    workload: WorkloadId,
    kind: ModelKind,
    version: u32,
    models_dir: String,
    addr: String,
    workers: usize,
    max_connections: Option<usize>,
    dispatch_queue: Option<usize>,
    max_batch_rows: Option<usize>,
    flush_deadline_us: Option<u64>,
    peers: Vec<String>,
    train_only: bool,
    addr_file: Option<String>,
    max_seconds: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: WorkloadId::get("fmm-small").expect("builtin fmm-small registered"),
        kind: ModelKind::Hybrid,
        version: 1,
        models_dir: ModelRegistry::default_root().display().to_string(),
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        max_connections: None,
        dispatch_queue: None,
        max_batch_rows: None,
        flush_deadline_us: None,
        peers: Vec::new(),
        train_only: false,
        addr_file: None,
        max_seconds: None,
    };
    let mut peer_files = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workload" => args.workload = value("--workload")?.parse().map_err(err_str)?,
            "--kind" => args.kind = value("--kind")?.parse().map_err(err_str)?,
            "--version" => args.version = value("--version")?.parse().map_err(err_str)?,
            "--models-dir" => args.models_dir = value("--models-dir")?,
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = value("--workers")?.parse().map_err(err_str)?,
            "--max-connections" => {
                args.max_connections = Some(value("--max-connections")?.parse().map_err(err_str)?)
            }
            "--dispatch-queue" => {
                args.dispatch_queue = Some(value("--dispatch-queue")?.parse().map_err(err_str)?)
            }
            "--max-batch-rows" => {
                args.max_batch_rows = Some(value("--max-batch-rows")?.parse().map_err(err_str)?)
            }
            "--flush-deadline-us" => {
                args.flush_deadline_us =
                    Some(value("--flush-deadline-us")?.parse().map_err(err_str)?)
            }
            "--peer" => args.peers.push(value("--peer")?),
            "--peer-file" => peer_files.push(value("--peer-file")?),
            "--train-only" => args.train_only = true,
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--max-seconds" => {
                args.max_seconds = Some(value("--max-seconds")?.parse().map_err(err_str)?)
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    for path in peer_files {
        let addr =
            std::fs::read_to_string(&path).map_err(|e| format!("--peer-file {path}: {e}"))?;
        args.peers.push(addr.trim().to_string());
    }
    Ok(args)
}

fn err_str<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn main() {
    if let Err(e) = run() {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(ServeError::Http)?;
    let registry = Arc::new(ModelRegistry::with_peers(
        &args.models_dir,
        args.peers.clone(),
    ));
    if !args.peers.is_empty() {
        println!(
            "replicating artifacts from peer(s): {}",
            args.peers.join(", ")
        );
    }
    let key = ModelKey::new(args.workload, args.kind, args.version);

    let trained_at = Instant::now();
    let model = registry.get(key)?;
    println!(
        "model {key}: {} features, {} training rows, ready in {:.2}s ({})",
        model.feature_names.len(),
        model.trained_rows,
        trained_at.elapsed().as_secs_f64(),
        registry.path_for(key).display()
    );
    if args.train_only {
        return Ok(());
    }

    let mut cfg = http::ServeConfig::new(http::ServerOptions {
        addr: args.addr.clone(),
        workers: args.workers,
        ..http::ServerOptions::default()
    });
    if let Some(n) = args.max_connections {
        cfg.max_connections = n;
    }
    if let Some(n) = args.dispatch_queue {
        cfg.dispatch_queue = n;
    }
    if let Some(n) = args.max_batch_rows {
        cfg.batch.max_batch_rows = n;
    }
    if let Some(us) = args.flush_deadline_us {
        cfg.batch.flush_deadline = Duration::from_micros(us);
    }
    let handle = http::start_with(Arc::clone(&registry), cfg)?;
    let addr = handle.local_addr();
    println!("serving on http://{addr} ({} workers)", args.workers);
    if let Some(path) = &args.addr_file {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, addr.to_string())?;
        println!("address written to {path}");
    }

    match args.max_seconds {
        Some(s) => {
            std::thread::sleep(Duration::from_secs_f64(s));
            println!("max-seconds reached; shutting down");
            handle.stop();
            println!("shutdown complete");
        }
        None => loop {
            // Serve until killed.
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    Ok(())
}
