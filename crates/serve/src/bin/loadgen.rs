//! Load generator: hammer a running `serve` instance's `/predict` with
//! batched requests from concurrent keep-alive connections and report
//! throughput and p50/p90/p95/p99 latency.
//!
//! ```text
//! loadgen (--addr HOST:PORT ... | --addr-file PATH ...)
//!         [--cluster]
//!         [--workload fmm-small] [--kind hybrid] [--version 1]
//!         [--seconds 3] [--connections 4] [--batch 64] [--pool 256]
//!         [--pipeline N | --open-loop RPS]
//!         [--out results/loadgen.json] [--min-throughput 1]
//! ```
//!
//! `--pipeline N` keeps N requests in flight per connection; `--open-loop
//! RPS` paces sends at a fixed offered rate across connections regardless
//! of completions (503 sheds are reported separately, not as errors).
//! Default is the closed loop.
//!
//! `--addr` / `--addr-file` repeat: several targets spread connections
//! round-robin and the report appends per-target request counts.
//! `--cluster` additionally scrapes the first address as a *gateway* and
//! prints its upstream shard balance, backend health, and `/predict`
//! fan-out — point it at a `gateway` process fronting the backends.
//!
//! Exits non-zero when any request errored or measured throughput falls
//! below `--min-throughput` predictions/sec — the CI smoke gate.
//!
//! The server's `/metrics.json` is scraped before and after the timed
//! window; the delta is printed as a server-side breakdown (per-phase
//! `/predict` time, cache hit rate, micro-batch shape), so one loadgen
//! run answers *where* the latency went, not just how much there was.
//! `--no-scrape` skips it (e.g. against servers without the endpoint).

use lam_serve::loadgen::{
    format_cluster_summary, format_report, format_server_breakdown, run, HttpClient, LoadMode,
    LoadgenOptions, MetricsScrape,
};
use lam_serve::ServeError;

struct Args {
    opts: LoadgenOptions,
    addr_files: Vec<String>,
    out: Option<String>,
    min_throughput: f64,
    scrape: bool,
    cluster: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: LoadgenOptions::default(),
        addr_files: Vec::new(),
        out: None,
        min_throughput: 1.0,
        scrape: true,
        cluster: false,
    };
    let mut addrs = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => addrs.push(value("--addr")?),
            "--addr-file" => args.addr_files.push(value("--addr-file")?),
            "--cluster" => args.cluster = true,
            "--workload" => args.opts.workload = value("--workload")?.parse().map_err(err_str)?,
            "--kind" => args.opts.kind = value("--kind")?.parse().map_err(err_str)?,
            "--version" => args.opts.version = value("--version")?.parse().map_err(err_str)?,
            "--seconds" => args.opts.seconds = value("--seconds")?.parse().map_err(err_str)?,
            "--connections" => {
                args.opts.connections = value("--connections")?.parse().map_err(err_str)?
            }
            "--batch" => args.opts.batch = value("--batch")?.parse().map_err(err_str)?,
            "--pool" => args.opts.pool = value("--pool")?.parse().map_err(err_str)?,
            "--pipeline" => {
                args.opts.mode = LoadMode::Pipeline(value("--pipeline")?.parse().map_err(err_str)?)
            }
            "--open-loop" => {
                args.opts.mode = LoadMode::OpenLoop {
                    rps: value("--open-loop")?.parse().map_err(err_str)?,
                }
            }
            "--out" => args.out = Some(value("--out")?),
            "--min-throughput" => {
                args.min_throughput = value("--min-throughput")?.parse().map_err(err_str)?
            }
            "--no-scrape" => args.scrape = false,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if addrs.is_empty() && args.addr_files.is_empty() {
        return Err("one of --addr or --addr-file is required".to_string());
    }
    if !addrs.is_empty() {
        args.opts.addrs = addrs;
    } else {
        args.opts.addrs.clear();
    }
    Ok(args)
}

fn err_str<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn main() {
    if let Err(e) = run_main() {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}

fn run_main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = parse_args().map_err(ServeError::Http)?;
    for path in &args.addr_files {
        args.opts
            .addrs
            .push(std::fs::read_to_string(path)?.trim().to_string());
    }
    println!(
        "loadgen: {} connections x {}-row batches against http://{} for {:.1}s ({}/{}/v{}, {})",
        args.opts.connections,
        args.opts.batch,
        args.opts.addrs.join(", http://"),
        args.opts.seconds,
        args.opts.workload,
        args.opts.kind,
        args.opts.version,
        args.opts.mode,
    );
    // Bracket the run with metric scrapes of the first target (in
    // --cluster mode that is the gateway); a scrape failure degrades to
    // a warning (the load numbers are still the primary product).
    let scrape_addr = args.opts.addrs[0].clone();
    let scrape = |label: &str| -> Option<MetricsScrape> {
        if !args.scrape {
            return None;
        }
        match HttpClient::connect(&scrape_addr).and_then(|mut c| MetricsScrape::fetch(&mut c)) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("loadgen: {label} metrics scrape failed: {e}");
                None
            }
        }
    };
    let before = scrape("pre-run");
    let report = run(&args.opts)?;
    println!("{}", format_report(&report));
    if let (Some(before), Some(after)) = (before.as_ref(), scrape("post-run")) {
        println!("{}", format_server_breakdown(before, &after));
        if args.cluster {
            println!("{}", format_cluster_summary(before, &after));
        }
    }

    if let Some(out) = &args.out {
        if let Some(parent) = std::path::Path::new(out).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(out, serde_json::to_string_pretty(&report)?)?;
        println!("report written to {out}");
    }

    if report.errors > 0 {
        return Err(format!("{} request(s) failed", report.errors).into());
    }
    if report.throughput < args.min_throughput {
        return Err(format!(
            "throughput {:.0} predictions/s below required {:.0}",
            report.throughput, args.min_throughput
        )
        .into());
    }
    Ok(())
}
