//! Load generation against a running `lam-serve` HTTP server: hammer
//! `/predict` from concurrent keep-alive connections and report
//! throughput plus p50/p90/p95/p99 latency.
//!
//! Three drive modes ([`LoadMode`]):
//!
//! * **closed** — each connection waits for a response before sending the
//!   next request; measures the server at the concurrency the client
//!   imposes.
//! * **pipeline(N)** — each connection keeps N requests in flight
//!   (HTTP/1.1 pipelining); exercises the reactor's per-connection
//!   in-order response queue and amortizes syscalls on both sides.
//! * **open-loop(R)** — requests are paced at R per second across all
//!   connections regardless of completions (bounded by a per-connection
//!   in-flight window so a stalled server cannot wedge the client);
//!   offered load beyond capacity shows up as rising latency and shed
//!   `503`s rather than a silently slowing client.
//!
//! `503` responses are tallied separately as `shed` — they are the
//! server's load-shedding contract working, not an error.
//!
//! Request bodies are prebuilt from a rotating pool of real feature rows
//! (drawn from the target workload's configuration space), so after the
//! first rotation the server answers from its prediction cache — the
//! steady-state regime the acceptance criterion measures.

use crate::http::{PredictRequest, PredictResponse};
use crate::persist::ModelKind;
use crate::workload::WorkloadId;
use crate::ServeError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How requests are driven onto the connections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// One request in flight per connection (request–response lockstep).
    Closed,
    /// Keep this many requests in flight per connection (HTTP/1.1
    /// pipelining; responses are matched to sends in order).
    Pipeline(usize),
    /// Pace sends at this many requests per second across all
    /// connections, independent of completions.
    OpenLoop {
        /// Offered request rate, requests/second, across all connections.
        rps: f64,
    },
}

impl std::fmt::Display for LoadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadMode::Closed => write!(f, "closed"),
            LoadMode::Pipeline(n) => write!(f, "pipeline({n})"),
            LoadMode::OpenLoop { rps } => write!(f, "open-loop({rps:.0}/s)"),
        }
    }
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server addresses, `host:port` each. One entry is the classic
    /// single-server run; several entries spread connections across them
    /// round-robin (worker `i` pins to `addrs[i % addrs.len()]`) — used
    /// to drive a set of cluster backends directly, or compare against
    /// the gateway fronting them.
    pub addrs: Vec<String>,
    /// Workload whose model is queried.
    pub workload: WorkloadId,
    /// Model kind queried.
    pub kind: ModelKind,
    /// Artifact version queried.
    pub version: u32,
    /// Wall-clock run duration, seconds.
    pub seconds: f64,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Rows per `/predict` request.
    pub batch: usize,
    /// Distinct feature rows in the rotating pool.
    pub pool: usize,
    /// How requests are driven (closed loop, pipelined, or open loop).
    pub mode: LoadMode,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addrs: vec!["127.0.0.1:0".to_string()],
            workload: WorkloadId::get("fmm-small").expect("builtin fmm-small registered"),
            kind: ModelKind::Hybrid,
            version: 1,
            seconds: 3.0,
            connections: 4,
            batch: 64,
            pool: 256,
            mode: LoadMode::Closed,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Drive mode the run used (rendered [`LoadMode`]).
    pub mode: String,
    /// Requests completed successfully.
    pub requests: u64,
    /// Predictions returned (rows across all successful requests).
    pub predictions: u64,
    /// Requests answered `503` — the server shedding load as designed.
    pub shed: u64,
    /// Failed requests (transport or unexpected status).
    pub errors: u64,
    /// Measured wall-clock duration, seconds.
    pub elapsed_s: f64,
    /// Predictions per second.
    pub throughput: f64,
    /// Completed (2xx) requests per second.
    pub rps: f64,
    /// Sent requests per second — in open-loop mode the offered rate the
    /// pacer actually achieved; elsewhere equals completions + sheds +
    /// errors over elapsed.
    pub offered_rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 90th-percentile request latency, microseconds.
    pub p90_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Fraction of predictions answered from the server's cache.
    pub cache_hit_fraction: f64,
    /// Per-target tallies, one row per distinct address driven (a single
    /// row for the classic one-server run).
    pub targets: Vec<TargetReport>,
}

/// Tallies for one driven address within a [`LoadReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetReport {
    /// The driven `host:port`.
    pub addr: String,
    /// Requests completed 2xx against this address.
    pub requests: u64,
    /// Requests answered `503` by this address.
    pub shed: u64,
    /// Failed requests against this address.
    pub errors: u64,
}

/// A keep-alive HTTP/1.1 client for one connection.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connect to `host:port`.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            host: addr.to_string(),
        })
    }

    /// Send a request and read the response; returns `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), ServeError> {
        self.send(method, path, body)?;
        self.recv()
    }

    /// Write a request without waiting for its response (pipelining);
    /// match sends to [`HttpClient::recv`] calls in order.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> Result<(), ServeError> {
        self.send_traced(method, path, body, None)
    }

    /// [`HttpClient::send`] with an optional `x-lam-trace` header, for
    /// driving the distributed-tracing path from tests and benches.
    pub fn send_traced(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        trace: Option<&str>,
    ) -> Result<(), ServeError> {
        let trace_header = match trace {
            Some(value) => format!("x-lam-trace: {value}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n{trace_header}content-length: {}\r\n\r\n",
            self.host,
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Read the next response off the connection; returns `(status, body)`.
    pub fn recv(&mut self) -> Result<(u16, String), ServeError> {
        self.read_response()
    }

    /// POST a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> Result<(u16, String), ServeError> {
        self.request("POST", path, body)
    }

    /// GET a path.
    pub fn get(&mut self, path: &str) -> Result<(u16, String), ServeError> {
        self.request("GET", path, "")
    }

    fn read_response(&mut self) -> Result<(u16, String), ServeError> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(ServeError::Http("server closed the connection".to_string()));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ServeError::Http(format!("bad status line `{}`", status_line.trim())))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(ServeError::Http("truncated response headers".to_string()));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ServeError::Http("bad content-length".to_string()))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| ServeError::Http("response body is not utf-8".to_string()))
    }
}

/// A scraped label set (label name → value). Manual serde impls because
/// the vendored shim derives structs only — a JSON *object* with dynamic
/// keys needs `Value::Object` handled by hand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Labels(pub BTreeMap<String, String>);

impl Labels {
    /// Value of label `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }
}

impl Serialize for Labels {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(
            self.0
                .iter()
                .map(|(k, v)| (k.clone(), serde::Value::String(v.clone())))
                .collect(),
        )
    }
}

impl Deserialize for Labels {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Null => Ok(Self::default()),
            serde::Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| match v {
                    serde::Value::String(s) => Ok((k.clone(), s.clone())),
                    other => Err(serde::DeError::expected("string", "Labels", other)),
                })
                .collect::<Result<_, _>>()
                .map(Self),
            other => Err(serde::DeError::expected("object", "Labels", other)),
        }
    }
}

/// One series from a `/metrics.json` scrape (counter or gauge value).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrapedValue {
    /// Metric family name.
    pub name: String,
    /// Label name → value.
    pub labels: Labels,
    /// Current value (gauges are scraped as their signed value).
    pub value: i64,
}

/// One histogram series from a `/metrics.json` scrape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrapedHistogram {
    /// Metric family name.
    pub name: String,
    /// Label name → value.
    pub labels: Labels,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample (server-computed).
    pub mean: f64,
    /// Estimated quantiles (server-computed; not delta-able — use
    /// `count`/`sum` deltas across two scrapes instead).
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 99th percentile estimate.
    pub p99: f64,
}

/// One parsed scrape of a server's `GET /metrics.json`. Two scrapes
/// bracket a load run; their counter/histogram-sum deltas attribute the
/// run's server-side time without any client-side guessing.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsScrape {
    /// Counter series.
    pub counters: Vec<ScrapedValue>,
    /// Gauge series.
    pub gauges: Vec<ScrapedValue>,
    /// Histogram series.
    pub histograms: Vec<ScrapedHistogram>,
}

impl MetricsScrape {
    /// Scrape `GET /metrics.json` over `client`. Only `lam_`-prefixed
    /// families feed the breakdowns, so the scrape asks the server to
    /// filter server-side rather than shipping the whole registry.
    pub fn fetch(client: &mut HttpClient) -> Result<Self, ServeError> {
        let (status, body) = client.get("/metrics.json?prefix=lam_")?;
        if status != 200 {
            return Err(ServeError::Http(format!("/metrics.json returned {status}")));
        }
        serde_json::from_str(&body)
            .map_err(|e| ServeError::Http(format!("bad /metrics.json body: {e}")))
    }

    /// Sum of a counter family across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value.max(0) as u64)
            .sum()
    }

    /// Sum of a gauge family across all label sets (instantaneous, not
    /// delta-able).
    pub fn gauge_total(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .filter(|g| g.name == name)
            .map(|g| g.value)
            .sum()
    }

    /// Sum of a gauge family restricted to series carrying
    /// `label == value`.
    pub fn gauge_with_label(&self, name: &str, label: (&str, &str)) -> i64 {
        self.gauges
            .iter()
            .filter(|g| g.name == name)
            .filter(|g| g.labels.get(label.0).is_some_and(|v| v == label.1))
            .map(|g| g.value)
            .sum()
    }

    /// Value of a counter series with `label == value`, summed across any
    /// remaining labels.
    pub fn counter_with_label(&self, name: &str, label: (&str, &str)) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .filter(|c| c.labels.get(label.0).is_some_and(|v| v == label.1))
            .map(|c| c.value.max(0) as u64)
            .sum()
    }

    /// `(count, sum)` of a histogram family across all label sets,
    /// optionally restricted to series carrying `label == value`.
    pub fn histogram_totals(&self, name: &str, label: Option<(&str, &str)>) -> (u64, u64) {
        self.histograms
            .iter()
            .filter(|h| h.name == name)
            .filter(|h| label.is_none_or(|(k, v)| h.labels.get(k).is_some_and(|lv| lv == v)))
            .fold((0, 0), |(c, s), h| (c + h.count, s + h.sum))
    }
}

/// The `/predict` phase names, in request order (must match the
/// server's `PhaseSet`).
const PREDICT_PHASES: [&str; 5] = ["parse", "validate", "resolve", "predict", "serialize"];

/// Render the server-side delta between two scrapes bracketing a load
/// run: request/cache totals, the mean time per `/predict` phase with
/// its share of phase time, and micro-batch shape.
pub fn format_server_breakdown(before: &MetricsScrape, after: &MetricsScrape) -> String {
    let delta = |name: &str| {
        after
            .counter_total(name)
            .saturating_sub(before.counter_total(name))
    };
    let hist_delta = |name: &str, label: Option<(&str, &str)>| {
        let (c0, s0) = before.histogram_totals(name, label);
        let (c1, s1) = after.histogram_totals(name, label);
        (c1.saturating_sub(c0), s1.saturating_sub(s0))
    };
    let mean_us = |(count, sum_ns): (u64, u64)| {
        if count == 0 {
            0.0
        } else {
            sum_ns as f64 / count as f64 / 1_000.0
        }
    };

    let requests = delta("lam_requests_total");
    let hits = delta("lam_cache_hits_total");
    let misses = delta("lam_cache_misses_total");
    let lookups = hits + misses;
    let mut out = String::new();
    let _ = writeln!(out, "server-side breakdown (deltas over the run)");
    let _ = writeln!(out, "  requests served  {requests:>12}");
    let _ = writeln!(
        out,
        "  cache hits       {:>11.1}% ({hits}/{lookups})",
        if lookups == 0 {
            0.0
        } else {
            100.0 * hits as f64 / lookups as f64
        }
    );

    let phase_deltas: Vec<(&str, (u64, u64))> = PREDICT_PHASES
        .iter()
        .map(|&p| (p, hist_delta("lam_phase_duration_ns", Some(("phase", p)))))
        .collect();
    let phase_total_ns: u64 = phase_deltas.iter().map(|(_, (_, s))| s).sum();
    let _ = writeln!(out, "  /predict phases (mean per request)");
    for (phase, d) in &phase_deltas {
        let share = if phase_total_ns == 0 {
            0.0
        } else {
            100.0 * d.1 as f64 / phase_total_ns as f64
        };
        let _ = writeln!(
            out,
            "    {phase:<10} {:>10.1}us  {share:>5.1}%",
            mean_us(*d)
        );
    }

    let rows = hist_delta("lam_batch_rows", None);
    let wait = hist_delta("lam_batch_queue_wait_ns", None);
    let _ = writeln!(
        out,
        "  micro-batch rows {:>12.1} mean",
        if rows.0 == 0 {
            0.0
        } else {
            rows.1 as f64 / rows.0 as f64
        }
    );
    let _ = writeln!(out, "  queue wait       {:>10.1}us mean", mean_us(wait));

    // Event-driven serve core: how well cross-connection coalescing and
    // shedding worked over the run.
    let occupancy = hist_delta("lam_batch_occupancy", None);
    let _ = writeln!(
        out,
        "  batch occupancy  {:>12.2} mean requests/flush",
        if occupancy.0 == 0 {
            0.0
        } else {
            occupancy.1 as f64 / occupancy.0 as f64
        }
    );
    let shed = delta("lam_requests_shed_total");
    let _ = writeln!(out, "  requests shed    {shed:>12}");
    let _ = write!(
        out,
        "  connections open {:>12} (at scrape)",
        after.gauge_total("lam_connections_open")
    );
    out
}

/// Render the gateway-side delta between two scrapes of a *gateway's*
/// `/metrics.json` bracketing a load run: upstream requests per backend
/// (the shard-balance summary), backend liveness, and the `/predict`
/// fan-out shape. Complements [`format_server_breakdown`], which reads
/// the same scrape's serve-core families.
pub fn format_cluster_summary(before: &MetricsScrape, after: &MetricsScrape) -> String {
    const UPSTREAM: &str = "lam_gateway_upstream_requests_total";
    let mut backends: Vec<String> = after
        .counters
        .iter()
        .filter(|c| c.name == UPSTREAM)
        .filter_map(|c| c.labels.get("backend").map(str::to_string))
        .collect();
    backends.sort();
    backends.dedup();
    let mut out = String::new();
    let _ = writeln!(out, "gateway breakdown (deltas over the run)");
    if backends.is_empty() {
        let _ = write!(out, "  no gateway upstream series found in the scrape");
        return out;
    }
    let mut totals: Vec<(String, u64, u64)> = Vec::with_capacity(backends.len());
    for backend in backends {
        let per_class = |class: &str| {
            let sel = |s: &MetricsScrape| {
                s.counters
                    .iter()
                    .filter(|c| c.name == UPSTREAM)
                    .filter(|c| c.labels.get("backend").is_some_and(|v| v == backend))
                    .filter(|c| c.labels.get("status").is_some_and(|v| v == class))
                    .map(|c| c.value.max(0) as u64)
                    .sum::<u64>()
            };
            sel(after).saturating_sub(sel(before))
        };
        let ok = per_class("2xx");
        let bad = per_class("4xx") + per_class("5xx") + per_class("err");
        totals.push((backend, ok, bad));
    }
    let grand: u64 = totals.iter().map(|(_, ok, _)| ok).sum();
    for (backend, ok, bad) in &totals {
        let share = if grand == 0 {
            0.0
        } else {
            100.0 * *ok as f64 / grand as f64
        };
        let healthy = after.gauge_with_label("lam_gateway_backend_healthy", ("backend", backend));
        let _ = writeln!(
            out,
            "  {backend:<21} {ok:>10} upstream 2xx ({share:>5.1}%), {bad} non-2xx/err, healthy={healthy}"
        );
    }
    let fan = |s: &MetricsScrape| s.histogram_totals("lam_gateway_fanout_size", None);
    let (fc0, fs0) = fan(before);
    let (fc1, fs1) = fan(after);
    let (fc, fs) = (fc1.saturating_sub(fc0), fs1.saturating_sub(fs0));
    let _ = write!(
        out,
        "  /predict fan-out   {:>10.2} mean subrequests ({fc} fanned requests)",
        if fc == 0 { 0.0 } else { fs as f64 / fc as f64 }
    );
    out
}

/// Latency percentile over raw sorted samples: linear interpolation
/// between the two bracketing ranks, delegating to the `u64`-native
/// [`lam_data::stats::percentile_sorted_u64`] — no `f64` copy of the
/// sample is ever allocated, no matter how many percentiles a report
/// queries. Returns 0 for an empty sample.
pub fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    lam_data::stats::percentile_sorted_u64(sorted, q)
}

/// Prebuilt request bodies rotating through the feature-row pool.
fn build_bodies(opts: &LoadgenOptions) -> Vec<String> {
    let pool = opts.workload.sample_rows(opts.pool.max(opts.batch));
    let n_bodies = (pool.len() / opts.batch).max(1);
    (0..n_bodies)
        .map(|i| {
            let start = i * opts.batch;
            let rows: Vec<Vec<f64>> = (0..opts.batch)
                .map(|j| pool[(start + j) % pool.len()].clone())
                .collect();
            serde_json::to_string(&PredictRequest {
                workload: opts.workload.to_string(),
                kind: opts.kind.to_string(),
                version: Some(opts.version),
                rows,
            })
            .expect("request serializes")
        })
        .collect()
}

/// Per-connection tallies.
#[derive(Default)]
struct WorkerStats {
    latencies_us: Vec<u64>,
    predictions: u64,
    cache_hits: u64,
    shed: u64,
    errors: u64,
    offered: u64,
}

impl WorkerStats {
    /// Classify one response: 2xx with a parseable body counts with its
    /// latency, 503 is the server shedding (by design, not an error),
    /// anything else is an error.
    fn tally(&mut self, status: u16, body: &str, sent: Instant) {
        match status {
            200 => match serde_json::from_str::<PredictResponse>(body) {
                Ok(r) => {
                    self.latencies_us.push(sent.elapsed().as_micros() as u64);
                    self.predictions += r.predictions.len() as u64;
                    self.cache_hits += r.cache_hits;
                }
                Err(_) => self.errors += 1,
            },
            503 => self.shed += 1,
            _ => self.errors += 1,
        }
    }
}

/// Closed loop: request–response lockstep per connection.
fn drive_closed(
    client: &mut HttpClient,
    bodies: &[String],
    mut i: usize,
    deadline: Duration,
    stats: &mut WorkerStats,
) -> Result<(), ServeError> {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let body = &bodies[i % bodies.len()];
        i += 1;
        let sent = Instant::now();
        stats.offered += 1;
        let (status, response) = client.request("POST", "/predict", body)?;
        stats.tally(status, &response, sent);
    }
    Ok(())
}

/// Pipelined: keep `depth` requests in flight, matching responses to
/// sends in order (the reactor guarantees in-order responses per
/// connection).
fn drive_pipelined(
    client: &mut HttpClient,
    bodies: &[String],
    mut i: usize,
    deadline: Duration,
    depth: usize,
    stats: &mut WorkerStats,
) -> Result<(), ServeError> {
    let start = Instant::now();
    let mut in_flight: VecDeque<Instant> = VecDeque::with_capacity(depth);
    while in_flight.len() < depth {
        let sent = Instant::now();
        client.send("POST", "/predict", &bodies[i % bodies.len()])?;
        i += 1;
        stats.offered += 1;
        in_flight.push_back(sent);
    }
    while start.elapsed() < deadline {
        let (status, response) = client.recv()?;
        let sent = in_flight.pop_front().expect("a response implies a send");
        stats.tally(status, &response, sent);
        let sent = Instant::now();
        client.send("POST", "/predict", &bodies[i % bodies.len()])?;
        i += 1;
        stats.offered += 1;
        in_flight.push_back(sent);
    }
    // Drain the tail so the connection closes clean and every send is
    // accounted.
    while let Some(sent) = in_flight.pop_front() {
        let (status, response) = client.recv()?;
        stats.tally(status, &response, sent);
    }
    Ok(())
}

/// Largest per-connection in-flight window the open-loop pacer allows.
/// Bounds client memory and keeps request bytes small enough that a
/// send can never block against an unread response backlog (which would
/// deadlock a single-threaded paced sender against a pipelining server).
const OPEN_LOOP_WINDOW: usize = 64;

/// Open loop: send on a fixed schedule (`interval` between sends)
/// regardless of completions, up to [`OPEN_LOOP_WINDOW`] outstanding.
/// When the window is full the pacer must block on a response first —
/// offered load beyond that shows up in `offered_rps` falling short of
/// the requested rate.
fn drive_open_loop(
    client: &mut HttpClient,
    bodies: &[String],
    mut i: usize,
    deadline: Duration,
    interval: Duration,
    stats: &mut WorkerStats,
) -> Result<(), ServeError> {
    let start = Instant::now();
    let mut next_send = start;
    let mut in_flight: VecDeque<Instant> = VecDeque::new();
    while start.elapsed() < deadline {
        let now = Instant::now();
        if now >= next_send && in_flight.len() < OPEN_LOOP_WINDOW {
            let sent = Instant::now();
            client.send("POST", "/predict", &bodies[i % bodies.len()])?;
            i += 1;
            stats.offered += 1;
            in_flight.push_back(sent);
            next_send += interval;
            continue;
        }
        if in_flight.is_empty() {
            // Ahead of schedule with nothing outstanding: sleep to the
            // next slot (capped so the deadline check stays responsive).
            let wait = next_send
                .saturating_duration_since(now)
                .min(Duration::from_millis(50));
            std::thread::sleep(wait);
            continue;
        }
        let (status, response) = client.recv()?;
        let sent = in_flight.pop_front().expect("in_flight is non-empty");
        stats.tally(status, &response, sent);
    }
    while let Some(sent) = in_flight.pop_front() {
        let (status, response) = client.recv()?;
        stats.tally(status, &response, sent);
    }
    Ok(())
}

/// Run the load and aggregate a [`LoadReport`].
///
/// The first request per connection is an untimed warm-up (it may train
/// or load the model server-side, which can take seconds on a cold
/// registry); a barrier then opens the timed window simultaneously for
/// every connection, so warm-up cost never lands in the throughput
/// denominator.
pub fn run(opts: &LoadgenOptions) -> Result<LoadReport, ServeError> {
    if opts.addrs.is_empty() {
        return Err(ServeError::Http(
            "loadgen needs at least one address".to_string(),
        ));
    }
    let bodies = build_bodies(opts);
    let deadline = Duration::from_secs_f64(opts.seconds);
    let connections = opts.connections.max(1);
    let mode = opts.mode;
    let barrier = std::sync::Barrier::new(connections);
    let results: Vec<(String, WorkerStats, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let bodies = &bodies;
                let addr = opts.addrs[worker % opts.addrs.len()].clone();
                let barrier = &barrier;
                scope.spawn(move || -> Result<(String, WorkerStats, f64), ServeError> {
                    // Connect + warm-up, then *always* reach the barrier
                    // (an early return here would deadlock the others).
                    let setup = (|| -> Result<HttpClient, ServeError> {
                        let mut client = HttpClient::connect(&addr)?;
                        let _ = client.post("/predict", &bodies[worker % bodies.len()])?;
                        Ok(client)
                    })();
                    barrier.wait();
                    let mut client = setup?;
                    let mut stats = WorkerStats::default();
                    let start = Instant::now();
                    match mode {
                        LoadMode::Closed => {
                            drive_closed(&mut client, bodies, worker, deadline, &mut stats)?
                        }
                        LoadMode::Pipeline(depth) => drive_pipelined(
                            &mut client,
                            bodies,
                            worker,
                            deadline,
                            depth.max(1),
                            &mut stats,
                        )?,
                        LoadMode::OpenLoop { rps } => {
                            // Split the offered rate across connections.
                            let per_conn = (rps / connections as f64).max(1e-3);
                            drive_open_loop(
                                &mut client,
                                bodies,
                                worker,
                                deadline,
                                Duration::from_secs_f64(1.0 / per_conn),
                                &mut stats,
                            )?
                        }
                    }
                    Ok((addr, stats, start.elapsed().as_secs_f64()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    // The timed windows start together at the barrier; the run's elapsed
    // time is the longest window.
    let elapsed_s = results
        .iter()
        .map(|(_, _, e)| *e)
        .fold(f64::MIN_POSITIVE, f64::max);

    let mut latencies: Vec<u64> = Vec::new();
    let mut predictions = 0u64;
    let mut cache_hits = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut offered = 0u64;
    let mut per_target: BTreeMap<String, TargetReport> = BTreeMap::new();
    for (addr, s, _) in results {
        let t = per_target.entry(addr.clone()).or_insert(TargetReport {
            addr,
            requests: 0,
            shed: 0,
            errors: 0,
        });
        t.requests += s.latencies_us.len() as u64;
        t.shed += s.shed;
        t.errors += s.errors;
        latencies.extend(s.latencies_us);
        predictions += s.predictions;
        cache_hits += s.cache_hits;
        shed += s.shed;
        errors += s.errors;
        offered += s.offered;
    }
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    Ok(LoadReport {
        mode: mode.to_string(),
        requests,
        predictions,
        shed,
        errors,
        elapsed_s,
        throughput: predictions as f64 / elapsed_s,
        rps: requests as f64 / elapsed_s,
        offered_rps: offered as f64 / elapsed_s,
        p50_us: percentile_us(&latencies, 0.50),
        p90_us: percentile_us(&latencies, 0.90),
        p95_us: percentile_us(&latencies, 0.95),
        p99_us: percentile_us(&latencies, 0.99),
        cache_hit_fraction: if predictions == 0 {
            0.0
        } else {
            cache_hits as f64 / predictions as f64
        },
        targets: per_target.into_values().collect(),
    })
}

/// Render a report as an aligned human-readable block. Runs spanning
/// several addresses get a per-target breakdown appended.
pub fn format_report(r: &LoadReport) -> String {
    let mut out = format!(
        "mode          {:>12}\n\
         requests      {:>12}\n\
         predictions   {:>12}\n\
         shed (503)    {:>12}\n\
         errors        {:>12}\n\
         elapsed       {:>11.2}s\n\
         throughput    {:>12.0} predictions/s\n\
         request rate  {:>12.0} req/s\n\
         offered rate  {:>12.0} req/s\n\
         latency p50   {:>11.0}us\n\
         latency p90   {:>11.0}us\n\
         latency p95   {:>11.0}us\n\
         latency p99   {:>11.0}us\n\
         cache hits    {:>11.1}%",
        r.mode,
        r.requests,
        r.predictions,
        r.shed,
        r.errors,
        r.elapsed_s,
        r.throughput,
        r.rps,
        r.offered_rps,
        r.p50_us,
        r.p90_us,
        r.p95_us,
        r.p99_us,
        100.0 * r.cache_hit_fraction
    );
    if r.targets.len() > 1 {
        let _ = write!(out, "\nper-target requests");
        for t in &r.targets {
            let _ = write!(
                out,
                "\n  {:<21} {:>12} (shed {}, errors {})",
                t.addr, t.requests, t.shed, t.errors
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_like_lam_data() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50.5);
        assert_eq!(percentile_us(&sorted, 0.0), 1.0);
        assert_eq!(percentile_us(&sorted, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[7], 0.99), 7.0);
        // Bit-identical to the lam-data implementation it delegates to.
        let as_f64: Vec<f64> = sorted.iter().map(|&v| v as f64).collect();
        for q in [0.25, 0.5, 0.95, 0.99] {
            assert_eq!(
                percentile_us(&sorted, q),
                lam_data::stats::percentile_sorted(&as_f64, q)
            );
        }
    }

    #[test]
    fn bodies_rotate_the_pool() {
        let opts = LoadgenOptions {
            batch: 8,
            pool: 32,
            ..LoadgenOptions::default()
        };
        let bodies = build_bodies(&opts);
        assert_eq!(bodies.len(), 4);
        // All bodies parse back and carry `batch` rows each.
        for b in &bodies {
            let req: PredictRequest = serde_json::from_str(b).unwrap();
            assert_eq!(req.rows.len(), 8);
            assert_eq!(req.workload, "fmm-small");
        }
        assert_ne!(bodies[0], bodies[1]);
    }

    #[test]
    fn scrape_parses_and_breakdown_uses_deltas() {
        let before: MetricsScrape = serde_json::from_str(
            r#"{"counters":[
                 {"name":"lam_requests_total","labels":{"endpoint":"predict","status":"2xx"},"value":10},
                 {"name":"lam_cache_hits_total","labels":{"scope":"a"},"value":100},
                 {"name":"lam_cache_misses_total","labels":{"scope":"a"},"value":100}],
                "gauges":[],
                "histograms":[
                 {"name":"lam_phase_duration_ns","labels":{"endpoint":"predict","phase":"predict"},
                  "count":10,"sum":10000,"max":2000,"mean":1000.0,"p50":900.0,"p90":1800.0,"p99":2000.0}]}"#,
        )
        .unwrap();
        let after: MetricsScrape = serde_json::from_str(
            r#"{"counters":[
                 {"name":"lam_requests_total","labels":{"endpoint":"predict","status":"2xx"},"value":30},
                 {"name":"lam_requests_total","labels":{"endpoint":"healthz","status":"2xx"},"value":2},
                 {"name":"lam_cache_hits_total","labels":{"scope":"a"},"value":400},
                 {"name":"lam_cache_misses_total","labels":{"scope":"a"},"value":200}],
                "gauges":[],
                "histograms":[
                 {"name":"lam_phase_duration_ns","labels":{"endpoint":"predict","phase":"predict"},
                  "count":30,"sum":50000,"max":4000,"mean":1666.0,"p50":900.0,"p90":1800.0,"p99":2000.0}]}"#,
        )
        .unwrap();
        assert_eq!(before.counter_total("lam_requests_total"), 10);
        assert_eq!(after.counter_total("lam_requests_total"), 32);
        assert_eq!(
            after.histogram_totals("lam_phase_duration_ns", Some(("phase", "predict"))),
            (30, 50000)
        );
        let text = format_server_breakdown(&before, &after);
        // 32 - 10 requests; 300 hits of 400 lookups; predict-phase mean
        // (50000-10000)/(30-10) = 2000ns = 2.0us, 100% of phase time.
        assert!(text.contains("requests served"), "{text}");
        assert!(text.contains("22"), "{text}");
        assert!(text.contains("75.0% (300/400)"), "{text}");
        assert!(text.contains("2.0us"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn report_formats() {
        let r = LoadReport {
            mode: LoadMode::Pipeline(8).to_string(),
            requests: 10,
            predictions: 640,
            shed: 3,
            errors: 0,
            elapsed_s: 1.0,
            throughput: 640.0,
            rps: 10.0,
            offered_rps: 13.0,
            p50_us: 100.0,
            p90_us: 180.0,
            p95_us: 200.0,
            p99_us: 300.0,
            cache_hit_fraction: 0.5,
            targets: vec![
                TargetReport {
                    addr: "127.0.0.1:9001".to_string(),
                    requests: 6,
                    shed: 2,
                    errors: 0,
                },
                TargetReport {
                    addr: "127.0.0.1:9002".to_string(),
                    requests: 4,
                    shed: 1,
                    errors: 0,
                },
            ],
        };
        let s = format_report(&r);
        assert!(s.contains("throughput"));
        assert!(s.contains("640 predictions/s"));
        assert!(s.contains("pipeline(8)"));
        assert!(s.contains("shed (503)"));
        assert!(s.contains("p90"));
        assert!(s.contains("per-target requests"), "{s}");
        assert!(s.contains("127.0.0.1:9002"), "{s}");
        let back: LoadReport = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back.requests, 10);
        assert_eq!(back.shed, 3);
        assert_eq!(back.mode, "pipeline(8)");
    }

    #[test]
    fn load_modes_render_for_reports() {
        assert_eq!(LoadMode::Closed.to_string(), "closed");
        assert_eq!(LoadMode::Pipeline(32).to_string(), "pipeline(32)");
        assert_eq!(
            LoadMode::OpenLoop { rps: 2500.0 }.to_string(),
            "open-loop(2500/s)"
        );
    }
}
