//! The cluster gateway: one event-driven front process that
//! consistent-hash-routes `(workload, kind)` traffic across N lam-serve
//! backends, splits multi-row `/predict` bodies across the key's
//! replica set, re-merges responses preserving row order, health-checks
//! backends with failure-count ejection, and sheds `503` + `retry-after`
//! when no replica is live.
//!
//! ```text
//!                ┌─────────────────────────────┐
//!   clients ────▶│ gateway (epoll reactor +    │     /healthz probes
//!                │ handler pool, this module)  │──────────┐
//!                └──────┬──────────────────────┘          │
//!                       │ consistent hash on             ▼
//!                       │ (workload, kind)      ┌────────────────┐
//!            ┌──────────┼──────────┐            │ health ejector │
//!            ▼          ▼          ▼            └────────────────┘
//!        lam-serve  lam-serve  lam-serve
//!          :9001      :9002      :9003   ←— peers replicate .lamb
//!                                            artifacts on cold miss
//! ```
//!
//! The gateway reuses the serve stack end to end: the same epoll
//! reactor and bounded dispatch queue face the clients
//! ([`crate::http::start_engine`]); upstream requests ride non-blocking
//! keep-alive connections multiplexed on a per-handler-thread epoll
//! instance, so a scatter across R replicas overlaps its upstream I/O
//! instead of paying R round trips in sequence.
//!
//! **Routing.** A [`HashRing`] with virtual nodes maps every
//! `(workload, kind)` to a preference permutation of all backends (see
//! [`crate::route`]). The serving set of a key is the first `replicas`
//! *healthy* entries of that permutation — ejecting a dead backend is
//! just skipping it, which leaves every other key's routing untouched.
//!
//! **Failover without client errors.** An upstream failure on a
//! *reused* keep-alive connection is retried once against the same
//! backend on a fresh connection (a stale pooled connection is not
//! evidence the backend is down); a fresh-connection failure bumps the
//! backend's consecutive-failure count (ejecting it at the threshold)
//! and fails over to the next healthy candidate. `/predict` and `/tune`
//! are idempotent, so retries are safe by construction.
//!
//! **Replication.** Backends started `--peers`-aware extend registry
//! resolution with a peer-fetch step (memo → disk → peer → train): a
//! cold backend pulls the binary `.lamb` artifact from a sibling via
//! `GET /models/{workload}/{kind}/artifact` instead of re-training it.
//! The endpoint never trains, so exactly one process ever pays the
//! training cost for a key.

use crate::http::{
    account_request, endpoint_index, error_body, query_param, start_engine, PredictRequest,
    PredictResponse, ServeConfig, JSON_CONTENT_TYPE, LAMB_CONTENT_TYPE, RECENT_TRACES_LIMIT,
};
use crate::proto::{
    encode_request, encode_request_traced, ParsedRequest, ParsedResponse, ResponseParser,
    ResponseStep,
};
use crate::reactor::Job;
use crate::registry::ModelKey;
use crate::route::HashRing;
use crate::ServeError;
use epoll::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use lam_obs::expose::PROMETHEUS_CONTENT_TYPE;
use lam_obs::recorder::SpanStatus;
use lam_obs::trace::TraceContext;
use lam_obs::{Counter, Gauge, Histogram, SpanRecord};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway configuration: the serve-engine knobs plus routing,
/// replication, and health-checking.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Reactor/queue knobs for the client-facing side (bind address,
    /// handler threads, body cap, shedding).
    pub serve: ServeConfig,
    /// Backend addresses (`host:port`), the ring's identity set.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Replicas serving each key: multi-row `/predict` bodies scatter
    /// across this many healthy backends (1 = pure sharding).
    pub replicas: usize,
    /// How often the health thread probes each backend's `/healthz`.
    pub probe_interval: Duration,
    /// Consecutive failures (probe or traffic) that eject a backend.
    pub fail_threshold: u32,
    /// Consecutive probe successes that restore an ejected backend.
    pub recover_threshold: u32,
    /// Per-exchange upstream deadline for `/predict` and proxied GETs.
    pub upstream_timeout: Duration,
    /// Upstream deadline for `/tune` (oracle evaluations run upstream,
    /// so this is minutes, not milliseconds).
    pub tune_timeout: Duration,
}

impl GatewayConfig {
    /// Defaults for a local cluster over `backends`.
    pub fn new(backends: Vec<String>) -> Self {
        Self {
            serve: ServeConfig::default(),
            backends,
            vnodes: 64,
            replicas: 1,
            probe_interval: Duration::from_millis(500),
            fail_threshold: 3,
            recover_threshold: 2,
            upstream_timeout: Duration::from_secs(10),
            tune_timeout: Duration::from_secs(120),
        }
    }
}

/// One backend's live state: health flag, consecutive-outcome counters,
/// and pre-interned per-backend metrics.
pub struct BackendState {
    /// The backend's `host:port` (the ring identity and metric label).
    pub addr: String,
    healthy: AtomicBool,
    consecutive_fails: AtomicU32,
    consecutive_oks: AtomicU32,
    /// `lam_gateway_upstream_requests_total{backend,status}` by status
    /// class, indexed 2xx/4xx/5xx/err.
    requests: [Arc<Counter>; 4],
    healthy_gauge: Arc<Gauge>,
}

/// Index into [`BackendState::requests`] for an upstream HTTP status.
fn upstream_class(status: u16) -> usize {
    match status {
        0..=399 => 0,
        400..=499 => 1,
        _ => 2,
    }
}

/// Index into [`BackendState::requests`] for a connection-level failure
/// (no HTTP status ever arrived).
const UPSTREAM_ERR: usize = 3;

impl BackendState {
    fn new(addr: String) -> Self {
        let reg = lam_obs::global();
        let counter = |class: &str| {
            reg.counter(
                "lam_gateway_upstream_requests_total",
                "Upstream requests sent by the gateway, by backend and status class.",
                &[("backend", &addr), ("status", class)],
            )
        };
        let healthy_gauge = reg.gauge(
            "lam_gateway_backend_healthy",
            "1 while the gateway considers the backend live, else 0.",
            &[("backend", &addr)],
        );
        healthy_gauge.set(1);
        let requests = [
            counter("2xx"),
            counter("4xx"),
            counter("5xx"),
            counter("err"),
        ];
        Self {
            addr,
            healthy: AtomicBool::new(true),
            consecutive_fails: AtomicU32::new(0),
            consecutive_oks: AtomicU32::new(0),
            requests,
            healthy_gauge,
        }
    }

    /// Is the backend currently in the serving rotation?
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    fn record_response(&self, status: u16) {
        self.requests[upstream_class(status)].inc();
        self.consecutive_fails.store(0, Ordering::SeqCst);
    }

    /// A connection-level failure on a *fresh* connection: count it, and
    /// eject at the threshold. (Reused-connection failures retry
    /// silently — a stale keep-alive socket says nothing about health.)
    fn record_failure(&self, fail_threshold: u32) {
        self.requests[UPSTREAM_ERR].inc();
        self.consecutive_oks.store(0, Ordering::SeqCst);
        let fails = self.consecutive_fails.fetch_add(1, Ordering::SeqCst) + 1;
        if fails >= fail_threshold && self.healthy.swap(false, Ordering::SeqCst) {
            self.healthy_gauge.set(0);
        }
    }

    /// A probe success: restore an ejected backend after enough in a row.
    fn record_probe_success(&self, recover_threshold: u32) {
        self.consecutive_fails.store(0, Ordering::SeqCst);
        let oks = self.consecutive_oks.fetch_add(1, Ordering::SeqCst) + 1;
        if !self.is_healthy()
            && oks >= recover_threshold
            && !self.healthy.swap(true, Ordering::SeqCst)
        {
            self.healthy_gauge.set(1);
        }
    }
}

/// Shared routing + health state of the gateway: the ring, every
/// backend's state, and the fan-out histogram.
pub struct ClusterState {
    /// Per-backend state, indexed as the ring indexes them.
    pub backends: Vec<BackendState>,
    /// The consistent-hash ring over `backends`.
    pub ring: HashRing,
    replicas: usize,
    fail_threshold: u32,
    recover_threshold: u32,
    fanout: Arc<Histogram>,
}

impl ClusterState {
    fn new(cfg: &GatewayConfig) -> Self {
        Self {
            backends: cfg
                .backends
                .iter()
                .cloned()
                .map(BackendState::new)
                .collect(),
            ring: HashRing::new(&cfg.backends, cfg.vnodes),
            replicas: cfg.replicas.max(1),
            fail_threshold: cfg.fail_threshold.max(1),
            recover_threshold: cfg.recover_threshold.max(1),
            fanout: lam_obs::global().histogram(
                "lam_gateway_fanout_size",
                "Upstream subrequests one client /predict fanned out into.",
                &[],
            ),
        }
    }

    /// Backends currently in the serving rotation.
    pub fn healthy_count(&self) -> usize {
        self.backends.iter().filter(|b| b.is_healthy()).count()
    }

    /// The key's healthy candidates, in ring preference order (failover
    /// walks this list).
    fn healthy_candidates(&self, workload: &str, kind: &str) -> Vec<usize> {
        self.ring
            .candidates(workload, kind)
            .into_iter()
            .filter(|&i| self.backends[i].is_healthy())
            .collect()
    }
}

/// Handle of a running gateway: the client-facing server plus the
/// health-probe thread.
pub struct GatewayHandle {
    server: crate::http::ServerHandle,
    probe_stop: Arc<AtomicBool>,
    probe: JoinHandle<()>,
    /// The routing/health state, shared for inspection (tests, CLIs).
    pub cluster: Arc<ClusterState>,
}

impl GatewayHandle {
    /// The gateway's bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Graceful shutdown of the server and the probe thread.
    pub fn stop(self) {
        self.probe_stop.store(true, Ordering::SeqCst);
        let _ = self.probe.join();
        self.server.stop();
    }
}

/// Start the gateway. Returns once the client-facing listener is bound;
/// routing, health probing, and upstream I/O happen on the engine's
/// threads.
pub fn start_gateway(cfg: GatewayConfig) -> Result<GatewayHandle, ServeError> {
    if cfg.backends.is_empty() {
        return Err(ServeError::Http(
            "gateway needs at least one --backend".to_string(),
        ));
    }
    // Span records from this process must be attributable to the gateway
    // when a trace is assembled across the cluster.
    lam_obs::recorder::set_service("gateway");
    let cluster = Arc::new(ClusterState::new(&cfg));
    let ctx = Arc::new(GatewayCtx {
        cluster: Arc::clone(&cluster),
        retry_after_secs: cfg.serve.retry_after_secs,
        upstream_timeout: cfg.upstream_timeout,
        tune_timeout: cfg.tune_timeout,
        max_upstream_body: cfg.serve.opts.max_body.max(1 << 20),
    });
    let server = start_engine(
        &cfg.serve,
        None,
        Arc::new(move |job| handle_gateway_job(job, &ctx)),
    )?;
    let probe_stop = Arc::new(AtomicBool::new(false));
    let probe = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&probe_stop);
        let interval = cfg.probe_interval.max(Duration::from_millis(10));
        std::thread::spawn(move || probe_loop(&cluster, &stop, interval))
    };
    Ok(GatewayHandle {
        server,
        probe_stop,
        probe,
        cluster,
    })
}

/// The health thread: probe every backend's `/healthz` each interval,
/// sleeping in small slices so shutdown is prompt.
fn probe_loop(cluster: &ClusterState, stop: &AtomicBool, interval: Duration) {
    const PROBE_TIMEOUT: Duration = Duration::from_secs(2);
    while !stop.load(Ordering::SeqCst) {
        for backend in &cluster.backends {
            match blocking_get(&backend.addr, "/healthz", PROBE_TIMEOUT, 1 << 20) {
                Ok(resp) if resp.status == 200 => {
                    backend.record_probe_success(cluster.recover_threshold)
                }
                _ => backend.record_failure(cluster.fail_threshold),
            }
        }
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::SeqCst) {
            let slice = (interval - slept).min(Duration::from_millis(25));
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// Everything a gateway handler thread needs for one request.
struct GatewayCtx {
    cluster: Arc<ClusterState>,
    retry_after_secs: u32,
    upstream_timeout: Duration,
    tune_timeout: Duration,
    max_upstream_body: usize,
}

/// A fully-formed gateway response (status, content type, body bytes,
/// optional `retry-after`).
type GatewayResponse = (u16, &'static str, Vec<u8>, Option<u32>);

/// Map an upstream's content type onto our static label set (responder
/// completions carry `&'static str`).
fn static_content_type(ct: &str) -> &'static str {
    if ct.starts_with(PROMETHEUS_CONTENT_TYPE) {
        PROMETHEUS_CONTENT_TYPE
    } else if ct.starts_with(LAMB_CONTENT_TYPE) {
        LAMB_CONTENT_TYPE
    } else {
        JSON_CONTENT_TYPE
    }
}

/// Serve one dispatched client request on a gateway handler thread.
fn handle_gateway_job(job: Job, ctx: &GatewayCtx) {
    let Job {
        req,
        responder,
        hint,
    } = job;
    drop(hint); // the gateway schedules no rows
    let started = lam_obs::enabled().then(Instant::now);
    let endpoint = endpoint_index(&req.method, &req.path);
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    let mut trace = GatewayTrace::begin(&req, path);
    let (status, content_type, body, retry_after) = match (req.method.as_str(), path) {
        ("POST", "/predict") => gateway_predict(&req.body, ctx, trace.as_mut()),
        ("POST", "/tune") => gateway_tune(&req.body, ctx, trace.as_ref().map(|t| t.ctx)),
        ("GET", "/healthz") => gateway_healthz(ctx),
        ("GET", "/metrics") => {
            let snap = lam_obs::global()
                .snapshot()
                .retain_prefix(query_param(query, "prefix"));
            let text = lam_obs::expose::render_prometheus(&snap);
            (200, PROMETHEUS_CONTENT_TYPE, text.into_bytes(), None)
        }
        ("GET", "/metrics.json") => {
            let snap = lam_obs::global()
                .snapshot()
                .retain_prefix(query_param(query, "prefix"));
            let text = lam_obs::expose::render_json(&snap);
            (200, JSON_CONTENT_TYPE, text.into_bytes(), None)
        }
        ("GET", "/metrics/history") => {
            let text = lam_obs::history::global().render_json();
            (200, JSON_CONTENT_TYPE, text.into_bytes(), None)
        }
        ("GET", "/traces") => {
            let records = lam_obs::recorder::global().iter_records();
            let text = lam_obs::recorder::render_recent_json(&records, RECENT_TRACES_LIMIT);
            (200, JSON_CONTENT_TYPE, text.into_bytes(), None)
        }
        ("GET", p) if p.starts_with("/traces/") => {
            gateway_trace_detail(&p["/traces/".len()..], ctx)
        }
        ("GET", p)
            if p == "/models"
                || p == "/workloads"
                || p.starts_with("/workloads/")
                || crate::http::parse_artifact_path(p).is_some() =>
        {
            // Forward the original path: artifact GETs carry `?version=`.
            gateway_proxy_get(&req.path, ctx)
        }
        ("GET", "/predict") => bad(405, "use POST for /predict"),
        ("GET", "/tune") => bad(405, "use POST for /tune"),
        _ => bad(404, &format!("no route for {} {}", req.method, req.path)),
    };
    if let Some(t) = trace {
        t.finish(status);
    }
    account_request(endpoint, status, started);
    responder.send_bytes(status, content_type, body, retry_after);
}

/// Map an HTTP status onto the span outcome recorded for it.
fn span_status(status_code: u16) -> SpanStatus {
    match status_code {
        503 => SpanStatus::Shed,
        s if s >= 400 => SpanStatus::Error,
        _ => SpanStatus::Ok,
    }
}

/// The `gateway.request` root span of one traced client request.
/// Only `/predict` and `/tune` are traced: probe and scrape endpoints
/// would drown the flight recorder in uninteresting spans.
struct GatewayTrace {
    ctx: TraceContext,
    parent_id: u64,
    started: Instant,
    annotations: Vec<(&'static str, String)>,
}

impl GatewayTrace {
    fn begin(req: &ParsedRequest, path: &str) -> Option<Self> {
        if !lam_obs::enabled() || req.method != "POST" || !matches!(path, "/predict" | "/tune") {
            return None;
        }
        let (ctx, parent_id) = match req.trace.as_deref().and_then(TraceContext::parse) {
            Some(parent) => (parent.child(0), parent.span_id),
            None => (TraceContext::root(), 0),
        };
        Some(Self {
            ctx,
            parent_id,
            started: Instant::now(),
            annotations: Vec::new(),
        })
    }

    fn annotate(&mut self, key: &'static str, value: impl Into<String>) {
        self.annotations.push((key, value.into()));
    }

    fn finish(self, status_code: u16) {
        let mut record = SpanRecord::finish(
            &self.ctx,
            self.parent_id,
            "gateway.request",
            self.started,
            span_status(status_code),
        )
        .annotate("http_status", status_code.to_string());
        for (key, value) in self.annotations {
            record = record.annotate(key, value);
        }
        lam_obs::recorder::global().record(record);
    }
}

/// `GET /traces/{id}` on the gateway: merge this process's retained
/// spans for the trace with every backend's (fetched over HTTP), dedup
/// by span id (an in-process test cluster shares one recorder), order
/// by start time, and render the combined tree.
fn gateway_trace_detail(segment: &str, ctx: &GatewayCtx) -> GatewayResponse {
    let Some(trace_id) = lam_obs::trace::parse_trace_id(segment) else {
        return bad(400, "trace id must be 32 hex digits");
    };
    // (span_id, start_unix_ns, rendered span object)
    let mut spans: Vec<(u64, u64, String)> = lam_obs::recorder::global()
        .find_trace(trace_id)
        .into_iter()
        .map(|r| (r.span_id, r.start_unix_ns, r.to_json()))
        .collect();
    let path = format!("/traces/{segment}");
    for backend in &ctx.cluster.backends {
        let Ok(resp) = blocking_get(&backend.addr, &path, TRACE_FETCH_TIMEOUT, 1 << 20) else {
            continue; // a dead backend simply contributes no spans
        };
        if resp.status != 200 {
            continue; // 404 means the backend retained nothing for this id
        }
        let Ok(text) = std::str::from_utf8(&resp.body) else {
            continue;
        };
        let Ok(doc) = serde_json::from_str::<serde::Value>(text) else {
            continue;
        };
        let Some(items) = doc.get("spans").and_then(|s| s.as_array()) else {
            continue;
        };
        for item in items {
            let Some(span_id) = item
                .get("span_id")
                .and_then(|v| v.as_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            else {
                continue;
            };
            let start = match item.get("start_unix_ns") {
                Some(serde::Value::Number(n)) => n.as_u64().unwrap_or(0),
                _ => 0,
            };
            let Ok(json) = serde_json::to_string(item) else {
                continue;
            };
            spans.push((span_id, start, json));
        }
    }
    if spans.is_empty() {
        return bad(404, &format!("no retained spans for trace {segment}"));
    }
    spans.sort_by_key(|s| (s.1, s.0));
    spans.dedup_by_key(|s| s.0);
    let jsons: Vec<String> = spans.into_iter().map(|s| s.2).collect();
    let body = lam_obs::recorder::render_trace_json(trace_id, &jsons);
    (200, JSON_CONTENT_TYPE, body.into_bytes(), None)
}

/// How long the gateway waits on each backend while assembling a
/// cross-process trace. Trace inspection is a debugging path; it should
/// fail towards partial trees, not hang the handler thread.
const TRACE_FETCH_TIMEOUT: Duration = Duration::from_secs(2);

fn bad(status: u16, msg: &str) -> GatewayResponse {
    (
        status,
        JSON_CONTENT_TYPE,
        error_body(msg).into_bytes(),
        None,
    )
}

/// `/healthz` response of the gateway itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayHealthResponse {
    /// `ok` while at least one backend is live, else `degraded`.
    pub status: String,
    /// Crate version of the gateway binary.
    pub version: String,
    /// Build profile (`debug` or `release`).
    pub profile: String,
    /// Configured backend count.
    pub backends: usize,
    /// Backends currently in the serving rotation.
    pub backends_healthy: usize,
    /// Per-backend liveness, in ring order.
    pub backend_status: Vec<GatewayBackendStatus>,
}

/// One backend's row in [`GatewayHealthResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayBackendStatus {
    /// The backend's address.
    pub addr: String,
    /// Its current liveness.
    pub healthy: bool,
}

fn gateway_healthz(ctx: &GatewayCtx) -> GatewayResponse {
    let healthy = ctx.cluster.healthy_count();
    let resp = GatewayHealthResponse {
        status: if healthy > 0 { "ok" } else { "degraded" }.to_string(),
        version: crate::http::BUILD_VERSION.to_string(),
        profile: crate::http::BUILD_PROFILE.to_string(),
        backends: ctx.cluster.backends.len(),
        backends_healthy: healthy,
        backend_status: ctx
            .cluster
            .backends
            .iter()
            .map(|b| GatewayBackendStatus {
                addr: b.addr.clone(),
                healthy: b.is_healthy(),
            })
            .collect(),
    };
    match serde_json::to_string(&resp) {
        Ok(body) => (200, JSON_CONTENT_TYPE, body.into_bytes(), None),
        Err(e) => bad(500, &e.to_string()),
    }
}

/// Shed response when a key has no live replica.
fn all_replicas_down(ctx: &GatewayCtx) -> GatewayResponse {
    (
        503,
        JSON_CONTENT_TYPE,
        error_body("no live backend replica for this key").into_bytes(),
        Some(ctx.retry_after_secs),
    )
}

/// `/predict` through the gateway.
///
/// The routing fields are extracted with a cheap byte scan — no full
/// JSON parse on the passthrough path, which is what keeps single-shard
/// gateway overhead inside the ≤ 25% budget on one core. When the
/// serving set is one backend the raw body forwards verbatim; with
/// replication the body is parsed once and its rows scatter as
/// contiguous chunks across the replica set, gathered back in chunk
/// order so the client sees row-order-preserving predictions.
fn gateway_predict(
    body: &[u8],
    ctx: &GatewayCtx,
    mut trace: Option<&mut GatewayTrace>,
) -> GatewayResponse {
    let tctx = trace.as_ref().map(|t| t.ctx);
    let Some((workload, kind)) = scan_routing_fields(body) else {
        // The scan only fails on bodies that are not simple JSON
        // objects with string `workload`/`kind` fields — let a backend
        // produce the canonical 400 unless none is alive.
        return match first_healthy(ctx) {
            Some(order) => forward_with_failover(
                ctx,
                &order,
                "POST",
                "/predict",
                body,
                ctx.upstream_timeout,
                tctx,
            ),
            None => all_replicas_down(ctx),
        };
    };
    let candidates = ctx.cluster.healthy_candidates(&workload, &kind);
    if candidates.is_empty() {
        return all_replicas_down(ctx);
    }
    let serving = &candidates[..candidates.len().min(ctx.cluster.replicas)];
    if serving.len() == 1 {
        ctx.cluster.fanout.record(1);
        if let Some(t) = trace.as_deref_mut() {
            t.annotate("shards", "1");
        }
        return forward_with_failover(
            ctx,
            &candidates,
            "POST",
            "/predict",
            body,
            ctx.upstream_timeout,
            tctx,
        );
    }
    scatter_predict(body, serving, &candidates, ctx, trace)
}

/// `/tune` through the gateway: routed whole (budgets are not
/// splittable), with the kind defaulting to `hybrid` exactly as the
/// backend would default it.
fn gateway_tune(body: &[u8], ctx: &GatewayCtx, trace: Option<TraceContext>) -> GatewayResponse {
    let key = scan_routing_fields(body);
    let candidates = match &key {
        Some((workload, kind)) => ctx.cluster.healthy_candidates(workload, kind),
        None => first_healthy(ctx).unwrap_or_default(),
    };
    if candidates.is_empty() {
        return all_replicas_down(ctx);
    }
    forward_with_failover(
        ctx,
        &candidates,
        "POST",
        "/tune",
        body,
        ctx.tune_timeout,
        trace,
    )
}

/// Proxy a GET (catalog, workloads, artifact) to a healthy backend.
/// Artifact paths route by their embedded key so the request lands on
/// the shard most likely to have the artifact; the rest go to the first
/// healthy backend (every backend can answer them).
fn gateway_proxy_get(path: &str, ctx: &GatewayCtx) -> GatewayResponse {
    let candidates = match crate::http::parse_artifact_path(path) {
        Some((workload, kind, _)) => {
            let (workload, kind) = (workload.to_string(), kind.to_string());
            ctx.cluster.healthy_candidates(&workload, &kind)
        }
        None => first_healthy(ctx).unwrap_or_default(),
    };
    if candidates.is_empty() {
        return all_replicas_down(ctx);
    }
    forward_with_failover(
        ctx,
        &candidates,
        "GET",
        path,
        &[],
        ctx.upstream_timeout,
        None,
    )
}

/// All healthy backends in index order (for keyless requests), `None`
/// when the whole cluster is dark.
fn first_healthy(ctx: &GatewayCtx) -> Option<Vec<usize>> {
    let order: Vec<usize> = (0..ctx.cluster.backends.len())
        .filter(|&i| ctx.cluster.backends[i].is_healthy())
        .collect();
    if order.is_empty() {
        None
    } else {
        Some(order)
    }
}

/// Scan a JSON object's raw bytes for its string-valued `workload` and
/// `kind` fields without parsing the whole body (the rows array
/// dominates the bytes and the passthrough path never needs it).
/// Returns `None` on anything irregular — escaped strings, missing
/// fields — and the caller falls back to a full parse or passthrough.
fn scan_routing_fields(body: &[u8]) -> Option<(String, String)> {
    Some((
        scan_string_field(body, b"\"workload\"")?,
        scan_string_field(body, b"\"kind\"")?,
    ))
}

fn scan_string_field(body: &[u8], quoted_name: &[u8]) -> Option<String> {
    let at = body
        .windows(quoted_name.len())
        .position(|w| w == quoted_name)?;
    let mut i = at + quoted_name.len();
    while i < body.len() && (body[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    if body.get(i) != Some(&b':') {
        return None;
    }
    i += 1;
    while i < body.len() && (body[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    if body.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let start = i;
    while i < body.len() {
        match body[i] {
            b'"' => {
                return String::from_utf8(body[start..i].to_vec()).ok();
            }
            // Workload and kind names never contain escapes; punt to the
            // full parser rather than implement JSON unescaping here.
            b'\\' => return None,
            _ => i += 1,
        }
    }
    None
}

/// Send one request to the first candidate that answers, walking the
/// preference list on connection-level failures. An HTTP response —
/// any status — ends the walk: statuses are deterministic answers
/// (400) or explicit backpressure (503 + retry-after) that failover
/// must not amplify into duplicated work.
///
/// With a trace context, each attempt gets its own `gateway.shard`
/// child span (sequence = attempt index) whose header rides to the
/// backend, so failover attempts are distinguishable in the tree.
fn forward_with_failover(
    ctx: &GatewayCtx,
    candidates: &[usize],
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
    trace: Option<TraceContext>,
) -> GatewayResponse {
    for (attempt, &idx) in candidates.iter().enumerate() {
        let addr = &ctx.cluster.backends[idx].addr;
        let leg = trace.map(|t| t.child(attempt as u64));
        let header = leg.map(|l| l.header_value());
        let request = encode_request_traced(method, path, addr, body, header.as_deref());
        let leg_started = Instant::now();
        let outcome = request_one(ctx, idx, request, timeout);
        if let (Some(root), Some(leg)) = (&trace, &leg) {
            let status = match &outcome {
                Ok(resp) => span_status(resp.status),
                Err(_) => SpanStatus::Error,
            };
            lam_obs::recorder::global().record(
                SpanRecord::finish(leg, root.span_id, "gateway.shard", leg_started, status)
                    .annotate("backend", addr.clone()),
            );
        }
        match outcome {
            Ok(resp) => {
                return (
                    resp.status,
                    static_content_type(&resp.content_type),
                    resp.body,
                    None,
                )
            }
            Err(_) => continue,
        }
    }
    all_replicas_down(ctx)
}

/// Scatter a parsed multi-row `/predict` across the serving set and
/// gather the merged response. Chunks are contiguous row ranges, so the
/// concatenation of per-chunk predictions in chunk order *is* the
/// client's row order. A failed chunk fails over to the key's remaining
/// healthy candidates before the request is given up on.
fn scatter_predict(
    body: &[u8],
    serving: &[usize],
    candidates: &[usize],
    ctx: &GatewayCtx,
    trace: Option<&mut GatewayTrace>,
) -> GatewayResponse {
    let start = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return bad(400, "body is not utf-8"),
    };
    let parsed: PredictRequest = match serde_json::from_str(text) {
        Ok(p) => p,
        Err(e) => return bad(400, &e.to_string()),
    };
    let total_rows = parsed.rows.len();
    let shards = serving.len().min(total_rows).max(1);
    ctx.cluster.fanout.record(shards as u64);
    let tctx = match trace {
        Some(t) => {
            t.annotate("rows", total_rows.to_string());
            t.annotate("shards", shards.to_string());
            Some(t.ctx)
        }
        None => None,
    };
    if shards == 1 {
        return forward_with_failover(
            ctx,
            candidates,
            "POST",
            "/predict",
            body,
            ctx.upstream_timeout,
            tctx,
        );
    }
    // Contiguous chunks, sizes differing by at most one row. `offsets`
    // remembers each chunk's starting row for the shard spans below.
    let base = total_rows / shards;
    let extra = total_rows % shards;
    let mut chunks: Vec<Vec<Vec<f64>>> = Vec::with_capacity(shards);
    let mut offsets: Vec<usize> = Vec::with_capacity(shards);
    let mut offset = 0usize;
    let mut rows = parsed.rows.into_iter();
    for s in 0..shards {
        let take = base + usize::from(s < extra);
        offsets.push(offset);
        offset += take;
        chunks.push(rows.by_ref().take(take).collect());
    }
    let subrequests: Vec<(usize, Vec<u8>)> = chunks
        .iter()
        .enumerate()
        .map(|(s, chunk)| {
            let sub = PredictRequest {
                workload: parsed.workload.clone(),
                kind: parsed.kind.clone(),
                version: parsed.version,
                rows: chunk.clone(),
            };
            let body = serde_json::to_string(&sub).expect("predict request serializes");
            let addr = &ctx.cluster.backends[serving[s]].addr;
            let leg = tctx.map(|t| t.child(s as u64));
            let header = leg.map(|l| l.header_value());
            (
                serving[s],
                encode_request_traced("POST", "/predict", addr, body.as_bytes(), header.as_deref()),
            )
        })
        .collect();
    let mut results = exchange_parallel(ctx, subrequests, ctx.upstream_timeout);
    // Failover pass: re-send each failed chunk to the key's other
    // healthy candidates, sequentially (this is the rare path). The
    // retried leg keeps its chunk's span id so the trace stays whole.
    let mut final_backends: Vec<usize> = serving.to_vec();
    for (s, result) in results.iter_mut().enumerate() {
        if result.is_ok() {
            continue;
        }
        let failed_backend = serving[s];
        let sub = PredictRequest {
            workload: parsed.workload.clone(),
            kind: parsed.kind.clone(),
            version: parsed.version,
            rows: chunks[s].clone(),
        };
        let body = serde_json::to_string(&sub).expect("predict request serializes");
        let leg = tctx.map(|t| t.child(s as u64));
        let header = leg.map(|l| l.header_value());
        for &idx in candidates.iter().filter(|&&i| i != failed_backend) {
            if !ctx.cluster.backends[idx].is_healthy() {
                continue;
            }
            let addr = &ctx.cluster.backends[idx].addr;
            let request =
                encode_request_traced("POST", "/predict", addr, body.as_bytes(), header.as_deref());
            if let Ok(resp) = request_one(ctx, idx, request, ctx.upstream_timeout) {
                *result = Ok(resp);
                final_backends[s] = idx;
                break;
            }
        }
    }
    // One `gateway.shard` span per chunk, recorded before the merge so
    // failed chunks still show up (status error) in the trace.
    if let Some(root) = tctx {
        for (s, result) in results.iter().enumerate() {
            let status = match result {
                Ok(resp) => span_status(resp.status),
                Err(_) => SpanStatus::Error,
            };
            lam_obs::recorder::global().record(
                SpanRecord::finish(
                    &root.child(s as u64),
                    root.span_id,
                    "gateway.shard",
                    start,
                    status,
                )
                .annotate(
                    "backend",
                    ctx.cluster.backends[final_backends[s]].addr.clone(),
                )
                .annotate("offset", offsets[s].to_string())
                .annotate("rows", chunks[s].len().to_string()),
            );
        }
    }
    // Merge. Any chunk still failed → 503; any upstream non-200 →
    // forward it (every chunk shares the request's validity, so the
    // first error is the request's error).
    let mut predictions = Vec::new();
    let mut cache_hits = 0u64;
    let mut model = String::new();
    for result in &results {
        let resp = match result {
            Ok(resp) => resp,
            Err(_) => return all_replicas_down(ctx),
        };
        if resp.status != 200 {
            return (
                resp.status,
                static_content_type(&resp.content_type),
                resp.body.clone(),
                None,
            );
        }
        let text = match std::str::from_utf8(&resp.body) {
            Ok(t) => t,
            Err(_) => return bad(502, "backend returned non-utf-8 predict body"),
        };
        let part: PredictResponse = match serde_json::from_str(text) {
            Ok(p) => p,
            Err(e) => return bad(502, &format!("backend predict body unparseable: {e}")),
        };
        if model.is_empty() {
            model = part.model;
        }
        predictions.extend(part.predictions);
        cache_hits += part.cache_hits;
    }
    let merged = PredictResponse {
        model,
        predictions,
        cache_hits,
        micros: start.elapsed().as_micros() as u64,
    };
    match serde_json::to_string(&merged) {
        Ok(body) => (200, JSON_CONTENT_TYPE, body.into_bytes(), None),
        Err(e) => bad(500, &e.to_string()),
    }
}

// ---------------------------------------------------------------------
// Upstream I/O: per-handler-thread keep-alive pool + epoll multiplexing
// ---------------------------------------------------------------------

thread_local! {
    /// Keep-alive upstream connections, pooled per backend address and
    /// per handler thread (no cross-thread locking on the hot path).
    static UPSTREAM_POOL: RefCell<HashMap<String, VecDeque<TcpStream>>> =
        RefCell::new(HashMap::new());
}

/// Pooled keep-alive connections retained per backend per thread.
const POOL_PER_BACKEND: usize = 4;

fn pool_take(addr: &str) -> Option<TcpStream> {
    UPSTREAM_POOL.with(|p| p.borrow_mut().get_mut(addr)?.pop_front())
}

fn pool_put(addr: &str, stream: TcpStream) {
    UPSTREAM_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let slot = pool.entry(addr.to_string()).or_default();
        if slot.len() < POOL_PER_BACKEND {
            slot.push_back(stream);
        }
    });
}

const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::NotFound, "address resolves to nothing"))?;
    let stream = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// One upstream request/response over a blocking socket (the
/// single-subrequest hot path — the passthrough predict, proxied GETs,
/// probes). Implements the retry contract: a failure on a reused pooled
/// connection retries once on a fresh one without recording a failure;
/// a fresh-connection failure records one.
fn request_one(
    ctx: &GatewayCtx,
    idx: usize,
    request: Vec<u8>,
    timeout: Duration,
) -> Result<ParsedResponse, String> {
    let backend = &ctx.cluster.backends[idx];
    let addr = &backend.addr;
    let pooled = pool_take(addr);
    let reused = pooled.is_some();
    let attempt = |stream: TcpStream| -> Result<ParsedResponse, String> {
        blocking_exchange(stream, &request, timeout, ctx.max_upstream_body).map(|(resp, stream)| {
            if resp.keep_alive {
                pool_put(addr, stream);
            }
            resp
        })
    };
    let first = match pooled {
        Some(stream) => attempt(stream),
        None => match connect(addr) {
            Ok(stream) => attempt(stream),
            Err(e) => {
                backend.record_failure(ctx.cluster.fail_threshold);
                return Err(format!("connect {addr}: {e}"));
            }
        },
    };
    match first {
        Ok(resp) => {
            backend.record_response(resp.status);
            Ok(resp)
        }
        Err(first_err) if reused => {
            // The pooled socket may simply have been closed by the
            // backend between requests; that is not failure evidence.
            let stream = connect(addr).map_err(|e| {
                backend.record_failure(ctx.cluster.fail_threshold);
                format!("connect {addr}: {e}")
            })?;
            match attempt(stream) {
                Ok(resp) => {
                    backend.record_response(resp.status);
                    Ok(resp)
                }
                Err(e) => {
                    backend.record_failure(ctx.cluster.fail_threshold);
                    Err(format!("{first_err}; fresh retry: {e}"))
                }
            }
        }
        Err(e) => {
            backend.record_failure(ctx.cluster.fail_threshold);
            Err(e)
        }
    }
}

/// Write `request`, read one response, on a blocking socket with
/// read/write timeouts carved from `timeout`. Returns the stream too so
/// keep-alive sockets can be pooled.
fn blocking_exchange(
    stream: TcpStream,
    request: &[u8],
    timeout: Duration,
    max_body: usize,
) -> Result<(ParsedResponse, TcpStream), String> {
    let mut stream = stream;
    stream.set_nonblocking(false).map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream.write_all(request).map_err(|e| e.to_string())?;
    let mut parser = ResponseParser::new(max_body);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 << 10];
    let deadline = Instant::now() + timeout;
    loop {
        match parser.poll(&mut buf) {
            ResponseStep::Response(resp) => return Ok((resp, stream)),
            ResponseStep::Invalid(msg) => return Err(msg),
            ResponseStep::Incomplete => {}
        }
        if Instant::now() >= deadline {
            return Err("upstream response timed out".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("upstream closed before a full response".to_string()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err("upstream response timed out".to_string())
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// One in-flight upstream subrequest of a scatter. `stream` is `None`
/// once the flight is resolved (or never connected).
struct Flight {
    backend: usize,
    addr: String,
    stream: Option<TcpStream>,
    reused: bool,
    retried: bool,
    request: Vec<u8>,
    written: usize,
    inbuf: Vec<u8>,
    parser: ResponseParser,
    result: Option<Result<ParsedResponse, String>>,
}

/// Fan a scatter's subrequests out concurrently over non-blocking
/// keep-alive connections multiplexed on one epoll instance, applying
/// the same per-flight retry contract as [`request_one`]. Results come
/// back indexed like `subrequests`.
fn exchange_parallel(
    ctx: &GatewayCtx,
    subrequests: Vec<(usize, Vec<u8>)>,
    timeout: Duration,
) -> Vec<Result<ParsedResponse, String>> {
    let n = subrequests.len();
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(e) => return (0..n).map(|_| Err(format!("epoll: {e}"))).collect(),
    };
    let mut flights: Vec<Flight> = Vec::with_capacity(n);
    for (i, (backend, request)) in subrequests.into_iter().enumerate() {
        let addr = ctx.cluster.backends[backend].addr.clone();
        let mut flight = Flight {
            backend,
            addr,
            stream: None,
            reused: false,
            retried: false,
            request,
            written: 0,
            inbuf: Vec::new(),
            parser: ResponseParser::new(ctx.max_upstream_body),
            result: None,
        };
        let stream = match pool_take(&flight.addr) {
            Some(s) => {
                flight.reused = true;
                Some(s)
            }
            None => match connect(&flight.addr) {
                Ok(s) => Some(s),
                Err(e) => {
                    ctx.cluster.backends[backend].record_failure(ctx.cluster.fail_threshold);
                    flight.result = Some(Err(format!("connect {}: {e}", flight.addr)));
                    None
                }
            },
        };
        if let Some(stream) = stream {
            if stream.set_nonblocking(true).is_err() {
                flight.result = Some(Err("set_nonblocking failed".to_string()));
            } else if epoll
                .add(
                    stream.as_raw_fd(),
                    EPOLLIN | EPOLLOUT | EPOLLRDHUP,
                    i as u64,
                )
                .is_err()
            {
                flight.result = Some(Err("epoll add failed".to_string()));
            } else {
                flight.stream = Some(stream);
            }
        }
        flights.push(flight);
    }
    let deadline = Instant::now() + timeout;
    let mut events = [EpollEvent::zeroed(); 16];
    while flights.iter().any(|f| f.result.is_none()) {
        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
            break;
        };
        if left.is_zero() {
            break;
        }
        let n_ev = epoll.wait(&mut events, Some(left.min(Duration::from_millis(100))));
        for ev in events.iter().take(n_ev) {
            let i = ev.token() as usize;
            if i >= flights.len() || flights[i].result.is_some() {
                continue;
            }
            drive_flight(&mut flights[i], i as u64, ev.events(), &epoll, ctx);
        }
    }
    for flight in &mut flights {
        if flight.result.is_none() {
            if let Some(stream) = flight.stream.take() {
                let _ = epoll.delete(stream.as_raw_fd());
            }
            ctx.cluster.backends[flight.backend].record_failure(ctx.cluster.fail_threshold);
            flight.result = Some(Err("upstream response timed out".to_string()));
        }
    }
    flights
        .into_iter()
        .map(|f| f.result.expect("every flight resolved"))
        .collect()
}

/// Advance one flight on readiness and settle the outcome: pool the
/// connection back on a keep-alive response, reconnect fresh once when
/// a *reused* pooled connection fails (a stale keep-alive socket is not
/// failure evidence), record + resolve otherwise. `token` is the
/// flight's index, re-used when the reconnect re-registers the new fd.
fn drive_flight(flight: &mut Flight, token: u64, bits: u32, epoll: &Epoll, ctx: &GatewayCtx) {
    match drive_flight_io(flight, bits) {
        Ok(None) => {} // still in flight
        Ok(Some(resp)) => {
            if let Some(stream) = flight.stream.take() {
                let _ = epoll.delete(stream.as_raw_fd());
                if resp.keep_alive && stream.set_nonblocking(false).is_ok() {
                    pool_put(&flight.addr, stream);
                }
            }
            ctx.cluster.backends[flight.backend].record_response(resp.status);
            flight.result = Some(Ok(resp));
        }
        Err(msg) => {
            if let Some(stream) = flight.stream.take() {
                let _ = epoll.delete(stream.as_raw_fd());
            }
            if flight.reused && !flight.retried {
                if let Ok(stream) = connect(&flight.addr) {
                    if stream.set_nonblocking(true).is_ok()
                        && epoll
                            .add(stream.as_raw_fd(), EPOLLIN | EPOLLOUT | EPOLLRDHUP, token)
                            .is_ok()
                    {
                        flight.stream = Some(stream);
                        flight.reused = false;
                        flight.retried = true;
                        flight.written = 0;
                        flight.inbuf.clear();
                        flight.parser = ResponseParser::new(ctx.max_upstream_body);
                        return;
                    }
                }
            }
            ctx.cluster.backends[flight.backend].record_failure(ctx.cluster.fail_threshold);
            flight.result = Some(Err(msg));
        }
    }
}

/// The pure I/O step of one flight: flush unwritten request bytes,
/// drain readable bytes, poll the parser. `Ok(Some)` on a complete
/// response, `Ok(None)` while still in flight, `Err` on any
/// connection-level failure.
fn drive_flight_io(flight: &mut Flight, bits: u32) -> Result<Option<ParsedResponse>, String> {
    if bits & (EPOLLERR | EPOLLHUP) != 0 {
        return Err("upstream connection error".to_string());
    }
    let Flight {
        stream,
        request,
        written,
        inbuf,
        parser,
        ..
    } = flight;
    // `&TcpStream` implements Read + Write, so disjoint field borrows
    // let the parser state advance while the socket is being driven.
    let Some(stream) = stream.as_ref() else {
        return Ok(None);
    };
    let mut stream = stream;
    while *written < request.len() {
        match stream.write(&request[*written..]) {
            Ok(0) => return Err("upstream write returned 0".to_string()),
            Ok(n) => *written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("upstream write: {e}")),
        }
    }
    let mut chunk = [0u8; 16 << 10];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err("upstream closed before a full response".to_string()),
            Ok(n) => {
                inbuf.extend_from_slice(&chunk[..n]);
                match parser.poll(inbuf) {
                    ResponseStep::Incomplete => {}
                    ResponseStep::Invalid(msg) => return Err(msg),
                    ResponseStep::Response(resp) => return Ok(Some(resp)),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("upstream read: {e}")),
        }
    }
}

// ---------------------------------------------------------------------
// Blocking one-shot client (probes, peer artifact fetch)
// ---------------------------------------------------------------------

/// One-shot blocking GET: connect, request, read one response. No
/// pooling — this is the probe/replication path, not the hot path.
pub(crate) fn blocking_get(
    addr: &str,
    path: &str,
    timeout: Duration,
    max_body: usize,
) -> Result<ParsedResponse, String> {
    let stream = connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let request = encode_request("GET", path, addr, &[]);
    blocking_exchange(stream, &request, timeout, max_body).map(|(resp, _)| resp)
}

/// Deadline and size cap for peer artifact fetches. Artifacts are a few
/// MB at most (50-tree forests); 64 MiB is generous headroom.
const ARTIFACT_FETCH_TIMEOUT: Duration = Duration::from_secs(10);
const ARTIFACT_MAX_BYTES: usize = 64 << 20;

/// Fetch a model artifact's binary bytes from a peer backend. Any
/// non-200 answer is an error (the caller moves on to the next peer or
/// trains).
pub(crate) fn fetch_artifact(addr: &str, key: ModelKey) -> Result<Vec<u8>, ServeError> {
    let path = format!(
        "/models/{}/{}/artifact?version={}",
        key.workload, key.kind, key.version
    );
    let resp = blocking_get(addr, &path, ARTIFACT_FETCH_TIMEOUT, ARTIFACT_MAX_BYTES)
        .map_err(ServeError::Http)?;
    if resp.status != 200 {
        return Err(ServeError::Http(format!(
            "peer {addr} answered {} for {key}",
            resp.status
        )));
    }
    Ok(resp.body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_fields_scan_without_full_parse() {
        let body = br#"{"workload":"fmm-small","kind":"hybrid","rows":[[1,2,3,4]]}"#;
        assert_eq!(
            scan_routing_fields(body),
            Some(("fmm-small".to_string(), "hybrid".to_string()))
        );
        // Whitespace tolerated.
        let spaced = br#"{ "workload" : "spmv-suite" , "kind" : "cart" }"#;
        assert_eq!(
            scan_routing_fields(spaced),
            Some(("spmv-suite".to_string(), "cart".to_string()))
        );
        // Escapes punt to the full parser.
        assert_eq!(
            scan_routing_fields(br#"{"workload":"a\"b","kind":"c"}"#),
            None
        );
        // Missing fields punt.
        assert_eq!(scan_routing_fields(br#"{"kind":"cart"}"#), None);
        assert_eq!(
            scan_routing_fields(br#"{"workload":1,"kind":"cart"}"#),
            None
        );
    }

    #[test]
    fn upstream_status_classes_partition() {
        assert_eq!(upstream_class(200), 0);
        assert_eq!(upstream_class(404), 1);
        assert_eq!(upstream_class(500), 2);
        assert_eq!(upstream_class(503), 2);
        assert_eq!(UPSTREAM_ERR, 3);
    }

    #[test]
    fn backend_health_ejects_and_recovers() {
        let b = BackendState::new("127.0.0.1:1".to_string());
        assert!(b.is_healthy());
        b.record_failure(3);
        b.record_failure(3);
        assert!(b.is_healthy(), "below threshold");
        b.record_failure(3);
        assert!(!b.is_healthy(), "ejected at threshold");
        b.record_probe_success(2);
        assert!(!b.is_healthy(), "one probe is not recovery");
        b.record_probe_success(2);
        assert!(b.is_healthy(), "recovered after threshold probes");
        // A success resets the failure streak.
        b.record_failure(3);
        b.record_response(200);
        b.record_failure(3);
        b.record_failure(3);
        assert!(b.is_healthy(), "streak was broken by the success");
    }
}
