//! Consistent-hash routing for the cluster gateway: `(workload, kind)`
//! keys map onto N backends through a ring of virtual nodes.
//!
//! Each backend owns `vnodes` points on a 64-bit ring (FNV-1a of
//! `"{backend}#{i}"`); a key hashes to a point and walks clockwise to
//! the first vnode, whose backend is the key's *primary*. Walking
//! further and collecting **distinct** backends in ring order yields the
//! key's full preference permutation — the failover order. Routing
//! around a dead backend is therefore just "skip unhealthy entries of
//! the permutation": keys owned by live backends do not move at all,
//! which is the property that makes the hash *consistent*.
//!
//! Virtual nodes exist for balance: with one point per backend the
//! largest arc dominates, with ≥ 64 points per backend the catalog's
//! keys spread to within ~2× of the mean shard (asserted by the cluster
//! e2e suite over the builtin catalog).
//!
//! The ring is deterministic from the backend list alone — no RNG, no
//! clock — so every gateway process (and every restart of one) computes
//! the identical routing table from the same `--backend` flags.

/// 64-bit FNV-1a: tiny, dependency-free, and well-mixed enough for ring
/// placement (vnode points and key points share the one function).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A consistent-hash ring over a fixed backend list. Backends are
/// referred to by index into the list given at construction; the caller
/// (the gateway's cluster state) owns the addresses and health flags.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, backend index)`, sorted by point.
    ring: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Build a ring with `vnodes` points per backend. `backends` are the
    /// stable identity strings (host:port addresses): the ring depends
    /// only on them, never on list order, process, or time.
    pub fn new(backends: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut ring = Vec::with_capacity(backends.len() * vnodes);
        for (idx, backend) in backends.iter().enumerate() {
            for v in 0..vnodes {
                ring.push((fnv1a(format!("{backend}#{v}").as_bytes()), idx));
            }
        }
        // Point collisions across backends are astronomically unlikely
        // but must still be deterministic: break ties by backend index.
        ring.sort_unstable();
        Self {
            ring,
            backends: backends.len(),
        }
    }

    /// Number of backends the ring was built over.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The ring point of a routing key.
    pub fn key_point(workload: &str, kind: &str) -> u64 {
        fnv1a(format!("{workload}/{kind}").as_bytes())
    }

    /// The key's full backend preference: every backend exactly once, in
    /// ring order starting from the key's point. Element 0 is the
    /// primary; the serving set under replication/failover is the first
    /// R *healthy* elements.
    pub fn candidates(&self, workload: &str, kind: &str) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        if self.ring.is_empty() {
            return order;
        }
        let point = Self::key_point(workload, kind);
        let start = self
            .ring
            .partition_point(|&(p, _)| p < point)
            .checked_rem(self.ring.len())
            .unwrap_or(0);
        for i in 0..self.ring.len() {
            let (_, idx) = self.ring[(start + i) % self.ring.len()];
            if !order.contains(&idx) {
                order.push(idx);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// The key's primary backend index (`candidates()[0]`), or `None` on
    /// an empty ring.
    pub fn primary(&self, workload: &str, kind: &str) -> Option<usize> {
        self.candidates(workload, kind).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn ring_is_deterministic_across_builds() {
        let a = HashRing::new(&addrs(3), 64);
        let b = HashRing::new(&addrs(3), 64);
        for w in ["fmm-small", "stencil-grid", "spmv-suite"] {
            for k in ["cart", "hybrid", "knn"] {
                assert_eq!(a.candidates(w, k), b.candidates(w, k));
            }
        }
    }

    #[test]
    fn candidates_are_a_permutation_of_all_backends() {
        let ring = HashRing::new(&addrs(4), 64);
        let order = ring.candidates("fmm-small", "hybrid");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        // The consistency property: keys whose primary survives the
        // membership change keep their primary.
        let three = addrs(3);
        let ring3 = HashRing::new(&three, 64);
        let two = three[..2].to_vec();
        let ring2 = HashRing::new(&two, 64);
        let keys: Vec<(String, String)> = (0..100)
            .map(|i| (format!("workload-{i}"), "hybrid".to_string()))
            .collect();
        for (w, k) in &keys {
            let before = ring3.primary(w, k).unwrap();
            if before < 2 {
                assert_eq!(
                    ring2.primary(w, k).unwrap(),
                    before,
                    "key {w}/{k} moved although its backend survived"
                );
            }
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(&[], 64);
        assert!(ring.candidates("fmm-small", "cart").is_empty());
        assert_eq!(ring.primary("fmm-small", "cart"), None);
    }

    #[test]
    fn vnodes_balance_synthetic_keys() {
        // 1000 synthetic keys over 3 backends with 64 vnodes: every
        // backend should land within 2x of the mean.
        let ring = HashRing::new(&addrs(3), 64);
        let mut counts = [0usize; 3];
        for i in 0..1000 {
            let w = format!("workload-{i}");
            counts[ring.primary(&w, "hybrid").unwrap()] += 1;
        }
        let mean = 1000.0 / 3.0;
        for (idx, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) <= 2.0 * mean,
                "backend {idx} owns {c} of 1000 keys (mean {mean:.0})"
            );
            assert!(c > 0, "backend {idx} owns nothing");
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
