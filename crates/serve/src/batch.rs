//! Serving-side batched inference: request-row validation in front of the
//! shared micro-batch executor.
//!
//! The cache and executor themselves live in [`lam_core::batch`] — they
//! have a second consumer in `lam-tune`'s model-guided search — and are
//! re-exported here so serving code (and its historical callers) keep one
//! import path. What stays in this module is the serving-specific piece:
//! [`validate_rows`], the input firewall that turns malformed client rows
//! into typed [`ServeError`]s before any model dispatch.

use crate::ServeError;

pub use lam_core::batch::{
    BatchEngine, BatchOutcome, CacheStats, PredictionCache, DEFAULT_MAX_ENTRIES,
    DEFAULT_MICRO_BATCH,
};

/// Validate request rows before any model dispatch: every row must carry
/// exactly `expected` features and every value must be finite.
///
/// This is the serving path's input firewall. A NaN or infinity that
/// slipped through would be cached under its bit pattern and then panic
/// the first non-total comparison downstream (k-NN's distance
/// `partial_cmp`, metric sorts), killing the handler thread — so reject
/// with a client error instead.
pub fn validate_rows(expected: usize, rows: &[Vec<f64>]) -> Result<(), ServeError> {
    for (i, row) in rows.iter().enumerate() {
        if row.len() != expected {
            return Err(ServeError::FeatureCount {
                expected,
                actual: row.len(),
                row: i,
            });
        }
        if let Some(col) = row.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::NonFiniteFeature { row: i, col });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_core::predict::PredictRow;

    #[test]
    fn validate_rows_rejects_bad_input() {
        use crate::ServeError;
        assert!(validate_rows(2, &[vec![1.0, 2.0], vec![3.0, 4.0]]).is_ok());
        assert!(validate_rows(0, &[]).is_ok());
        assert!(matches!(
            validate_rows(2, &[vec![1.0]]),
            Err(ServeError::FeatureCount {
                expected: 2,
                actual: 1,
                row: 0
            })
        ));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                validate_rows(2, &[vec![1.0, 2.0], vec![1.0, bad]]),
                Err(ServeError::NonFiniteFeature { row: 1, col: 1 })
            ));
        }
    }

    #[test]
    fn reexported_engine_serves_validated_rows() {
        struct Toy;
        impl PredictRow for Toy {
            fn predict_row(&self, x: &[f64]) -> f64 {
                x[0] + 1.0
            }
        }
        let rows = vec![vec![1.0], vec![2.0]];
        validate_rows(1, &rows).unwrap();
        let engine = BatchEngine::default();
        let out = engine.predict(&Toy, &rows);
        assert_eq!(out.predictions, vec![2.0, 3.0]);
    }
}
