//! The one shim between `lam-tune` and the serving layer, shared by the
//! HTTP `/tune` handler and the `tune` CLI binary so the two entry
//! points cannot drift: strategy dispatch (fixed-model strategies vs the
//! active learner), guiding-model resolution through the registry, and
//! the regret-attachment rule (only when the full dataset sweep was
//! already paid for in this process).

use crate::persist::ModelKind;
use crate::registry::{ModelKey, ModelRegistry};
use crate::workload::WorkloadId;
use crate::ServeError;
use lam_tune::{ActiveLearnOptions, TuneReport, TuneRequest, ACTIVE_STRATEGY};

/// One fully resolved tuning run.
#[derive(Debug, Clone)]
pub struct TuneSpec {
    /// Workload to tune.
    pub workload: WorkloadId,
    /// Strategy name: one of [`lam_tune::STRATEGY_NAMES`] or
    /// [`ACTIVE_STRATEGY`].
    pub strategy: String,
    /// Model kind guiding a fixed-model strategy (ignored by `active`,
    /// which refits its own hybrid in-loop).
    pub kind: ModelKind,
    /// Artifact version of the guiding model (ignored by `active`).
    pub version: u32,
    /// Oracle-evaluation budget.
    pub budget: usize,
    /// Ranked configurations to return.
    pub top_k: usize,
    /// Search seed.
    pub seed: u64,
}

/// Run a tuning spec: resolve (or train) the guiding model when the
/// strategy needs one, tune, and attach regret iff the workload's full
/// dataset is already memoized (never run a sweep just to report it).
/// Returns the guiding model's name (`None` for `active`) and the report.
pub fn run_tune(
    registry: &ModelRegistry,
    spec: &TuneSpec,
) -> Result<(Option<String>, TuneReport), ServeError> {
    let entry = spec.workload.entry();
    let (model_name, mut report) = if spec.strategy == ACTIVE_STRATEGY {
        let report = lam_tune::active_learn(
            entry.workload(),
            &ActiveLearnOptions {
                budget: spec.budget,
                top_k: spec.top_k,
                seed: spec.seed,
                ..ActiveLearnOptions::default()
            },
        )?;
        (None, report)
    } else {
        let tuner = lam_tune::by_name(&spec.strategy)
            .ok_or_else(|| ServeError::UnknownStrategy(spec.strategy.clone()))?;
        let key = ModelKey::new(spec.workload, spec.kind, spec.version);
        let model = registry.get(key)?;
        let report = tuner.tune(
            entry.workload(),
            &*model,
            &TuneRequest {
                budget: spec.budget,
                top_k: spec.top_k,
                seed: spec.seed,
            },
        )?;
        (Some(key.to_string()), report)
    };
    if entry.dataset_generated() {
        report.attach_regret(entry.dataset().response());
    }
    Ok((model_name, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!("lam_serve_tuning_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        ModelRegistry::new(dir)
    }

    fn spec(strategy: &str) -> TuneSpec {
        TuneSpec {
            workload: WorkloadId::get("fmm-small").expect("builtin"),
            strategy: strategy.to_string(),
            kind: ModelKind::Linear, // cheapest guide to train
            version: 1,
            budget: 6,
            top_k: 3,
            seed: 1,
        }
    }

    #[test]
    fn fixed_model_strategy_names_its_guide_and_attaches_regret() {
        let registry = temp_registry("fixed");
        let (model, report) = run_tune(&registry, &spec("random")).unwrap();
        assert_eq!(model.as_deref(), Some("fmm-small/linear/v1"));
        // Training the guide memoized the dataset in-process.
        assert!(report.regret.is_some());
        assert!(report.evaluations <= 6);
    }

    #[test]
    fn active_has_no_guide_model() {
        let registry = temp_registry("active");
        let (model, report) = run_tune(&registry, &spec(ACTIVE_STRATEGY)).unwrap();
        assert!(model.is_none());
        assert_eq!(report.strategy, ACTIVE_STRATEGY);
    }

    #[test]
    fn unknown_strategy_is_a_typed_error() {
        let registry = temp_registry("unknown");
        let err = run_tune(&registry, &spec("annealing")).unwrap_err();
        assert!(matches!(err, ServeError::UnknownStrategy(ref s) if s == "annealing"));
        assert!(err.to_string().contains("unknown strategy"));
    }
}
