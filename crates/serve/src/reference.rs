//! The original blocking thread-per-connection HTTP server, preserved as
//! the benchmark baseline for the event-driven reactor in
//! [`crate::reactor`] / [`crate::http`].
//!
//! `serve_bench` starts both implementations on the same machine against
//! the same registry and drives them with the same load generator, so
//! the throughput ratio in `results/BENCH_serve.json` is an honest
//! same-process A/B rather than a number copied from an older commit.
//! Routing, accounting, and response bodies are shared with the live
//! server ([`crate::http::route`] and friends); only the I/O strategy
//! differs: blocking reads with a 250 ms poll timeout, one accept loop
//! per worker thread, no cross-connection batching, no shedding.

use crate::http::{self, ServerClock, ServerOptions};
use crate::proto::ParsedRequest;
use crate::registry::ModelRegistry;
use crate::ServeError;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running reference server; call [`ReferenceHandle::stop`] to shut it
/// down (idle keep-alive connections notice within ~250 ms).
pub struct ReferenceHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ReferenceHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signal shutdown and join the worker threads.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Start the blocking reference server for `registry` per `opts`.
pub fn start_reference(
    registry: Arc<ModelRegistry>,
    opts: ServerOptions,
) -> Result<ReferenceHandle, ServeError> {
    let listener = TcpListener::bind(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let stop = Arc::new(AtomicBool::new(false));
    let clock = ServerClock {
        started: Instant::now(),
        started_at: lam_obs::time::rfc3339(std::time::SystemTime::now()).into(),
    };
    let workers = (0..opts.workers.max(1))
        .map(|_| {
            let listener = Arc::clone(&listener);
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let clock = clock.clone();
            let max_body = opts.max_body;
            std::thread::spawn(move || {
                // The listener stays blocking: a short accept timeout is
                // not portable over std, so shutdown relies on the stop
                // flag plus the next accepted (or failing) connection.
                // Workers poll via the 250 ms read timeout once accepted.
                let _ = listener.set_nonblocking(true);
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            handle_connection(stream, &registry, &stop, &clock, max_body)
                        }
                        Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10))
                        }
                        // Transient accept errors (ECONNABORTED from a
                        // client resetting mid-handshake, EMFILE under fd
                        // pressure) must not kill the worker; back off
                        // briefly and keep accepting until shutdown.
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
        })
        .collect();
    Ok(ReferenceHandle {
        local_addr,
        stop,
        workers,
    })
}

/// Serve keep-alive requests on one connection until the peer closes,
/// a request asks to close, or shutdown is signalled.
fn handle_connection(
    stream: TcpStream,
    registry: &Arc<ModelRegistry>,
    stop: &AtomicBool,
    clock: &ServerClock,
    max_body: usize,
) {
    // Short read timeout so idle keep-alive connections re-check the stop
    // flag a few times a second.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    while !stop.load(Ordering::SeqCst) {
        match read_request(&mut reader, stop, max_body) {
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive;
                let metrics = http::http_metrics();
                let _in_flight = metrics.in_flight.track();
                let handling_started = lam_obs::enabled().then(Instant::now);
                let (status, content_type, body) = http::route(&req, registry, clock);
                let endpoint = http::endpoint_index(&req.method, &req.path);
                metrics.requests[endpoint][http::status_class_index(status)].inc();
                if let Some(started) = handling_started {
                    metrics.duration[endpoint].record(started.elapsed().as_nanos() as u64);
                }
                if write_response(&mut writer, status, content_type, &body, keep_alive).is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Ok(None) => return,               // peer closed cleanly
            Err(ReadError::Idle) => continue, // timeout before any byte: poll stop flag
            Err(ReadError::Malformed(msg)) => {
                // A response is still served, so the request lands in the
                // same status-class accounting as routed requests.
                http::account_malformed(400);
                let body = http::error_body(&msg);
                let _ = write_response(&mut writer, 400, http::JSON_CONTENT_TYPE, &body, false);
                return;
            }
            Err(ReadError::Closed) => return,
        }
    }
}

enum ReadError {
    /// Timeout with no bytes consumed — safe to retry.
    Idle,
    /// Connection died (possibly mid-request).
    Closed,
    /// Syntactically invalid request.
    Malformed(String),
}

/// Longest accepted request line or header line, bytes. Bounds
/// per-connection memory for the pre-body part of a request the way
/// `max_body` bounds the body.
const MAX_HEADER_LINE: usize = 16 << 10;

/// Read one `\n`-terminated line without losing partially received bytes
/// across read timeouts: `read_until` keeps consumed bytes in `buf` on
/// error, where `read_line`'s UTF-8 guard would discard them and corrupt
/// the next parse. `Ok(None)` means EOF with nothing read; a line beyond
/// [`MAX_HEADER_LINE`] is malformed (never an unbounded buffer).
///
/// `idle_on_empty` distinguishes the request line (a timeout before any
/// byte is an idle keep-alive tick the caller polls through) from header
/// lines (mid-request, so a stall just keeps waiting until shutdown).
fn read_line_resilient(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    idle_on_empty: bool,
) -> Result<Option<String>, ReadError> {
    let mut raw = Vec::new();
    loop {
        // Bound each fill so an endless un-terminated stream trips the
        // length check instead of growing `raw` without limit.
        let budget = MAX_HEADER_LINE + 1 - raw.len().min(MAX_HEADER_LINE);
        match (&mut *reader)
            .take(budget as u64)
            .read_until(b'\n', &mut raw)
        {
            Ok(0) => {
                return if raw.is_empty() {
                    Ok(None)
                } else {
                    Err(ReadError::Closed)
                };
            }
            Ok(_) if raw.last() == Some(&b'\n') => break,
            Ok(_) => {
                if raw.len() > MAX_HEADER_LINE {
                    return Err(ReadError::Malformed(format!(
                        "request line or header exceeds {MAX_HEADER_LINE} bytes"
                    )));
                }
                // Short read without a newline: keep accumulating.
            }
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Err(ReadError::Closed);
                }
                if raw.is_empty() && idle_on_empty {
                    return Err(ReadError::Idle);
                }
                // Stalled mid-line: the partial bytes stay in `raw`.
            }
            Err(_) => return Err(ReadError::Closed),
        }
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| ReadError::Malformed("request bytes are not utf-8".to_string()))
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    max_body: usize,
) -> Result<Option<ParsedRequest>, ReadError> {
    // Request line.
    let Some(line) = read_line_resilient(reader, stop, true)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ReadError::Malformed("malformed request line".to_string()));
    };
    let method = method.to_string();
    let path = path.to_string();

    // Headers.
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        let Some(header) = read_line_resilient(reader, stop, false)? else {
            return Err(ReadError::Closed);
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| ReadError::Malformed("bad content-length".to_string()))?;
                }
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
    }
    if content_length > max_body {
        return Err(ReadError::Malformed(format!(
            "body of {content_length} bytes exceeds limit {max_body}"
        )));
    }

    // Body, tolerating timeouts mid-transfer (progress is kept in `body`).
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(ReadError::Closed),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Err(ReadError::Closed);
                }
            }
            Err(_) => return Err(ReadError::Closed),
        }
    }
    Ok(Some(ParsedRequest {
        method,
        path,
        keep_alive,
        trace: None,
        body,
    }))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}
