//! A closed, serializable enumeration of the study's application
//! scenarios.
//!
//! The training pipeline is generic over [`lam_core::Workload`], but a
//! *persisted* model must name its scenario so a later process — with no
//! memory of the training run — can rebuild the matching analytical model
//! and feature layout from first principles. [`WorkloadId`] is that name:
//! a small enum whose variants map 1:1 onto the study's dataset spaces
//! (the paper's stencil and FMM spaces plus the workspace's own SpMV
//! extension), each with a deterministic construction (fixed machine
//! description and noise seed), so "same id" always means "same dataset,
//! same analytical model".

use lam_analytical::traits::AnalyticalModel;
use lam_core::hybrid::HybridConfig;
use lam_core::workload::Workload;
use lam_data::Dataset;
use lam_fmm::workload::FmmWorkload;
use lam_machine::arch::MachineDescription;
use lam_spmv::workload::SpmvWorkload;
use lam_stencil::workload::StencilWorkload;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Noise seed for servable datasets — matches the figure experiments so a
/// served model and a figure binary agree on the ground truth.
pub const NOISE_SEED: u64 = 20190520;

/// One of the study's application scenarios, by stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// Stencil, grid sizes only (Fig 5 space, 729 configurations).
    StencilGrid,
    /// Stencil, grids × loop blocks (Fig 3A / Fig 6 space).
    StencilGridBlocking,
    /// Stencil, planar grids × threads (Fig 7 space).
    StencilGridThreads,
    /// FMM, the paper's full `(t, N, q, k)` space (Fig 3B / Fig 8).
    Fmm,
    /// FMM, the reduced space used by quick tests and examples.
    FmmSmall,
    /// SpMV, the full `(rows, nnz, rb, t)` space (beyond the paper).
    Spmv,
    /// SpMV, the reduced space used by quick tests and smoke runs.
    SpmvSmall,
}

impl WorkloadId {
    /// Every servable scenario, in canonical order.
    pub fn all() -> [WorkloadId; 7] {
        [
            WorkloadId::StencilGrid,
            WorkloadId::StencilGridBlocking,
            WorkloadId::StencilGridThreads,
            WorkloadId::Fmm,
            WorkloadId::FmmSmall,
            WorkloadId::Spmv,
            WorkloadId::SpmvSmall,
        ]
    }

    /// Stable name used in URLs, file names, and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadId::StencilGrid => "stencil-grid",
            WorkloadId::StencilGridBlocking => "stencil-grid-blocking",
            WorkloadId::StencilGridThreads => "stencil-grid-threads",
            WorkloadId::Fmm => "fmm",
            WorkloadId::FmmSmall => "fmm-small",
            WorkloadId::Spmv => "spmv",
            WorkloadId::SpmvSmall => "spmv-small",
        }
    }

    /// Feature-column names of this scenario's dataset. Derived from the
    /// feature layout alone — never from constructing the configuration
    /// space — because `/predict` consults this on every request to
    /// validate row arity before model dispatch.
    pub fn feature_names(&self) -> Vec<String> {
        use lam_stencil::config::StencilFeatures;
        match self {
            WorkloadId::StencilGrid => StencilFeatures::GridOnly.names(),
            WorkloadId::StencilGridBlocking => StencilFeatures::GridAndBlocking.names(),
            WorkloadId::StencilGridThreads => StencilFeatures::GridAndThreads.names(),
            WorkloadId::Fmm | WorkloadId::FmmSmall => lam_fmm::config::FmmConfig::feature_names(),
            WorkloadId::Spmv | WorkloadId::SpmvSmall => {
                lam_spmv::config::SpmvConfig::feature_names()
            }
        }
    }

    /// Feature count of this scenario's rows, allocation-free — the
    /// arity `/predict` checks incoming rows against.
    pub fn n_features(&self) -> usize {
        match self {
            WorkloadId::StencilGrid => 3,
            WorkloadId::StencilGridThreads
            | WorkloadId::Fmm
            | WorkloadId::FmmSmall
            | WorkloadId::Spmv
            | WorkloadId::SpmvSmall => 4,
            WorkloadId::StencilGridBlocking => 6,
        }
    }

    /// Generate this scenario's full dataset (deterministic: fixed machine
    /// and noise seed). This runs the oracle over every configuration —
    /// use [`WorkloadId::feature_rows`] when only the feature side is
    /// needed.
    pub fn dataset(&self) -> Dataset {
        match self {
            WorkloadId::StencilGrid
            | WorkloadId::StencilGridBlocking
            | WorkloadId::StencilGridThreads => self.stencil().generate_dataset(),
            WorkloadId::Fmm | WorkloadId::FmmSmall => self.fmm().generate_dataset(),
            WorkloadId::Spmv | WorkloadId::SpmvSmall => self.spmv().generate_dataset(),
        }
    }

    /// The scenario's untuned analytical model (rebuildable at load time —
    /// analytical models carry no trained state).
    pub fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        match self {
            WorkloadId::StencilGrid
            | WorkloadId::StencilGridBlocking
            | WorkloadId::StencilGridThreads => self.stencil().analytical_model(),
            WorkloadId::Fmm | WorkloadId::FmmSmall => self.fmm().analytical_model(),
            WorkloadId::Spmv | WorkloadId::SpmvSmall => self.spmv().analytical_model(),
        }
    }

    /// The hybrid configuration the experiments pair with this scenario
    /// (FMM and SpMV responses span decades, so their hybrids stack
    /// `ln(am)`).
    pub fn hybrid_config(&self) -> HybridConfig {
        HybridConfig {
            log_feature: matches!(
                self,
                WorkloadId::Fmm | WorkloadId::FmmSmall | WorkloadId::Spmv | WorkloadId::SpmvSmall
            ),
            ..HybridConfig::default()
        }
    }

    /// Feature rows of every configuration, in canonical space order —
    /// projected straight from the parameter space, **without** running
    /// the oracle (identical to the feature side of
    /// [`WorkloadId::dataset`], at a tiny fraction of the cost).
    pub fn feature_rows(&self) -> Vec<Vec<f64>> {
        fn project<W: Workload>(w: &W) -> Vec<Vec<f64>> {
            w.param_space().iter().map(|c| w.features(c)).collect()
        }
        match self {
            WorkloadId::StencilGrid
            | WorkloadId::StencilGridBlocking
            | WorkloadId::StencilGridThreads => project(&self.stencil()),
            WorkloadId::Fmm | WorkloadId::FmmSmall => project(&self.fmm()),
            WorkloadId::Spmv | WorkloadId::SpmvSmall => project(&self.spmv()),
        }
    }

    /// Sample feature rows for load generation and benches: the first
    /// `n` configurations of the space, cycled if `n` exceeds it. Pure
    /// feature projection — loadgen startup never pays for an oracle
    /// sweep of the space.
    pub fn sample_rows(&self, n: usize) -> Vec<Vec<f64>> {
        let rows = self.feature_rows();
        (0..n).map(|i| rows[i % rows.len()].clone()).collect()
    }

    fn stencil(&self) -> StencilWorkload {
        let space = match self {
            WorkloadId::StencilGrid => lam_stencil::config::space_grid_only(),
            WorkloadId::StencilGridBlocking => lam_stencil::config::space_grid_blocking(),
            WorkloadId::StencilGridThreads => lam_stencil::config::space_grid_threads(),
            _ => unreachable!("stencil() called on a non-stencil id"),
        };
        StencilWorkload::new(MachineDescription::blue_waters_xe6(), space, NOISE_SEED)
    }

    fn fmm(&self) -> FmmWorkload {
        let space = match self {
            WorkloadId::Fmm => lam_fmm::config::space_paper(),
            WorkloadId::FmmSmall => lam_fmm::config::space_small(),
            _ => unreachable!("fmm() called on a non-FMM id"),
        };
        FmmWorkload::new(MachineDescription::blue_waters_xe6(), space, NOISE_SEED)
    }

    fn spmv(&self) -> SpmvWorkload {
        let space = match self {
            WorkloadId::Spmv => lam_spmv::config::space_spmv(),
            WorkloadId::SpmvSmall => lam_spmv::config::space_small(),
            _ => unreachable!("spmv() called on a non-SpMV id"),
        };
        SpmvWorkload::new(MachineDescription::blue_waters_xe6(), space, NOISE_SEED)
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WorkloadId {
    type Err = crate::ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorkloadId::all()
            .into_iter()
            .find(|w| w.name() == s)
            .ok_or_else(|| crate::ServeError::UnknownWorkload(s.to_string()))
    }
}

// Serialized as the stable kebab-case name (not the Rust variant name) so
// model files and the HTTP API share one spelling.
impl Serialize for WorkloadId {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for WorkloadId {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "WorkloadId", value))?;
        s.parse()
            .map_err(|_| DeError::custom(format!("unknown workload `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_fromstr() {
        for w in WorkloadId::all() {
            assert_eq!(w.name().parse::<WorkloadId>().unwrap(), w);
        }
        assert!("no-such-workload".parse::<WorkloadId>().is_err());
    }

    #[test]
    fn serde_uses_stable_names() {
        let json = serde_json::to_string(&WorkloadId::FmmSmall).unwrap();
        assert_eq!(json, "\"fmm-small\"");
        let back: WorkloadId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, WorkloadId::FmmSmall);
    }

    #[test]
    fn fmm_small_dataset_is_deterministic_and_shaped() {
        let a = WorkloadId::FmmSmall.dataset();
        let b = WorkloadId::FmmSmall.dataset();
        assert_eq!(a, b);
        assert_eq!(a.n_features(), WorkloadId::FmmSmall.feature_names().len());
        assert!(a.len() > 100);
    }

    #[test]
    fn sample_rows_cycle_the_space() {
        let rows = WorkloadId::FmmSmall.sample_rows(3);
        assert_eq!(rows.len(), 3);
        let data = WorkloadId::FmmSmall.dataset();
        assert_eq!(rows[0], data.row(0));
        let wrapped = WorkloadId::FmmSmall.sample_rows(data.len() + 2);
        assert_eq!(wrapped[data.len()], data.row(0));
    }

    #[test]
    fn feature_rows_match_dataset_without_the_oracle() {
        // The oracle-free projection must agree bit for bit with the
        // feature side of the full dataset, for every scenario family.
        for id in [
            WorkloadId::FmmSmall,
            WorkloadId::SpmvSmall,
            WorkloadId::StencilGrid,
        ] {
            let rows = id.feature_rows();
            let data = id.dataset();
            assert_eq!(rows.len(), data.len(), "{id}");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.as_slice(), data.row(i), "{id} row {i}");
            }
        }
    }

    #[test]
    fn feature_names_and_arity_match_the_datasets() {
        // The request-path shortcuts (layout-derived names, hardcoded
        // arity) must agree with what dataset generation actually
        // produces, for every servable id.
        for id in WorkloadId::all() {
            assert_eq!(id.n_features(), id.feature_names().len(), "{id}");
        }
        for id in [
            WorkloadId::StencilGrid,
            WorkloadId::FmmSmall,
            WorkloadId::SpmvSmall,
        ] {
            assert_eq!(id.feature_names(), id.dataset().feature_names(), "{id}");
        }
    }

    #[test]
    fn spmv_small_dataset_is_deterministic_and_shaped() {
        let a = WorkloadId::SpmvSmall.dataset();
        assert_eq!(a, WorkloadId::SpmvSmall.dataset());
        assert_eq!(a.n_features(), WorkloadId::SpmvSmall.feature_names().len());
        assert!(a.len() >= 96);
    }

    #[test]
    fn hybrid_config_logs_wide_range_scenarios_only() {
        assert!(WorkloadId::Fmm.hybrid_config().log_feature);
        assert!(WorkloadId::FmmSmall.hybrid_config().log_feature);
        assert!(WorkloadId::Spmv.hybrid_config().log_feature);
        assert!(WorkloadId::SpmvSmall.hybrid_config().log_feature);
        assert!(!WorkloadId::StencilGrid.hybrid_config().log_feature);
    }
}
