//! A closed, serializable enumeration of the study's application
//! scenarios.
//!
//! The training pipeline is generic over [`lam_core::Workload`], but a
//! *persisted* model must name its scenario so a later process — with no
//! memory of the training run — can rebuild the matching analytical model
//! and feature layout from first principles. [`WorkloadId`] is that name:
//! a small enum whose variants map 1:1 onto the paper's dataset spaces,
//! each with a deterministic construction (fixed machine description and
//! noise seed), so "same id" always means "same dataset, same analytical
//! model".

use lam_analytical::traits::AnalyticalModel;
use lam_core::hybrid::HybridConfig;
use lam_core::workload::Workload;
use lam_data::Dataset;
use lam_fmm::workload::FmmWorkload;
use lam_machine::arch::MachineDescription;
use lam_stencil::workload::StencilWorkload;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Noise seed for servable datasets — matches the figure experiments so a
/// served model and a figure binary agree on the ground truth.
pub const NOISE_SEED: u64 = 20190520;

/// One of the study's application scenarios, by stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// Stencil, grid sizes only (Fig 5 space, 729 configurations).
    StencilGrid,
    /// Stencil, grids × loop blocks (Fig 3A / Fig 6 space).
    StencilGridBlocking,
    /// Stencil, planar grids × threads (Fig 7 space).
    StencilGridThreads,
    /// FMM, the paper's full `(t, N, q, k)` space (Fig 3B / Fig 8).
    Fmm,
    /// FMM, the reduced space used by quick tests and examples.
    FmmSmall,
}

impl WorkloadId {
    /// Every servable scenario, in canonical order.
    pub fn all() -> [WorkloadId; 5] {
        [
            WorkloadId::StencilGrid,
            WorkloadId::StencilGridBlocking,
            WorkloadId::StencilGridThreads,
            WorkloadId::Fmm,
            WorkloadId::FmmSmall,
        ]
    }

    /// Stable name used in URLs, file names, and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadId::StencilGrid => "stencil-grid",
            WorkloadId::StencilGridBlocking => "stencil-grid-blocking",
            WorkloadId::StencilGridThreads => "stencil-grid-threads",
            WorkloadId::Fmm => "fmm",
            WorkloadId::FmmSmall => "fmm-small",
        }
    }

    /// Feature-column names of this scenario's dataset.
    pub fn feature_names(&self) -> Vec<String> {
        match self {
            WorkloadId::StencilGrid
            | WorkloadId::StencilGridBlocking
            | WorkloadId::StencilGridThreads => self.stencil().feature_names(),
            WorkloadId::Fmm | WorkloadId::FmmSmall => self.fmm().feature_names(),
        }
    }

    /// Generate this scenario's full dataset (deterministic: fixed machine
    /// and noise seed).
    pub fn dataset(&self) -> Dataset {
        match self {
            WorkloadId::StencilGrid
            | WorkloadId::StencilGridBlocking
            | WorkloadId::StencilGridThreads => self.stencil().generate_dataset(),
            WorkloadId::Fmm | WorkloadId::FmmSmall => self.fmm().generate_dataset(),
        }
    }

    /// The scenario's untuned analytical model (rebuildable at load time —
    /// analytical models carry no trained state).
    pub fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        match self {
            WorkloadId::StencilGrid
            | WorkloadId::StencilGridBlocking
            | WorkloadId::StencilGridThreads => self.stencil().analytical_model(),
            WorkloadId::Fmm | WorkloadId::FmmSmall => self.fmm().analytical_model(),
        }
    }

    /// The hybrid configuration the experiments pair with this scenario
    /// (FMM responses span decades, so its hybrid stacks `ln(am)`).
    pub fn hybrid_config(&self) -> HybridConfig {
        HybridConfig {
            log_feature: matches!(self, WorkloadId::Fmm | WorkloadId::FmmSmall),
            ..HybridConfig::default()
        }
    }

    /// Sample feature rows for load generation and benches: the first
    /// `n` configurations of the space, cycled if `n` exceeds it.
    pub fn sample_rows(&self, n: usize) -> Vec<Vec<f64>> {
        let data = self.dataset();
        (0..n).map(|i| data.row(i % data.len()).to_vec()).collect()
    }

    fn stencil(&self) -> StencilWorkload {
        let space = match self {
            WorkloadId::StencilGrid => lam_stencil::config::space_grid_only(),
            WorkloadId::StencilGridBlocking => lam_stencil::config::space_grid_blocking(),
            WorkloadId::StencilGridThreads => lam_stencil::config::space_grid_threads(),
            _ => unreachable!("stencil() called on an FMM id"),
        };
        StencilWorkload::new(MachineDescription::blue_waters_xe6(), space, NOISE_SEED)
    }

    fn fmm(&self) -> FmmWorkload {
        let space = match self {
            WorkloadId::Fmm => lam_fmm::config::space_paper(),
            WorkloadId::FmmSmall => lam_fmm::config::space_small(),
            _ => unreachable!("fmm() called on a stencil id"),
        };
        FmmWorkload::new(MachineDescription::blue_waters_xe6(), space, NOISE_SEED)
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WorkloadId {
    type Err = crate::ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorkloadId::all()
            .into_iter()
            .find(|w| w.name() == s)
            .ok_or_else(|| crate::ServeError::UnknownWorkload(s.to_string()))
    }
}

// Serialized as the stable kebab-case name (not the Rust variant name) so
// model files and the HTTP API share one spelling.
impl Serialize for WorkloadId {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for WorkloadId {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "WorkloadId", value))?;
        s.parse()
            .map_err(|_| DeError::custom(format!("unknown workload `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_fromstr() {
        for w in WorkloadId::all() {
            assert_eq!(w.name().parse::<WorkloadId>().unwrap(), w);
        }
        assert!("no-such-workload".parse::<WorkloadId>().is_err());
    }

    #[test]
    fn serde_uses_stable_names() {
        let json = serde_json::to_string(&WorkloadId::FmmSmall).unwrap();
        assert_eq!(json, "\"fmm-small\"");
        let back: WorkloadId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, WorkloadId::FmmSmall);
    }

    #[test]
    fn fmm_small_dataset_is_deterministic_and_shaped() {
        let a = WorkloadId::FmmSmall.dataset();
        let b = WorkloadId::FmmSmall.dataset();
        assert_eq!(a, b);
        assert_eq!(a.n_features(), WorkloadId::FmmSmall.feature_names().len());
        assert!(a.len() > 100);
    }

    #[test]
    fn sample_rows_cycle_the_space() {
        let rows = WorkloadId::FmmSmall.sample_rows(3);
        assert_eq!(rows.len(), 3);
        let data = WorkloadId::FmmSmall.dataset();
        assert_eq!(rows[0], data.row(0));
        let wrapped = WorkloadId::FmmSmall.sample_rows(data.len() + 2);
        assert_eq!(wrapped[data.len()], data.row(0));
    }

    #[test]
    fn hybrid_config_logs_fmm_only() {
        assert!(WorkloadId::Fmm.hybrid_config().log_feature);
        assert!(WorkloadId::FmmSmall.hybrid_config().log_feature);
        assert!(!WorkloadId::StencilGrid.hybrid_config().log_feature);
    }
}
