//! Workload identity for the serving layer: a validated, interned-name
//! handle into the process-wide [`WorkloadCatalog`].
//!
//! The training pipeline is generic over [`lam_core::Workload`], but a
//! *persisted* model must name its scenario so a later process — with no
//! memory of the training run — can rebuild the matching analytical model
//! and feature layout from first principles. [`WorkloadId`] is that name.
//! It used to be a closed seven-variant enum with hand-routed `match`
//! arms; it is now a thin `Copy` handle onto a catalog entry, so making a
//! new scenario servable is **one registration call**
//! ([`WorkloadCatalog::register`]) with zero edits to this crate:
//!
//! ```no_run
//! use lam_core::catalog::WorkloadCatalog;
//! # let my_workload: Box<dyn lam_core::catalog::DynWorkload> = unimplemented!();
//! WorkloadCatalog::global().register("my-scenario", my_workload).unwrap();
//! let id = lam_serve::workload::WorkloadId::get("my-scenario").unwrap();
//! // Trains, persists, and serves over HTTP like any built-in scenario.
//! ```
//!
//! The study's own scenarios (the paper's stencil and FMM spaces plus the
//! workspace's SpMV extension) are registered lazily by
//! [`ensure_builtin_workloads`] the first time any id is resolved, each
//! with a deterministic construction (fixed machine description and the
//! shared noise seed), so "same name" always means "same dataset, same
//! analytical model". Wire formats are untouched: ids still serialize as
//! their stable kebab-case names in URLs, file names, and JSON.

use lam_analytical::traits::AnalyticalModel;
use lam_core::catalog::{WorkloadCatalog, WorkloadEntry};
use lam_core::hybrid::HybridConfig;
use lam_data::Dataset;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::sync::Once;

/// Noise seed for servable datasets — matches the figure experiments so a
/// served model and a figure binary agree on the ground truth.
pub const NOISE_SEED: u64 = lam_core::catalog::SERVE_NOISE_SEED;

/// Register the study's built-in scenarios in the global catalog, once
/// per process. Every [`WorkloadId`] resolution path calls this first, so
/// the built-ins are always visible; scenarios other crates registered
/// are left untouched (duplicate built-in names mean someone registered
/// them earlier, which is fine — first registration wins).
pub fn ensure_builtin_workloads() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // register_servable is idempotent per name (duplicates are
        // skipped, the rest still register), so only genuine failures —
        // an invalid built-in name — surface here.
        let catalog = WorkloadCatalog::global();
        lam_stencil::workload::register_servable(catalog).expect("stencil built-ins register");
        lam_fmm::workload::register_servable(catalog).expect("fmm built-ins register");
        lam_spmv::workload::register_servable(catalog).expect("spmv built-ins register");
    });
}

/// One registered application scenario, by stable interned name.
///
/// A `WorkloadId` can only be obtained through a successful catalog
/// lookup ([`WorkloadId::get`] / `FromStr` / deserialization), so holding
/// one proves the scenario is registered — and catalog entries are never
/// removed, so the handle stays valid for the life of the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadId {
    name: &'static str,
}

impl WorkloadId {
    /// Resolve a name against the catalog (registering built-ins first).
    pub fn get(name: &str) -> Result<WorkloadId, crate::ServeError> {
        ensure_builtin_workloads();
        WorkloadCatalog::global()
            .lookup(name)
            .map(|entry| WorkloadId { name: entry.name() })
            .ok_or_else(|| crate::ServeError::UnknownWorkload(name.to_string()))
    }

    /// Every servable scenario, in catalog registration order (built-ins
    /// first, then anything registered at runtime).
    pub fn all() -> Vec<WorkloadId> {
        ensure_builtin_workloads();
        WorkloadCatalog::global()
            .entries()
            .into_iter()
            .map(|entry| WorkloadId { name: entry.name() })
            .collect()
    }

    /// Stable name used in URLs, file names, and JSON.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This id's catalog entry. Infallible by construction: ids only come
    /// from successful lookups and entries are never removed.
    pub fn entry(&self) -> Arc<WorkloadEntry> {
        WorkloadCatalog::global()
            .lookup(self.name)
            .expect("WorkloadId names a registered catalog entry")
    }

    /// Feature-column names of this scenario's dataset. Derived from the
    /// scenario's feature layout — never from constructing the
    /// configuration space — because `/predict` consults this on every
    /// request to validate row arity before model dispatch.
    pub fn feature_names(&self) -> Vec<String> {
        self.entry().workload().feature_names()
    }

    /// Feature count of this scenario's rows — the arity `/predict`
    /// checks incoming rows against. Derived from the feature layout
    /// (see [`lam_core::catalog::DynWorkload::n_features`]) and cached in
    /// the catalog entry, so the request hot path never allocates the
    /// name strings and the count cannot drift from
    /// [`WorkloadId::feature_names`].
    pub fn n_features(&self) -> usize {
        self.entry().n_features()
    }

    /// Number of configurations in this scenario's space.
    pub fn space_size(&self) -> usize {
        self.entry().workload().space_size()
    }

    /// This scenario's full dataset (deterministic: fixed machine and
    /// noise seed), memoized in the catalog entry — training every model
    /// family for one workload runs exactly one oracle sweep. Use
    /// [`WorkloadId::feature_rows`] when only the feature side is needed.
    pub fn dataset(&self) -> Arc<Dataset> {
        self.entry().dataset()
    }

    /// The scenario's untuned analytical model (rebuildable at load time —
    /// analytical models carry no trained state).
    pub fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        self.entry().workload().analytical_model()
    }

    /// The hybrid configuration the experiments pair with this scenario
    /// (FMM and SpMV responses span decades, so their hybrids stack
    /// `ln(am)`).
    pub fn hybrid_config(&self) -> HybridConfig {
        self.entry().workload().hybrid_config()
    }

    /// Feature rows of every configuration, in canonical space order —
    /// projected straight from the parameter space, **without** running
    /// the oracle (identical to the feature side of
    /// [`WorkloadId::dataset`], at a tiny fraction of the cost).
    pub fn feature_rows(&self) -> Vec<Vec<f64>> {
        self.entry().workload().feature_rows()
    }

    /// Sample feature rows for load generation and benches: the first
    /// `n` configurations of the space, cycled if `n` exceeds it. Pure
    /// feature projection — loadgen startup never pays for an oracle
    /// sweep of the space.
    pub fn sample_rows(&self, n: usize) -> Vec<Vec<f64>> {
        let rows = self.feature_rows();
        (0..n).map(|i| rows[i % rows.len()].clone()).collect()
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for WorkloadId {
    type Err = crate::ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorkloadId::get(s)
    }
}

// Serialized as the stable kebab-case name so model files and the HTTP
// API share one spelling; deserialization is a catalog lookup, so an
// envelope naming an unregistered scenario fails loudly instead of
// producing an unservable id.
impl Serialize for WorkloadId {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for WorkloadId {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "WorkloadId", value))?;
        s.parse()
            .map_err(|_| DeError::custom(format!("unknown workload `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(name: &str) -> WorkloadId {
        WorkloadId::get(name).expect("builtin workload")
    }

    #[test]
    fn builtins_are_registered_in_canonical_order() {
        let names: Vec<&str> = WorkloadId::all().iter().map(|w| w.name()).collect();
        // Built-ins lead in registration order; runtime registrations (from
        // concurrently running tests) may follow.
        let builtin = [
            "stencil-grid",
            "stencil-grid-blocking",
            "stencil-grid-threads",
            "fmm",
            "fmm-small",
            "spmv",
            "spmv-small",
        ];
        assert_eq!(&names[..builtin.len()], &builtin);
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for w in WorkloadId::all() {
            assert_eq!(w.name().parse::<WorkloadId>().unwrap(), w);
        }
        assert!("no-such-workload".parse::<WorkloadId>().is_err());
    }

    #[test]
    fn serde_uses_stable_names() {
        let json = serde_json::to_string(&id("fmm-small")).unwrap();
        assert_eq!(json, "\"fmm-small\"");
        let back: WorkloadId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id("fmm-small"));
    }

    #[test]
    fn unknown_name_fails_deserialization() {
        let err = serde_json::from_str::<WorkloadId>("\"never-registered\"");
        assert!(err.is_err(), "unknown workload must not deserialize");
    }

    #[test]
    fn fmm_small_dataset_is_deterministic_and_shaped() {
        // The memoized dataset must agree with a from-scratch construction
        // of the same descriptor (same space, machine, and noise seed).
        let memoized = id("fmm-small").dataset();
        let fresh = lam_fmm::workload::FmmWorkload::new(
            lam_machine::arch::MachineDescription::blue_waters_xe6(),
            lam_fmm::config::space_small(),
            NOISE_SEED,
        );
        assert_eq!(
            *memoized,
            lam_core::workload::Workload::generate_dataset(&fresh)
        );
        assert_eq!(memoized.n_features(), id("fmm-small").feature_names().len());
        assert!(memoized.len() > 100);
    }

    #[test]
    fn dataset_is_memoized_per_id() {
        let a = id("fmm-small").dataset();
        let b = id("fmm-small").dataset();
        assert!(Arc::ptr_eq(&a, &b), "second call must be the memo hit");
    }

    #[test]
    fn sample_rows_cycle_the_space() {
        let rows = id("fmm-small").sample_rows(3);
        assert_eq!(rows.len(), 3);
        let data = id("fmm-small").dataset();
        assert_eq!(rows[0], data.row(0));
        let wrapped = id("fmm-small").sample_rows(data.len() + 2);
        assert_eq!(wrapped[data.len()], data.row(0));
    }

    #[test]
    fn feature_rows_match_dataset_without_the_oracle() {
        // The oracle-free projection must agree bit for bit with the
        // feature side of the full dataset, for every scenario family.
        for w in ["fmm-small", "spmv-small", "stencil-grid"].map(id) {
            let rows = w.feature_rows();
            let data = w.dataset();
            assert_eq!(rows.len(), data.len(), "{w}");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.as_slice(), data.row(i), "{w} row {i}");
            }
        }
    }

    #[test]
    fn feature_names_and_arity_agree_for_every_catalog_entry() {
        // The conformance check the old hand-written `n_features()` match
        // kept drifting from: arity must equal the feature-name count and
        // the projected row width, for *every* registered entry — runtime
        // registrations included.
        for w in WorkloadId::all() {
            assert_eq!(w.n_features(), w.feature_names().len(), "{w}");
            let rows = w.feature_rows();
            assert!(!rows.is_empty(), "{w}: empty space");
            assert_eq!(rows[0].len(), w.n_features(), "{w}: row width");
            assert_eq!(w.space_size(), rows.len(), "{w}: space size");
        }
        for w in ["stencil-grid", "fmm-small", "spmv-small"].map(id) {
            assert_eq!(w.feature_names(), w.dataset().feature_names(), "{w}");
        }
    }

    #[test]
    fn spmv_small_dataset_is_deterministic_and_shaped() {
        let a = id("spmv-small").dataset();
        assert_eq!(a, id("spmv-small").dataset());
        assert_eq!(a.n_features(), id("spmv-small").feature_names().len());
        assert!(a.len() >= 96);
    }

    #[test]
    fn hybrid_config_logs_wide_range_scenarios_only() {
        for w in ["fmm", "fmm-small", "spmv", "spmv-small"] {
            assert!(id(w).hybrid_config().log_feature, "{w}");
        }
        for w in [
            "stencil-grid",
            "stencil-grid-blocking",
            "stencil-grid-threads",
        ] {
            assert!(!id(w).hybrid_config().log_feature, "{w}");
        }
    }
}
