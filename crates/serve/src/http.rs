//! Minimal HTTP/1.1 JSON server over `std::net::TcpListener` — no
//! external dependencies, which is the point: the container cannot fetch
//! an async stack, and the API surface (three endpoints, JSON bodies) does
//! not need one.
//!
//! | Endpoint            | Method | Body                                     |
//! |---------------------|--------|------------------------------------------|
//! | `/healthz`          | GET    | — → status, uptime, model/workload counts|
//! | `/models`           | GET    | — → registry catalog                     |
//! | `/workloads`        | GET    | — → servable scenarios (workload catalog)|
//! | `/workloads/{name}` | GET    | — → one scenario, `404` when unknown     |
//! | `/predict`          | POST   | [`PredictRequest`] → [`PredictResponse`] |
//! | `/tune`             | POST   | [`TuneHttpRequest`] → [`TuneHttpResponse`] |
//! | `/metrics`          | GET    | — → Prometheus text exposition           |
//! | `/metrics.json`     | GET    | — → same snapshot as compact JSON        |
//!
//! Every served request — including one whose bytes never parse into a
//! request — lands in `lam_requests_total{endpoint,status}`; endpoint
//! labels come from a fixed classification (never the raw path, which a
//! client controls and would be unbounded label cardinality).
//!
//! Concurrency model: `workers` threads share the listener (`accept` is
//! thread-safe) and each owns one connection at a time, serving keep-alive
//! requests until the peer closes. Read timeouts keep idle connections
//! from pinning workers past shutdown: every timeout tick re-checks the
//! stop flag.

use crate::registry::{ModelKey, ModelRegistry};
use crate::workload::WorkloadId;
use crate::ServeError;
use lam_obs::expose::PROMETHEUS_CONTENT_TYPE;
use lam_obs::{Counter, Gauge, Histogram, PhaseSet};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `/predict` request body. `version` defaults to 1 when absent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Workload name (e.g. `fmm-small`).
    pub workload: String,
    /// Model kind (e.g. `hybrid`).
    pub kind: String,
    /// Artifact version; `None` means 1.
    pub version: Option<u32>,
    /// Feature rows to predict, answered in order.
    pub rows: Vec<Vec<f64>>,
}

/// `/predict` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// The model that answered, as `workload/kind/vN`.
    pub model: String,
    /// One prediction per request row, in request order.
    pub predictions: Vec<f64>,
    /// Rows answered from the prediction cache.
    pub cache_hits: u64,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// `/healthz` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server can respond at all.
    pub status: String,
    /// Wall-clock server start time, RFC 3339 (UTC).
    pub started_at: String,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Seconds since the server started (same clock as `uptime_ms`, for
    /// smoke tests that think in seconds).
    pub uptime_s: f64,
    /// Models memoized in the registry.
    pub models_loaded: usize,
    /// Entries in the workload catalog — lets smoke tests assert the
    /// catalog was populated without a second request.
    pub workloads: usize,
    /// Requests served process-wide (every endpoint and status class) —
    /// the `lam_requests_total` total, surfaced here so a health probe
    /// sees traffic without parsing the exposition format.
    pub requests_total: u64,
    /// Prediction-cache hits / (hits + misses), process-wide; `0.0`
    /// before the first lookup.
    pub cache_hit_ratio: f64,
}

/// One `/models` catalog row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Workload name.
    pub workload: String,
    /// Model kind.
    pub kind: String,
    /// Artifact version.
    pub version: u32,
    /// Loaded into memory in this process.
    pub loaded: bool,
    /// Artifact path.
    pub path: String,
}

/// `/models` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// Catalog rows, sorted by key.
    pub models: Vec<ModelEntry>,
}

/// One `/workloads` row: a servable scenario's schema, straight from the
/// workload catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadInfo {
    /// Stable scenario name (`/predict`'s `workload` field).
    pub name: String,
    /// Feature-column names, in request-row order.
    pub feature_names: Vec<String>,
    /// Feature count request rows must match.
    pub n_features: usize,
    /// Number of configurations in the scenario's space.
    pub space_size: usize,
}

/// `/workloads` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadsResponse {
    /// Servable scenarios, in catalog registration order.
    pub workloads: Vec<WorkloadInfo>,
}

/// `/tune` request body: ask the autotuner what configuration to run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneHttpRequest {
    /// Workload to tune (a catalog name, e.g. `stencil-grid`).
    pub workload: String,
    /// Search strategy: `exhaustive`, `random`, `local`, `halving`, or
    /// `active` (the in-loop-refitting active learner).
    pub strategy: String,
    /// Oracle-evaluation budget the strategy may spend.
    pub budget: usize,
    /// Model kind guiding the search (e.g. `hybrid`); `None` means
    /// hybrid. Ignored by `active`, which refits its own hybrid in-loop.
    pub kind: Option<String>,
    /// Ranked configurations to return; `None` means 5.
    pub top_k: Option<usize>,
    /// Search seed; `None` means 0 (responses are deterministic per seed).
    pub seed: Option<u64>,
    /// Artifact version of the guiding model; `None` means 1.
    pub version: Option<u32>,
}

/// `/tune` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneHttpResponse {
    /// The guiding model, as `workload/kind/vN` — `None` for `active`,
    /// which refits in-loop instead of consulting the registry.
    pub model: Option<String>,
    /// The tuning result: recommendation, ranked configurations with
    /// predicted (and, where measured, oracle) times, budget accounting,
    /// trajectory, and regret when the full dataset was already memoized.
    pub report: lam_tune::TuneReport,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// Error response body (any non-2xx status).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable diagnostic.
    pub error: String,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads sharing the listener.
    pub workers: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: 8 << 20,
        }
    }
}

/// A running server; dropping the handle leaves it running, call
/// [`ServerHandle::stop`] for a clean shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signal shutdown and join every worker. Idempotent-safe: workers
    /// notice the flag on their next accept/read timeout tick.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge blocked accepts awake.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.local_addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// The server's birth time on both clocks: monotonic (`started`, drives
/// uptime) and wall (`started_at`, pre-formatted RFC 3339 so `/healthz`
/// never formats a timestamp per request).
#[derive(Clone)]
struct ServerClock {
    started: Instant,
    started_at: Arc<str>,
}

/// Start serving `registry` per `opts`. Returns once the listener is
/// bound; serving happens on background workers.
pub fn start(
    registry: Arc<ModelRegistry>,
    opts: ServerOptions,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let stop = Arc::new(AtomicBool::new(false));
    let clock = ServerClock {
        started: Instant::now(),
        started_at: lam_obs::time::rfc3339(std::time::SystemTime::now()).into(),
    };
    let workers = (0..opts.workers.max(1))
        .map(|_| {
            let listener = Arc::clone(&listener);
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let clock = clock.clone();
            let max_body = opts.max_body;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            handle_connection(stream, &registry, &stop, &clock, max_body)
                        }
                        // Transient accept errors (ECONNABORTED from a
                        // client resetting mid-handshake, EMFILE under fd
                        // pressure) must not kill the worker; back off
                        // briefly and keep accepting until shutdown.
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
        })
        .collect();
    Ok(ServerHandle {
        local_addr,
        stop,
        workers,
    })
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    keep_alive: bool,
    body: Vec<u8>,
}

/// Endpoint labels for request metrics — a fixed classification, because
/// the raw path is client-controlled and would be unbounded cardinality.
/// `malformed` is the endpoint of a request whose bytes never parsed into
/// a request at all; `other` is any routed-but-unknown method/path.
const ENDPOINTS: [&str; 10] = [
    "healthz",
    "models",
    "workloads",
    "workload-detail",
    "predict",
    "tune",
    "metrics",
    "metrics-json",
    "malformed",
    "other",
];

/// Status-class labels, indexed by [`status_class_index`].
const STATUS_CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

/// Pre-resolved handles for per-request accounting: one counter per
/// `(endpoint, status class)`, one latency histogram per endpoint, one
/// in-flight gauge. Interned once; the per-request cost is a relaxed
/// `fetch_add` or three, never a registry lock.
struct HttpMetrics {
    requests: Vec<[Arc<Counter>; 3]>,
    duration: Vec<Arc<Histogram>>,
    in_flight: Arc<Gauge>,
}

fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = lam_obs::global();
        HttpMetrics {
            requests: ENDPOINTS
                .iter()
                .map(|&endpoint| {
                    std::array::from_fn(|class| {
                        reg.counter(
                            "lam_requests_total",
                            "HTTP requests served, by endpoint and status class.",
                            &[("endpoint", endpoint), ("status", STATUS_CLASSES[class])],
                        )
                    })
                })
                .collect(),
            duration: ENDPOINTS
                .iter()
                .map(|&endpoint| {
                    reg.histogram(
                        "lam_request_duration_ns",
                        "Server-side request handling time, nanoseconds.",
                        &[("endpoint", endpoint)],
                    )
                })
                .collect(),
            in_flight: reg.gauge(
                "lam_requests_in_flight",
                "Requests currently being handled.",
                &[],
            ),
        }
    })
}

/// Index into [`ENDPOINTS`] for a parsed request.
fn endpoint_index(method: &str, path: &str) -> usize {
    let name = match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/models") => "models",
        ("GET", "/workloads") => "workloads",
        ("GET", p) if p.starts_with("/workloads/") => "workload-detail",
        (_, "/predict") => "predict",
        (_, "/tune") => "tune",
        ("GET", "/metrics") => "metrics",
        ("GET", "/metrics.json") => "metrics-json",
        _ => "other",
    };
    ENDPOINTS
        .iter()
        .position(|&e| e == name)
        .expect("every classification name is in ENDPOINTS")
}

/// Index into [`STATUS_CLASSES`]. The server never emits 1xx/3xx, so
/// everything below 400 is success and everything from 500 up is 5xx.
fn status_class_index(status: u16) -> usize {
    match status {
        0..=399 => 0,
        400..=499 => 1,
        _ => 2,
    }
}

/// Serve keep-alive requests on one connection until the peer closes,
/// a request asks to close, or shutdown is signalled.
fn handle_connection(
    stream: TcpStream,
    registry: &Arc<ModelRegistry>,
    stop: &AtomicBool,
    clock: &ServerClock,
    max_body: usize,
) {
    // Short read timeout so idle keep-alive connections re-check the stop
    // flag a few times a second.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    while !stop.load(Ordering::SeqCst) {
        match read_request(&mut reader, stop, max_body) {
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive;
                let metrics = http_metrics();
                let _in_flight = metrics.in_flight.track();
                let handling_started = lam_obs::enabled().then(Instant::now);
                let (status, content_type, body) = route(&req, registry, clock);
                let endpoint = endpoint_index(&req.method, &req.path);
                metrics.requests[endpoint][status_class_index(status)].inc();
                if let Some(started) = handling_started {
                    metrics.duration[endpoint].record(started.elapsed().as_nanos() as u64);
                }
                if write_response(&mut writer, status, content_type, &body, keep_alive).is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Ok(None) => return,               // peer closed cleanly
            Err(ReadError::Idle) => continue, // timeout before any byte: poll stop flag
            Err(ReadError::Malformed(msg)) => {
                // A response is still served, so the request must land in
                // the same status-class accounting as routed requests —
                // previously this path bypassed accounting entirely and a
                // garbage request was indistinguishable from no request.
                let metrics = http_metrics();
                let malformed = ENDPOINTS
                    .iter()
                    .position(|&e| e == "malformed")
                    .expect("malformed is in ENDPOINTS");
                metrics.requests[malformed][status_class_index(400)].inc();
                let body = serde_json::to_string(&ErrorResponse { error: msg })
                    .unwrap_or_else(|_| "{}".to_string());
                let _ = write_response(&mut writer, 400, JSON_CONTENT_TYPE, &body, false);
                return;
            }
            Err(ReadError::Closed) => return,
        }
    }
}

enum ReadError {
    /// Timeout with no bytes consumed — safe to retry.
    Idle,
    /// Connection died (possibly mid-request).
    Closed,
    /// Syntactically invalid request.
    Malformed(String),
}

/// Longest accepted request line or header line, bytes. Bounds
/// per-connection memory for the pre-body part of a request the way
/// `max_body` bounds the body.
const MAX_HEADER_LINE: usize = 16 << 10;

/// Read one `\n`-terminated line without losing partially received bytes
/// across read timeouts: `read_until` keeps consumed bytes in `buf` on
/// error, where `read_line`'s UTF-8 guard would discard them and corrupt
/// the next parse. `Ok(None)` means EOF with nothing read; a line beyond
/// [`MAX_HEADER_LINE`] is malformed (never an unbounded buffer).
///
/// `idle_on_empty` distinguishes the request line (a timeout before any
/// byte is an idle keep-alive tick the caller polls through) from header
/// lines (mid-request, so a stall just keeps waiting until shutdown).
fn read_line_resilient(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    idle_on_empty: bool,
) -> Result<Option<String>, ReadError> {
    let mut raw = Vec::new();
    loop {
        // Bound each fill so an endless un-terminated stream trips the
        // length check instead of growing `raw` without limit.
        let budget = MAX_HEADER_LINE + 1 - raw.len().min(MAX_HEADER_LINE);
        match (&mut *reader)
            .take(budget as u64)
            .read_until(b'\n', &mut raw)
        {
            Ok(0) => {
                return if raw.is_empty() {
                    Ok(None)
                } else {
                    Err(ReadError::Closed)
                };
            }
            Ok(_) if raw.last() == Some(&b'\n') => break,
            Ok(_) => {
                if raw.len() > MAX_HEADER_LINE {
                    return Err(ReadError::Malformed(format!(
                        "request line or header exceeds {MAX_HEADER_LINE} bytes"
                    )));
                }
                // Short read without a newline: keep accumulating.
            }
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Err(ReadError::Closed);
                }
                if raw.is_empty() && idle_on_empty {
                    return Err(ReadError::Idle);
                }
                // Stalled mid-line: the partial bytes stay in `raw`.
            }
            Err(_) => return Err(ReadError::Closed),
        }
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| ReadError::Malformed("request bytes are not utf-8".to_string()))
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    max_body: usize,
) -> Result<Option<Request>, ReadError> {
    // Request line.
    let Some(line) = read_line_resilient(reader, stop, true)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ReadError::Malformed("malformed request line".to_string()));
    };
    let method = method.to_string();
    let path = path.to_string();

    // Headers.
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        let Some(header) = read_line_resilient(reader, stop, false)? else {
            return Err(ReadError::Closed);
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| ReadError::Malformed("bad content-length".to_string()))?;
                }
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
    }
    if content_length > max_body {
        return Err(ReadError::Malformed(format!(
            "body of {content_length} bytes exceeds limit {max_body}"
        )));
    }

    // Body, tolerating timeouts mid-transfer (progress is kept in `body`).
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(ReadError::Closed),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Err(ReadError::Closed);
                }
            }
            Err(_) => return Err(ReadError::Closed),
        }
    }
    Ok(Some(Request {
        method,
        path,
        keep_alive,
        body,
    }))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// `content-type` of every JSON response.
const JSON_CONTENT_TYPE: &str = "application/json";

/// Dispatch a request to its endpoint; returns
/// `(status, content-type, body)`.
fn route(
    req: &Request,
    registry: &Arc<ModelRegistry>,
    clock: &ServerClock,
) -> (u16, &'static str, String) {
    // The metrics endpoints render the exposition formats directly (the
    // Prometheus one is not JSON), so they bypass the JSON route plumbing.
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => {
            let text = lam_obs::expose::render_prometheus(&lam_obs::global().snapshot());
            return (200, PROMETHEUS_CONTENT_TYPE, text);
        }
        ("GET", "/metrics.json") => {
            let text = lam_obs::expose::render_json(&lam_obs::global().snapshot());
            return (200, JSON_CONTENT_TYPE, text);
        }
        _ => {}
    }
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(registry, clock),
        ("GET", "/models") => models(registry),
        ("GET", "/workloads") => workloads(),
        ("GET", path) if path.starts_with("/workloads/") => {
            workload_detail(&path["/workloads/".len()..])
        }
        ("POST", "/predict") => predict(req, registry),
        ("POST", "/tune") => tune(req, registry),
        ("GET", "/predict") => Err((405, "use POST for /predict".to_string())),
        ("GET", "/tune") => Err((405, "use POST for /tune".to_string())),
        _ => Err((404, format!("no route for {} {}", req.method, req.path))),
    };
    match result {
        Ok(body) => (200, JSON_CONTENT_TYPE, body),
        Err((status, error)) => (
            status,
            JSON_CONTENT_TYPE,
            serde_json::to_string(&ErrorResponse { error }).unwrap_or_else(|_| "{}".to_string()),
        ),
    }
}

type RouteResult = Result<String, (u16, String)>;

fn json_ok<T: serde::Serialize>(value: &T) -> RouteResult {
    serde_json::to_string(value).map_err(|e| (500, e.to_string()))
}

fn healthz(registry: &Arc<ModelRegistry>, clock: &ServerClock) -> RouteResult {
    crate::workload::ensure_builtin_workloads();
    let uptime = clock.started.elapsed();
    let obs = lam_obs::global();
    let hits = obs.counter_total("lam_cache_hits_total");
    let lookups = hits + obs.counter_total("lam_cache_misses_total");
    json_ok(&HealthResponse {
        status: "ok".to_string(),
        started_at: clock.started_at.to_string(),
        uptime_ms: uptime.as_millis() as u64,
        uptime_s: uptime.as_secs_f64(),
        models_loaded: registry.loaded_count(),
        workloads: lam_core::catalog::WorkloadCatalog::global().len(),
        requests_total: obs.counter_total("lam_requests_total"),
        cache_hit_ratio: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    })
}

fn models(registry: &Arc<ModelRegistry>) -> RouteResult {
    let catalog = registry.catalog().map_err(|e| (500, e.to_string()))?;
    json_ok(&ModelsResponse {
        models: catalog
            .into_iter()
            .map(|e| ModelEntry {
                workload: e.key.workload.to_string(),
                kind: e.key.kind.to_string(),
                version: e.key.version,
                loaded: e.loaded,
                path: e.path.display().to_string(),
            })
            .collect(),
    })
}

fn workload_info(entry: &lam_core::catalog::WorkloadEntry) -> WorkloadInfo {
    WorkloadInfo {
        name: entry.name().to_string(),
        feature_names: entry.workload().feature_names(),
        n_features: entry.n_features(),
        space_size: entry.workload().space_size(),
    }
}

fn workloads() -> RouteResult {
    // One locked read of the catalog for the whole listing.
    crate::workload::ensure_builtin_workloads();
    json_ok(&WorkloadsResponse {
        workloads: lam_core::catalog::WorkloadCatalog::global()
            .entries()
            .iter()
            .map(|entry| workload_info(entry))
            .collect(),
    })
}

fn workload_detail(name: &str) -> RouteResult {
    let id = WorkloadId::get(name).map_err(|e| (404, e.to_string()))?;
    json_ok(&workload_info(&id.entry()))
}

/// Highest artifact version `/predict` resolves. Resolution can train on
/// miss (that is the registry's contract), so the remotely reachable key
/// space must be finite: workloads × kinds × versions, not an arbitrary
/// `u32` a client can sweep to force unbounded training, disk artifacts,
/// and memo growth.
pub const MAX_SERVED_VERSION: u32 = 32;

/// Phase histograms decomposing `/predict` handling; a [`SpanTimer`]
/// from this set walks each request through parse → validate → resolve →
/// predict → serialize, so `/metrics` answers *where* predict latency
/// goes, not just how much there is.
fn predict_phases() -> &'static PhaseSet {
    static PHASES: OnceLock<PhaseSet> = OnceLock::new();
    PHASES.get_or_init(|| {
        PhaseSet::register(
            lam_obs::global(),
            "lam_phase_duration_ns",
            "Time spent in each handling phase, nanoseconds.",
            &[("endpoint", "predict")],
            &["parse", "validate", "resolve", "predict", "serialize"],
        )
    })
}

fn predict(req: &Request, registry: &Arc<ModelRegistry>) -> RouteResult {
    let start = Instant::now();
    let mut span = predict_phases().start();
    let body =
        std::str::from_utf8(&req.body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let parsed: PredictRequest = serde_json::from_str(body).map_err(|e| (400, e.to_string()))?;
    span.mark("parse");
    let workload: WorkloadId = parsed.workload.parse().map_err(bad_request)?;
    let kind = parsed.kind.parse().map_err(bad_request)?;
    let version = parsed.version.unwrap_or(1);
    if !(1..=MAX_SERVED_VERSION).contains(&version) {
        return Err((
            400,
            format!("version {version} outside 1..={MAX_SERVED_VERSION}"),
        ));
    }
    // Reject wrong-arity and non-finite rows before any model dispatch:
    // a bad request must not trigger train-on-miss, and a NaN/infinity
    // must never reach the cache or a k-NN distance sort (which would
    // panic the handler thread).
    crate::batch::validate_rows(workload.n_features(), &parsed.rows).map_err(bad_request)?;
    span.mark("validate");
    let key = ModelKey::new(workload, kind, version);
    let model = registry.get(key).map_err(|e| (500, e.to_string()))?;
    span.mark("resolve");
    let outcome = model.predict_checked(&parsed.rows).map_err(bad_request)?;
    span.mark("predict");
    let response = json_ok(&PredictResponse {
        model: key.to_string(),
        predictions: outcome.predictions,
        cache_hits: outcome.cache_hits,
        micros: start.elapsed().as_micros() as u64,
    });
    span.mark("serialize");
    response
}

fn bad_request(e: ServeError) -> (u16, String) {
    (400, e.to_string())
}

/// Largest `/tune` budget a client may request. Oracle evaluations run
/// server-side, so the remotely reachable work per request must be
/// finite — the built-in spaces top out near 2k configurations anyway.
pub const MAX_TUNE_BUDGET: usize = 4096;

/// Largest `/tune` `top_k` (bounds the response body).
pub const MAX_TUNE_TOP_K: usize = 100;

fn tune(req: &Request, registry: &Arc<ModelRegistry>) -> RouteResult {
    let start = Instant::now();
    let body =
        std::str::from_utf8(&req.body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let parsed: TuneHttpRequest = serde_json::from_str(body).map_err(|e| (400, e.to_string()))?;
    let workload: WorkloadId = parsed.workload.parse().map_err(bad_request)?;
    if !(1..=MAX_TUNE_BUDGET).contains(&parsed.budget) {
        return Err((
            400,
            format!("budget {} outside 1..={MAX_TUNE_BUDGET}", parsed.budget),
        ));
    }
    let top_k = parsed.top_k.unwrap_or(5);
    if !(1..=MAX_TUNE_TOP_K).contains(&top_k) {
        return Err((400, format!("top_k {top_k} outside 1..={MAX_TUNE_TOP_K}")));
    }
    let kind = parsed
        .kind
        .as_deref()
        .unwrap_or("hybrid")
        .parse()
        .map_err(bad_request)?;
    let version = parsed.version.unwrap_or(1);
    if !(1..=MAX_SERVED_VERSION).contains(&version) {
        return Err((
            400,
            format!("version {version} outside 1..={MAX_SERVED_VERSION}"),
        ));
    }

    // Dispatch + regret attachment are shared with the `tune` CLI.
    let spec = crate::tuning::TuneSpec {
        workload,
        strategy: parsed.strategy,
        kind,
        version,
        budget: parsed.budget,
        top_k,
        seed: parsed.seed.unwrap_or(0),
    };
    let (model_name, report) = crate::tuning::run_tune(registry, &spec).map_err(|e| match e {
        ServeError::UnknownStrategy(_)
        | ServeError::UnknownWorkload(_)
        | ServeError::UnknownKind(_) => (400, e.to_string()),
        ServeError::Tune(
            te @ (lam_tune::TuneError::EmptySpace(_) | lam_tune::TuneError::InvalidRequest(_)),
        ) => (400, te.to_string()),
        other => (500, other.to_string()),
    })?;
    json_ok(&TuneHttpResponse {
        model: model_name,
        report,
        micros: start.elapsed().as_micros() as u64,
    })
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification_is_fixed_cardinality() {
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/healthz")], "healthz");
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/workloads/fmm-small")],
            "workload-detail"
        );
        assert_eq!(ENDPOINTS[endpoint_index("POST", "/predict")], "predict");
        // GET /predict is a 405, still accounted under the endpoint.
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/predict")], "predict");
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/metrics")], "metrics");
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/metrics.json")],
            "metrics-json"
        );
        // Arbitrary client paths collapse to one label value.
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/../../etc")], "other");
        assert_eq!(ENDPOINTS[endpoint_index("DELETE", "/models")], "other");
    }

    #[test]
    fn status_classes_cover_every_emitted_status() {
        assert_eq!(STATUS_CLASSES[status_class_index(200)], "2xx");
        assert_eq!(STATUS_CLASSES[status_class_index(400)], "4xx");
        assert_eq!(STATUS_CLASSES[status_class_index(404)], "4xx");
        assert_eq!(STATUS_CLASSES[status_class_index(405)], "4xx");
        assert_eq!(STATUS_CLASSES[status_class_index(500)], "5xx");
    }

    #[test]
    fn predict_request_tolerates_missing_version() {
        let req: PredictRequest = serde_json::from_str(
            r#"{"workload":"fmm-small","kind":"cart","rows":[[1.0,2.0,3.0,4.0]]}"#,
        )
        .unwrap();
        assert_eq!(req.version, None);
        assert_eq!(req.rows.len(), 1);
    }

    #[test]
    fn predict_request_rejects_missing_rows() {
        let err = serde_json::from_str::<PredictRequest>(r#"{"workload":"fmm","kind":"cart"}"#);
        assert!(err.is_err());
    }

    #[test]
    fn response_bodies_round_trip() {
        let resp = PredictResponse {
            model: "fmm/cart/v1".to_string(),
            predictions: vec![1.5, 2.5],
            cache_hits: 1,
            micros: 42,
        };
        let back: PredictResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back.predictions, resp.predictions);
        assert_eq!(back.cache_hits, 1);
    }
}
