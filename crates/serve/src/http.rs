//! Minimal HTTP/1.1 JSON server over `std::net::TcpListener` — no
//! external dependencies, which is the point: the container cannot fetch
//! an async stack, and the API surface (three endpoints, JSON bodies) does
//! not need one.
//!
//! | Endpoint            | Method | Body                                     |
//! |---------------------|--------|------------------------------------------|
//! | `/healthz`          | GET    | — → status, uptime, model/workload counts|
//! | `/models`           | GET    | — → registry catalog                     |
//! | `/workloads`        | GET    | — → servable scenarios (workload catalog)|
//! | `/workloads/{name}` | GET    | — → one scenario, `404` when unknown     |
//! | `/predict`          | POST   | [`PredictRequest`] → [`PredictResponse`] |
//! | `/tune`             | POST   | [`TuneHttpRequest`] → [`TuneHttpResponse`] |
//! | `/models/{w}/{k}/artifact` | GET | — → binary `.lamb` artifact bytes (peer replication; never trains) |
//! | `/metrics`          | GET    | — → Prometheus text exposition (`?prefix=` filters families) |
//! | `/metrics.json`     | GET    | — → same snapshot as compact JSON (`?prefix=` too) |
//! | `/metrics/history`  | GET    | — → ring of timestamped metric delta frames |
//! | `/traces`           | GET    | — → recent flight-recorder trace summaries |
//! | `/traces/{id}`      | GET    | — → one trace's retained span tree       |
//!
//! Every served request — including one whose bytes never parse into a
//! request — lands in `lam_requests_total{endpoint,status}`; endpoint
//! labels come from a fixed classification (never the raw path, which a
//! client controls and would be unbounded label cardinality).
//!
//! Concurrency model (see [`crate::reactor`] for the full diagram): one
//! epoll reactor thread owns every socket and the per-connection
//! HTTP/1.1 state machines (incremental parsing, keep-alive, pipelining,
//! idle/slowloris timeouts); `workers` handler threads route requests
//! pulled from a bounded dispatch queue; small `/predict` requests
//! submit their rows to a shared [`BatchScheduler`] that coalesces
//! micro-batches *across connections*, completing responses back through
//! the reactor. Both queues shed with `503` + `retry-after` instead of
//! growing without bound, and shutdown drains in-flight requests. The
//! previous blocking thread-per-connection implementation survives as
//! [`crate::reference`], as the benchmark baseline.

use crate::persist::ModelKind;
use crate::proto::ParsedRequest;
use crate::reactor::{Job, JobQueue, Reactor, ReactorConfig, ReactorShared, Responder};
use crate::registry::{LoadedModel, ModelKey, ModelRegistry};
use crate::workload::WorkloadId;
use crate::ServeError;
use lam_core::batch::{BatchScheduler, BatchTarget, SchedulerOptions};
use lam_obs::expose::PROMETHEUS_CONTENT_TYPE;
use lam_obs::recorder::SpanStatus;
use lam_obs::trace::TraceContext;
use lam_obs::{Counter, Gauge, Histogram, PhaseSet, SpanRecord, SpanTimer};
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `/predict` request body. `version` defaults to 1 when absent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Workload name (e.g. `fmm-small`).
    pub workload: String,
    /// Model kind (e.g. `hybrid`).
    pub kind: String,
    /// Artifact version; `None` means 1.
    pub version: Option<u32>,
    /// Feature rows to predict, answered in order.
    pub rows: Vec<Vec<f64>>,
}

/// `/predict` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// The model that answered, as `workload/kind/vN`.
    pub model: String,
    /// One prediction per request row, in request order.
    pub predictions: Vec<f64>,
    /// Rows answered from the prediction cache.
    pub cache_hits: u64,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// `/healthz` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server can respond at all.
    pub status: String,
    /// Crate version serving this process (`lam_build_info`'s `version`
    /// label, surfaced here so probes need not parse the exposition).
    pub version: String,
    /// Build profile: `debug` or `release`.
    pub profile: String,
    /// Wall-clock server start time, RFC 3339 (UTC).
    pub started_at: String,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Seconds since the server started (same clock as `uptime_ms`, for
    /// smoke tests that think in seconds).
    pub uptime_s: f64,
    /// Models memoized in the registry.
    pub models_loaded: usize,
    /// Entries in the workload catalog — lets smoke tests assert the
    /// catalog was populated without a second request.
    pub workloads: usize,
    /// Requests served process-wide (every endpoint and status class) —
    /// the `lam_requests_total` total, surfaced here so a health probe
    /// sees traffic without parsing the exposition format.
    pub requests_total: u64,
    /// Prediction-cache hits / (hits + misses), process-wide; `0.0`
    /// before the first lookup.
    pub cache_hit_ratio: f64,
}

/// One `/models` catalog row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Workload name.
    pub workload: String,
    /// Model kind.
    pub kind: String,
    /// Artifact version.
    pub version: u32,
    /// Loaded into memory in this process.
    pub loaded: bool,
    /// Artifact path.
    pub path: String,
}

/// `/models` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// Catalog rows, sorted by key.
    pub models: Vec<ModelEntry>,
}

/// One `/workloads` row: a servable scenario's schema, straight from the
/// workload catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadInfo {
    /// Stable scenario name (`/predict`'s `workload` field).
    pub name: String,
    /// Feature-column names, in request-row order.
    pub feature_names: Vec<String>,
    /// Feature count request rows must match.
    pub n_features: usize,
    /// Number of configurations in the scenario's space.
    pub space_size: usize,
}

/// `/workloads` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadsResponse {
    /// Servable scenarios, in catalog registration order.
    pub workloads: Vec<WorkloadInfo>,
}

/// `/tune` request body: ask the autotuner what configuration to run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneHttpRequest {
    /// Workload to tune (a catalog name, e.g. `stencil-grid`).
    pub workload: String,
    /// Search strategy: `exhaustive`, `random`, `local`, `halving`, or
    /// `active` (the in-loop-refitting active learner).
    pub strategy: String,
    /// Oracle-evaluation budget the strategy may spend.
    pub budget: usize,
    /// Model kind guiding the search (e.g. `hybrid`); `None` means
    /// hybrid. Ignored by `active`, which refits its own hybrid in-loop.
    pub kind: Option<String>,
    /// Ranked configurations to return; `None` means 5.
    pub top_k: Option<usize>,
    /// Search seed; `None` means 0 (responses are deterministic per seed).
    pub seed: Option<u64>,
    /// Artifact version of the guiding model; `None` means 1.
    pub version: Option<u32>,
}

/// `/tune` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneHttpResponse {
    /// The guiding model, as `workload/kind/vN` — `None` for `active`,
    /// which refits in-loop instead of consulting the registry.
    pub model: Option<String>,
    /// The tuning result: recommendation, ranked configurations with
    /// predicted (and, where measured, oracle) times, budget accounting,
    /// trajectory, and regret when the full dataset was already memoized.
    pub report: lam_tune::TuneReport,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// Error response body (any non-2xx status).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable diagnostic.
    pub error: String,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads sharing the listener.
    pub workers: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: 8 << 20,
        }
    }
}

/// Full event-driven server configuration: the compatible
/// [`ServerOptions`] core plus the reactor, queueing, and batching knobs
/// the event-driven rewrite added. [`start`] uses the defaults;
/// [`start_with`] takes this.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, handler-thread count, and body cap.
    pub opts: ServerOptions,
    /// Open-connection cap; accepts beyond it are answered 503 + close.
    pub max_connections: usize,
    /// Close a connection with no request in progress after this long.
    pub idle_timeout: Duration,
    /// Close a connection stalled mid-request (slowloris) with a 408
    /// after this long without a byte.
    pub header_timeout: Duration,
    /// In-flight pipelined requests per connection before the reactor
    /// stops reading from it (backpressure, not an error).
    pub pipeline_depth: usize,
    /// Dispatch-queue depth between the reactor and the handler pool;
    /// beyond it requests shed with 503 + `retry-after`.
    pub dispatch_queue: usize,
    /// How long graceful shutdown waits for in-flight requests before
    /// force-closing.
    pub drain_deadline: Duration,
    /// `retry-after` seconds on shed responses.
    pub retry_after_secs: u32,
    /// Cross-connection micro-batching knobs (flush size/deadline, row
    /// budget, executor threads).
    pub batch: SchedulerOptions,
    /// Requests with at least this many rows skip the coalescing
    /// scheduler and predict directly on the handler thread — they are
    /// already a full micro-batch, so queueing them buys nothing.
    pub direct_batch_rows: usize,
}

impl ServeConfig {
    /// Event-driven defaults around the given compatible core options.
    pub fn new(opts: ServerOptions) -> Self {
        Self {
            opts,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(60),
            header_timeout: Duration::from_secs(10),
            pipeline_depth: 32,
            dispatch_queue: 256,
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            batch: SchedulerOptions::default(),
            direct_batch_rows: lam_core::batch::DEFAULT_MICRO_BATCH,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new(ServerOptions::default())
    }
}

/// A running server; dropping the handle leaves it running, call
/// [`ServerHandle::stop`] for a clean shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<ReactorShared>,
    queue: Arc<JobQueue>,
    reactor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    /// `None` for engines whose handler does not micro-batch (the
    /// cluster gateway schedules nothing, it forwards).
    scheduler: Option<Arc<BatchScheduler>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (up to the configured drain deadline), then join every thread.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.shared.wake();
        let _ = self.reactor.join();
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        // Last-reference drop drains and joins the batch executors (the
        // queue and workers holding hints/clones are gone by now).
        drop(self.scheduler);
    }
}

/// The server's birth time on both clocks: monotonic (`started`, drives
/// uptime) and wall (`started_at`, pre-formatted RFC 3339 so `/healthz`
/// never formats a timestamp per request).
#[derive(Clone)]
pub(crate) struct ServerClock {
    pub(crate) started: Instant,
    pub(crate) started_at: Arc<str>,
}

/// Start serving `registry` per `opts` with default event-driven
/// settings. Returns once the listener is bound; serving happens on the
/// reactor + handler threads.
pub fn start(
    registry: Arc<ModelRegistry>,
    opts: ServerOptions,
) -> Result<ServerHandle, ServeError> {
    start_with(registry, ServeConfig::new(opts))
}

/// Start serving `registry` with full control over the event-driven
/// knobs. Returns once the listener is bound.
pub fn start_with(
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
) -> Result<ServerHandle, ServeError> {
    let clock = ServerClock {
        started: Instant::now(),
        started_at: lam_obs::time::rfc3339(std::time::SystemTime::now()).into(),
    };
    let scheduler = Arc::new(BatchScheduler::new(cfg.batch.clone()));
    let ctx = Arc::new(HandlerCtx {
        registry,
        clock,
        scheduler: Arc::clone(&scheduler),
        retry_after_secs: cfg.retry_after_secs,
        direct_batch_rows: cfg.direct_batch_rows.max(1),
    });
    start_engine(
        &cfg,
        Some(scheduler),
        Arc::new(move |job| handle_job(job, &ctx)),
    )
}

/// The reusable event-driven server core: bind, spin up the reactor and
/// a handler pool draining the dispatch queue into `handler`. The
/// model-serving server ([`start_with`]) and the cluster gateway
/// ([`crate::cluster`]) differ only in the handler (and in whether a
/// [`BatchScheduler`] hints the queue).
pub(crate) fn start_engine(
    cfg: &ServeConfig,
    scheduler: Option<Arc<BatchScheduler>>,
    handler: Arc<dyn Fn(Job) + Send + Sync>,
) -> Result<ServerHandle, ServeError> {
    register_build_info();
    lam_obs::history::start_snapshotter(lam_obs::history::DEFAULT_INTERVAL);
    let listener = TcpListener::bind(&cfg.opts.addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let queue = JobQueue::new(cfg.dispatch_queue);
    if let Some(scheduler) = &scheduler {
        queue.set_hint_source(Arc::clone(scheduler));
    }
    let shared = ReactorShared::new()?;
    let reactor = Reactor::new(
        listener,
        ReactorConfig {
            max_body: cfg.opts.max_body,
            max_connections: cfg.max_connections,
            idle_timeout: cfg.idle_timeout,
            header_timeout: cfg.header_timeout,
            pipeline_depth: cfg.pipeline_depth.max(1),
            drain_deadline: cfg.drain_deadline,
            retry_after_secs: cfg.retry_after_secs,
        },
        Arc::clone(&queue),
        Arc::clone(&shared),
        Arc::clone(&stop),
    )?;
    let reactor = std::thread::spawn(move || reactor.run());
    let workers = (0..cfg.opts.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    handler(job);
                }
            })
        })
        .collect();
    Ok(ServerHandle {
        local_addr,
        stop,
        shared,
        queue,
        reactor,
        workers,
        scheduler,
    })
}

/// Crate version baked into `/healthz` and `lam_build_info`.
pub(crate) const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Build profile baked into `/healthz` and `lam_build_info`.
pub(crate) const BUILD_PROFILE: &str = if cfg!(debug_assertions) {
    "debug"
} else {
    "release"
};

/// Register `lam_build_info{version,profile} 1` — a constant-1 gauge
/// whose labels carry the build facts, so any scrape can join "which
/// build produced these numbers" onto every other series.
pub(crate) fn register_build_info() {
    lam_obs::global()
        .gauge(
            "lam_build_info",
            "Build metadata; the value is always 1, the facts are the labels.",
            &[("version", BUILD_VERSION), ("profile", BUILD_PROFILE)],
        )
        .set(1);
}

/// Everything a handler thread needs to serve one request.
struct HandlerCtx {
    registry: Arc<ModelRegistry>,
    clock: ServerClock,
    scheduler: Arc<BatchScheduler>,
    retry_after_secs: u32,
    direct_batch_rows: usize,
}

/// Serve one dispatched request on a handler thread. Most endpoints
/// compute synchronously and answer through the responder; small
/// `/predict` requests go asynchronous through the batch scheduler, and
/// their accounting + response happen in the completion.
fn handle_job(job: Job, ctx: &HandlerCtx) {
    let Job {
        req,
        responder,
        hint,
    } = job;
    let metrics = http_metrics();
    let in_flight = metrics.in_flight.track();
    let started = lam_obs::enabled().then(Instant::now);
    let endpoint = endpoint_index(&req.method, &req.path);
    if req.method == "POST" && req.path == "/predict" {
        handle_predict(req, responder, ctx, hint, started, endpoint);
        drop(in_flight);
        return;
    }
    // No rows will be submitted from this request: release the
    // scheduler's producer hint before potentially slow work (/tune) so
    // co-batchable traffic is not held waiting on it.
    drop(hint);
    if req.method == "GET" && parse_artifact_path(&req.path).is_some() {
        // The artifact body is binary, so it bypasses the String-bodied
        // route() and answers through the byte responder.
        let (status, content_type, body) = artifact(&req.path, &ctx.registry);
        account_request(endpoint, status, started);
        responder.send_bytes(status, content_type, body, None);
        drop(in_flight);
        return;
    }
    let (status, content_type, body) = route(&req, &ctx.registry, &ctx.clock);
    metrics.requests[endpoint][status_class_index(status)].inc();
    if let Some(started) = started {
        metrics.duration[endpoint].record(started.elapsed().as_nanos() as u64);
    }
    responder.send(status, content_type, body, None);
    drop(in_flight);
}

/// Close out one request's accounting: status-class counter + duration.
pub(crate) fn account_request(endpoint: usize, status: u16, started: Option<Instant>) {
    let metrics = http_metrics();
    metrics.requests[endpoint][status_class_index(status)].inc();
    if let Some(started) = started {
        metrics.duration[endpoint].record(started.elapsed().as_nanos() as u64);
    }
}

/// Child-derivation sequence numbers under a `serve.request` span. Kept
/// distinct across modules so sibling spans never collide:
/// [`crate::registry`] uses `CHILD_RESOLVE` for its `registry.resolve`
/// span via the thread-local context.
const CHILD_QUEUE: u64 = 1;
const CHILD_PREDICT: u64 = 2;
pub(crate) const CHILD_RESOLVE: u64 = 3;

/// One `/predict` request's tracing state: the `serve.request` span in
/// progress. `None` when observability is disabled — the hot-path cost
/// is then exactly the one relaxed load in [`lam_obs::enabled`].
#[derive(Clone, Copy)]
struct RequestTrace {
    ctx: TraceContext,
    parent_id: u64,
    started: Instant,
}

impl RequestTrace {
    /// Begin the `serve.request` span: continue the caller's
    /// `x-lam-trace` context as a child span (the gateway's scatter leg
    /// becomes the parent), or mint a fresh root when the request
    /// arrived untraced.
    fn begin(req: &ParsedRequest, started: Instant) -> Option<Self> {
        if !lam_obs::enabled() {
            return None;
        }
        let (ctx, parent_id) = match req.trace.as_deref().and_then(TraceContext::parse) {
            Some(parent) => (parent.child(0), parent.span_id),
            None => (TraceContext::root(), 0),
        };
        Some(Self {
            ctx,
            parent_id,
            started,
        })
    }

    /// Close the `serve.request` span with its HTTP outcome.
    fn finish(self, status_code: u16, rows: usize) {
        let status = match status_code {
            503 => SpanStatus::Shed,
            s if s >= 400 => SpanStatus::Error,
            _ => SpanStatus::Ok,
        };
        lam_obs::recorder::global().record(
            SpanRecord::finish(
                &self.ctx,
                self.parent_id,
                "serve.request",
                self.started,
                status,
            )
            .annotate("rows", rows.to_string())
            .annotate("http_status", status_code.to_string()),
        );
    }

    /// Record one completed child span under `serve.request`.
    fn record_child(&self, seq: u64, name: &'static str, started: Instant, rows: usize) {
        lam_obs::recorder::global().record(
            SpanRecord::finish(
                &self.ctx.child(seq),
                self.ctx.span_id,
                name,
                started,
                SpanStatus::Ok,
            )
            .annotate("rows", rows.to_string()),
        );
    }
}

/// The `/predict` path of the event-driven server. Parse, validate, and
/// resolve run here on the handler thread (errors answer immediately);
/// small-row requests then submit to the cross-connection
/// [`BatchScheduler`] and finish in its completion, while
/// already-batch-sized requests predict directly — coalescing them buys
/// nothing.
fn handle_predict(
    req: ParsedRequest,
    responder: Responder,
    ctx: &HandlerCtx,
    hint: Option<lam_core::batch::ProducerGuard>,
    started: Option<Instant>,
    endpoint: usize,
) {
    let start = Instant::now();
    let trace = RequestTrace::begin(&req, start);
    let mut span = predict_phases().start();
    // Deep call sites (registry resolution) pick the context up from the
    // thread-local instead of threading it through every signature.
    let trace_scope = trace.map(|t| lam_obs::trace::set_scoped(t.ctx));
    let plan = match plan_predict(&req.body, &ctx.registry, &mut span) {
        Ok(plan) => plan,
        Err((status, error)) => {
            drop(hint);
            if let Some(t) = trace {
                t.finish(status, 0);
            }
            account_request(endpoint, status, started);
            responder.send(status, JSON_CONTENT_TYPE, error_body(&error), None);
            return;
        }
    };
    drop(trace_scope);
    let rows = plan.rows.len();
    if rows >= ctx.direct_batch_rows {
        // Already batch-sized: coalescing with other requests buys
        // nothing, so predict directly and keep the scheduler queue for
        // the small requests that need it.
        drop(hint);
        let predict_started = Instant::now();
        let outcome = match plan.model.predict_checked(&plan.rows) {
            Ok(outcome) => outcome,
            Err(e) => {
                if let Some(t) = trace {
                    t.finish(400, rows);
                }
                account_request(endpoint, 400, started);
                responder.send(400, JSON_CONTENT_TYPE, error_body(&e.to_string()), None);
                return;
            }
        };
        if let Some(t) = &trace {
            t.record_child(CHILD_PREDICT, "serve.predict", predict_started, rows);
        }
        span.mark("predict");
        let body = serde_json::to_string(&PredictResponse {
            model: plan.key.to_string(),
            predictions: outcome.predictions,
            cache_hits: outcome.cache_hits,
            micros: start.elapsed().as_micros() as u64,
        });
        span.mark("serialize");
        match body {
            Ok(body) => {
                if let Some(t) = trace {
                    t.finish(200, rows);
                }
                account_request(endpoint, 200, started);
                responder.send(200, JSON_CONTENT_TYPE, body, None);
            }
            Err(e) => {
                if let Some(t) = trace {
                    t.finish(500, rows);
                }
                account_request(endpoint, 500, started);
                responder.send(500, JSON_CONTENT_TYPE, error_body(&e.to_string()), None);
            }
        }
        return;
    }
    let permit = match ctx.scheduler.try_reserve(rows) {
        Ok(permit) => permit,
        Err(e) => {
            drop(hint);
            if let Some(t) = trace {
                t.finish(503, rows);
            }
            account_request(endpoint, 503, started);
            responder.send(
                503,
                JSON_CONTENT_TYPE,
                error_body(&format!("server overloaded: {e}")),
                Some(ctx.retry_after_secs),
            );
            return;
        }
    };
    let key = plan.key.to_string();
    let target: Arc<dyn BatchTarget> = plan.model;
    let queued_at = Instant::now();
    permit.submit(
        target,
        plan.rows,
        Box::new(move |outcome| {
            if let Some(t) = &trace {
                // Submit → completion: queue wait plus the shared batch
                // execution, the cost of coalescing this request.
                t.record_child(CHILD_QUEUE, "serve.queue", queued_at, rows);
            }
            span.mark("predict");
            let body = serde_json::to_string(&PredictResponse {
                model: key,
                predictions: outcome.predictions,
                cache_hits: outcome.cache_hits,
                micros: start.elapsed().as_micros() as u64,
            });
            span.mark("serialize");
            match body {
                Ok(body) => {
                    if let Some(t) = trace {
                        t.finish(200, rows);
                    }
                    account_request(endpoint, 200, started);
                    responder.send(200, JSON_CONTENT_TYPE, body, None);
                }
                Err(e) => {
                    if let Some(t) = trace {
                        t.finish(500, rows);
                    }
                    account_request(endpoint, 500, started);
                    responder.send(500, JSON_CONTENT_TYPE, error_body(&e.to_string()), None);
                }
            }
        }),
    );
    // The submission is queued: only now may the producer hint drop
    // (releasing it earlier could flush a batch this request would have
    // joined).
    drop(hint);
}

/// Endpoint labels for request metrics — a fixed classification, because
/// the raw path is client-controlled and would be unbounded cardinality.
/// `malformed` is the endpoint of a request whose bytes never parsed into
/// a request at all; `other` is any routed-but-unknown method/path.
const ENDPOINTS: [&str; 14] = [
    "healthz",
    "models",
    "model-artifact",
    "workloads",
    "workload-detail",
    "predict",
    "tune",
    "metrics",
    "metrics-json",
    "metrics-history",
    "traces",
    "traces-detail",
    "malformed",
    "other",
];

/// Status-class labels, indexed by [`status_class_index`].
const STATUS_CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

/// Pre-resolved handles for per-request accounting: one counter per
/// `(endpoint, status class)`, one latency histogram per endpoint, one
/// in-flight gauge. Interned once; the per-request cost is a relaxed
/// `fetch_add` or three, never a registry lock.
pub(crate) struct HttpMetrics {
    pub(crate) requests: Vec<[Arc<Counter>; 3]>,
    pub(crate) duration: Vec<Arc<Histogram>>,
    pub(crate) in_flight: Arc<Gauge>,
}

pub(crate) fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = lam_obs::global();
        HttpMetrics {
            requests: ENDPOINTS
                .iter()
                .map(|&endpoint| {
                    std::array::from_fn(|class| {
                        reg.counter(
                            "lam_requests_total",
                            "HTTP requests served, by endpoint and status class.",
                            &[("endpoint", endpoint), ("status", STATUS_CLASSES[class])],
                        )
                    })
                })
                .collect(),
            duration: ENDPOINTS
                .iter()
                .map(|&endpoint| {
                    reg.histogram(
                        "lam_request_duration_ns",
                        "Server-side request handling time, nanoseconds.",
                        &[("endpoint", endpoint)],
                    )
                })
                .collect(),
            in_flight: reg.gauge(
                "lam_requests_in_flight",
                "Requests currently being handled.",
                &[],
            ),
        }
    })
}

/// Index into [`ENDPOINTS`] for a parsed request. The query string never
/// selects the endpoint (`/metrics?prefix=x` is still `metrics`), so
/// classification strips it up front.
pub(crate) fn endpoint_index(method: &str, path: &str) -> usize {
    let bare = path.split_once('?').map_or(path, |(p, _)| p);
    let name = match (method, bare) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/models") => "models",
        ("GET", p) if parse_artifact_path(p).is_some() => "model-artifact",
        ("GET", "/workloads") => "workloads",
        ("GET", p) if p.starts_with("/workloads/") => "workload-detail",
        (_, "/predict") => "predict",
        (_, "/tune") => "tune",
        ("GET", "/metrics") => "metrics",
        ("GET", "/metrics.json") => "metrics-json",
        ("GET", "/metrics/history") => "metrics-history",
        ("GET", "/traces") => "traces",
        ("GET", p) if p.starts_with("/traces/") => "traces-detail",
        _ => "other",
    };
    ENDPOINTS
        .iter()
        .position(|&e| e == name)
        .expect("every classification name is in ENDPOINTS")
}

/// Index into [`STATUS_CLASSES`]. The server never emits 1xx/3xx, so
/// everything below 400 is success and everything from 500 up is 5xx.
pub(crate) fn status_class_index(status: u16) -> usize {
    match status {
        0..=399 => 0,
        400..=499 => 1,
        _ => 2,
    }
}

/// `content-type` of every JSON response.
pub(crate) const JSON_CONTENT_TYPE: &str = "application/json";

/// Serialize an [`ErrorResponse`] body for `msg`.
pub(crate) fn error_body(msg: &str) -> String {
    serde_json::to_string(&ErrorResponse {
        error: msg.to_string(),
    })
    .unwrap_or_else(|_| "{}".to_string())
}

/// Account a request whose bytes never parsed into a request (or that
/// timed out mid-headers): a response is still served, so it must land
/// in the same status-class accounting as routed requests — otherwise a
/// garbage request is indistinguishable from no request.
pub(crate) fn account_malformed(status: u16) {
    let malformed = ENDPOINTS
        .iter()
        .position(|&e| e == "malformed")
        .expect("malformed is in ENDPOINTS");
    http_metrics().requests[malformed][status_class_index(status)].inc();
}

/// Account a parsed-but-shed request (dispatch queue full or connection
/// limit hit before a handler ever saw it). The 503 lands under the
/// request's real endpoint so shed load is attributable per route; no
/// duration is recorded because no handling happened.
pub(crate) fn account_shed(req: &ParsedRequest) {
    let endpoint = endpoint_index(&req.method, &req.path);
    http_metrics().requests[endpoint][status_class_index(503)].inc();
    // A shed is exactly what the flight recorder's tail sampling always
    // keeps, so the refusal leaves a span even though no handler ran.
    if let Some(t) = RequestTrace::begin(req, Instant::now()) {
        t.finish(503, 0);
    }
}

/// Dispatch a request to its endpoint; returns
/// `(status, content-type, body)`. Shared by the event-driven handler
/// pool and the reference blocking server.
pub(crate) fn route(
    req: &ParsedRequest,
    registry: &Arc<ModelRegistry>,
    clock: &ServerClock,
) -> (u16, &'static str, String) {
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    // The observability endpoints render their formats directly (the
    // Prometheus one is not JSON), so they bypass the JSON route plumbing.
    match (req.method.as_str(), path) {
        ("GET", "/metrics") => {
            let snap = lam_obs::global()
                .snapshot()
                .retain_prefix(query_param(query, "prefix"));
            return (
                200,
                PROMETHEUS_CONTENT_TYPE,
                lam_obs::expose::render_prometheus(&snap),
            );
        }
        ("GET", "/metrics.json") => {
            let snap = lam_obs::global()
                .snapshot()
                .retain_prefix(query_param(query, "prefix"));
            return (200, JSON_CONTENT_TYPE, lam_obs::expose::render_json(&snap));
        }
        ("GET", "/metrics/history") => {
            return (
                200,
                JSON_CONTENT_TYPE,
                lam_obs::history::global().render_json(),
            );
        }
        ("GET", "/traces") => {
            let records = lam_obs::recorder::global().iter_records();
            return (
                200,
                JSON_CONTENT_TYPE,
                lam_obs::recorder::render_recent_json(&records, RECENT_TRACES_LIMIT),
            );
        }
        ("GET", p) if p.starts_with("/traces/") => {
            return trace_detail(&p["/traces/".len()..]);
        }
        _ => {}
    }
    let result = match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz(registry, clock),
        ("GET", "/models") => models(registry),
        ("GET", "/workloads") => workloads(),
        ("GET", path) if path.starts_with("/workloads/") => {
            workload_detail(&path["/workloads/".len()..])
        }
        ("POST", "/predict") => predict(req, registry),
        ("POST", "/tune") => tune(req, registry),
        ("GET", "/predict") => Err((405, "use POST for /predict".to_string())),
        ("GET", "/tune") => Err((405, "use POST for /tune".to_string())),
        _ => Err((404, format!("no route for {} {}", req.method, req.path))),
    };
    match result {
        Ok(body) => (200, JSON_CONTENT_TYPE, body),
        Err((status, error)) => (
            status,
            JSON_CONTENT_TYPE,
            serde_json::to_string(&ErrorResponse { error }).unwrap_or_else(|_| "{}".to_string()),
        ),
    }
}

/// Most traces a `/traces` summary listing returns.
pub(crate) const RECENT_TRACES_LIMIT: usize = 50;

/// The raw value of `name` in an HTTP query string (`a=1&b=2`); empty
/// when absent. No percent-decoding — the consumers are the metric-name
/// prefix filter and similar identifier-shaped values.
pub(crate) fn query_param<'a>(query: &'a str, name: &str) -> &'a str {
    query
        .split('&')
        .find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
        .unwrap_or("")
}

/// Serve `GET /traces/{id}`: every span of one trace this process
/// retained, ordered by start time. (The cluster gateway wraps this with
/// a cross-process merge; see [`crate::cluster`].)
fn trace_detail(segment: &str) -> (u16, &'static str, String) {
    let Some(trace_id) = lam_obs::trace::parse_trace_id(segment) else {
        return (
            400,
            JSON_CONTENT_TYPE,
            error_body("trace id must be 32 hex digits"),
        );
    };
    let spans = lam_obs::recorder::global().find_trace(trace_id);
    if spans.is_empty() {
        return (
            404,
            JSON_CONTENT_TYPE,
            error_body(&format!("no retained spans for trace {segment}")),
        );
    }
    let json: Vec<String> = spans.iter().map(|s| s.to_json()).collect();
    (
        200,
        JSON_CONTENT_TYPE,
        lam_obs::recorder::render_trace_json(trace_id, &json),
    )
}

type RouteResult = Result<String, (u16, String)>;

fn json_ok<T: serde::Serialize>(value: &T) -> RouteResult {
    serde_json::to_string(value).map_err(|e| (500, e.to_string()))
}

fn healthz(registry: &Arc<ModelRegistry>, clock: &ServerClock) -> RouteResult {
    crate::workload::ensure_builtin_workloads();
    let uptime = clock.started.elapsed();
    let obs = lam_obs::global();
    let hits = obs.counter_total("lam_cache_hits_total");
    let lookups = hits + obs.counter_total("lam_cache_misses_total");
    json_ok(&HealthResponse {
        status: "ok".to_string(),
        version: BUILD_VERSION.to_string(),
        profile: BUILD_PROFILE.to_string(),
        started_at: clock.started_at.to_string(),
        uptime_ms: uptime.as_millis() as u64,
        uptime_s: uptime.as_secs_f64(),
        models_loaded: registry.loaded_count(),
        workloads: lam_core::catalog::WorkloadCatalog::global().len(),
        requests_total: obs.counter_total("lam_requests_total"),
        cache_hit_ratio: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    })
}

fn models(registry: &Arc<ModelRegistry>) -> RouteResult {
    let catalog = registry.catalog().map_err(|e| (500, e.to_string()))?;
    json_ok(&ModelsResponse {
        models: catalog
            .into_iter()
            .map(|e| ModelEntry {
                workload: e.key.workload.to_string(),
                kind: e.key.kind.to_string(),
                version: e.key.version,
                loaded: e.loaded,
                path: e.path.display().to_string(),
            })
            .collect(),
    })
}

fn workload_info(entry: &lam_core::catalog::WorkloadEntry) -> WorkloadInfo {
    WorkloadInfo {
        name: entry.name().to_string(),
        feature_names: entry.workload().feature_names(),
        n_features: entry.n_features(),
        space_size: entry.workload().space_size(),
    }
}

fn workloads() -> RouteResult {
    // One locked read of the catalog for the whole listing.
    crate::workload::ensure_builtin_workloads();
    json_ok(&WorkloadsResponse {
        workloads: lam_core::catalog::WorkloadCatalog::global()
            .entries()
            .iter()
            .map(|entry| workload_info(entry))
            .collect(),
    })
}

fn workload_detail(name: &str) -> RouteResult {
    let id = WorkloadId::get(name).map_err(|e| (404, e.to_string()))?;
    json_ok(&workload_info(&id.entry()))
}

/// `content-type` of binary model artifacts.
pub(crate) const LAMB_CONTENT_TYPE: &str = "application/octet-stream";

/// Split `/models/{workload}/{kind}/artifact[?version=N]` into its raw
/// parts; `None` when the path is not artifact-shaped (it then falls
/// through to normal routing and 404s there).
pub(crate) fn parse_artifact_path(path: &str) -> Option<(&str, &str, Option<&str>)> {
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (path, None),
    };
    let rest = path.strip_prefix("/models/")?;
    let rest = rest.strip_suffix("/artifact")?;
    let (workload, kind) = rest.split_once('/')?;
    if workload.is_empty() || kind.is_empty() || kind.contains('/') {
        return None;
    }
    let version = match query {
        Some(q) => Some(q.strip_prefix("version=")?),
        None => None,
    };
    Some((workload, kind, version))
}

/// Serve `GET /models/{workload}/{kind}/artifact`: the binary `.lamb`
/// bytes of an artifact this backend already has — and *only* already
/// has. The endpoint never trains; peers replicating a missing model
/// must not be able to stampede this process into training on their
/// behalf (the requester trains exactly once if every peer 404s).
fn artifact(path: &str, registry: &Arc<ModelRegistry>) -> (u16, &'static str, Vec<u8>) {
    match artifact_inner(path, registry) {
        Ok(bytes) => (200, LAMB_CONTENT_TYPE, bytes),
        Err((status, msg)) => (status, JSON_CONTENT_TYPE, error_body(&msg).into_bytes()),
    }
}

fn artifact_inner(path: &str, registry: &Arc<ModelRegistry>) -> Result<Vec<u8>, (u16, String)> {
    let (workload, kind, version) =
        parse_artifact_path(path).ok_or_else(|| (404, format!("no route for GET {path}")))?;
    let workload: WorkloadId = workload
        .parse()
        .map_err(|e: ServeError| (404, e.to_string()))?;
    let kind: ModelKind = kind.parse().map_err(|e: ServeError| (404, e.to_string()))?;
    let version: u32 = match version {
        Some(v) => v
            .parse()
            .map_err(|_| (400, format!("unparseable version `{v}`")))?,
        None => 1,
    };
    if !(1..=MAX_SERVED_VERSION).contains(&version) {
        return Err((
            400,
            format!("version {version} outside 1..={MAX_SERVED_VERSION}"),
        ));
    }
    let key = ModelKey::new(workload, kind, version);
    match registry.artifact_bytes(key) {
        Ok(Some(bytes)) => Ok(bytes),
        Ok(None) => Err((404, format!("no artifact for {key} on this backend"))),
        Err(e) => Err((500, e.to_string())),
    }
}

/// Highest artifact version `/predict` resolves. Resolution can train on
/// miss (that is the registry's contract), so the remotely reachable key
/// space must be finite: workloads × kinds × versions, not an arbitrary
/// `u32` a client can sweep to force unbounded training, disk artifacts,
/// and memo growth.
pub const MAX_SERVED_VERSION: u32 = 32;

/// Phase histograms decomposing `/predict` handling; a [`SpanTimer`]
/// from this set walks each request through parse → validate → resolve →
/// predict → serialize, so `/metrics` answers *where* predict latency
/// goes, not just how much there is.
fn predict_phases() -> &'static PhaseSet {
    static PHASES: OnceLock<PhaseSet> = OnceLock::new();
    PHASES.get_or_init(|| {
        PhaseSet::register(
            lam_obs::global(),
            "lam_phase_duration_ns",
            "Time spent in each handling phase, nanoseconds.",
            &[("endpoint", "predict")],
            &["parse", "validate", "resolve", "predict", "serialize"],
        )
    })
}

/// A validated, resolved `/predict` request, ready to execute: either
/// inline (reference server, large batches) or via the cross-connection
/// batch scheduler.
struct PredictPlan {
    key: ModelKey,
    model: Arc<LoadedModel>,
    rows: Vec<Vec<f64>>,
}

/// The parse → validate → resolve front half of `/predict`, shared by the
/// synchronous [`predict`] route and the scheduler-backed
/// [`handle_predict`]. Marks the phases it completes on `span`.
fn plan_predict(
    body: &[u8],
    registry: &Arc<ModelRegistry>,
    span: &mut SpanTimer<'static>,
) -> Result<PredictPlan, (u16, String)> {
    let body = std::str::from_utf8(body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let parsed: PredictRequest = serde_json::from_str(body).map_err(|e| (400, e.to_string()))?;
    span.mark("parse");
    let workload: WorkloadId = parsed.workload.parse().map_err(bad_request)?;
    let kind = parsed.kind.parse().map_err(bad_request)?;
    let version = parsed.version.unwrap_or(1);
    if !(1..=MAX_SERVED_VERSION).contains(&version) {
        return Err((
            400,
            format!("version {version} outside 1..={MAX_SERVED_VERSION}"),
        ));
    }
    // Reject wrong-arity and non-finite rows before any model dispatch:
    // a bad request must not trigger train-on-miss, and a NaN/infinity
    // must never reach the cache or a k-NN distance sort (which would
    // panic the handler thread).
    crate::batch::validate_rows(workload.n_features(), &parsed.rows).map_err(bad_request)?;
    span.mark("validate");
    let key = ModelKey::new(workload, kind, version);
    let model = registry.get(key).map_err(|e| (500, e.to_string()))?;
    span.mark("resolve");
    Ok(PredictPlan {
        key,
        model,
        rows: parsed.rows,
    })
}

fn predict(req: &ParsedRequest, registry: &Arc<ModelRegistry>) -> RouteResult {
    let start = Instant::now();
    let mut span = predict_phases().start();
    let plan = plan_predict(&req.body, registry, &mut span)?;
    let outcome = plan
        .model
        .predict_checked(&plan.rows)
        .map_err(bad_request)?;
    span.mark("predict");
    let response = json_ok(&PredictResponse {
        model: plan.key.to_string(),
        predictions: outcome.predictions,
        cache_hits: outcome.cache_hits,
        micros: start.elapsed().as_micros() as u64,
    });
    span.mark("serialize");
    response
}

fn bad_request(e: ServeError) -> (u16, String) {
    (400, e.to_string())
}

/// Largest `/tune` budget a client may request. Oracle evaluations run
/// server-side, so the remotely reachable work per request must be
/// finite — the built-in spaces top out near 2k configurations anyway.
pub const MAX_TUNE_BUDGET: usize = 4096;

/// Largest `/tune` `top_k` (bounds the response body).
pub const MAX_TUNE_TOP_K: usize = 100;

fn tune(req: &ParsedRequest, registry: &Arc<ModelRegistry>) -> RouteResult {
    let start = Instant::now();
    let body =
        std::str::from_utf8(&req.body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let parsed: TuneHttpRequest = serde_json::from_str(body).map_err(|e| (400, e.to_string()))?;
    let workload: WorkloadId = parsed.workload.parse().map_err(bad_request)?;
    if !(1..=MAX_TUNE_BUDGET).contains(&parsed.budget) {
        return Err((
            400,
            format!("budget {} outside 1..={MAX_TUNE_BUDGET}", parsed.budget),
        ));
    }
    let top_k = parsed.top_k.unwrap_or(5);
    if !(1..=MAX_TUNE_TOP_K).contains(&top_k) {
        return Err((400, format!("top_k {top_k} outside 1..={MAX_TUNE_TOP_K}")));
    }
    let kind = parsed
        .kind
        .as_deref()
        .unwrap_or("hybrid")
        .parse()
        .map_err(bad_request)?;
    let version = parsed.version.unwrap_or(1);
    if !(1..=MAX_SERVED_VERSION).contains(&version) {
        return Err((
            400,
            format!("version {version} outside 1..={MAX_SERVED_VERSION}"),
        ));
    }

    // Dispatch + regret attachment are shared with the `tune` CLI.
    let spec = crate::tuning::TuneSpec {
        workload,
        strategy: parsed.strategy,
        kind,
        version,
        budget: parsed.budget,
        top_k,
        seed: parsed.seed.unwrap_or(0),
    };
    let (model_name, report) = crate::tuning::run_tune(registry, &spec).map_err(|e| match e {
        ServeError::UnknownStrategy(_)
        | ServeError::UnknownWorkload(_)
        | ServeError::UnknownKind(_) => (400, e.to_string()),
        ServeError::Tune(
            te @ (lam_tune::TuneError::EmptySpace(_) | lam_tune::TuneError::InvalidRequest(_)),
        ) => (400, te.to_string()),
        other => (500, other.to_string()),
    })?;
    json_ok(&TuneHttpResponse {
        model: model_name,
        report,
        micros: start.elapsed().as_micros() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification_is_fixed_cardinality() {
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/healthz")], "healthz");
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/workloads/fmm-small")],
            "workload-detail"
        );
        assert_eq!(ENDPOINTS[endpoint_index("POST", "/predict")], "predict");
        // GET /predict is a 405, still accounted under the endpoint.
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/predict")], "predict");
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/metrics")], "metrics");
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/metrics.json")],
            "metrics-json"
        );
        // Arbitrary client paths collapse to one label value.
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/../../etc")], "other");
        assert_eq!(ENDPOINTS[endpoint_index("DELETE", "/models")], "other");
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/models/fmm-small/cart/artifact")],
            "model-artifact"
        );
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/models/fmm-small/cart/artifact?version=2")],
            "model-artifact"
        );
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/models/fmm-small")],
            "other"
        );
        // Query strings never mint new label values.
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/metrics?prefix=lam_gateway")],
            "metrics"
        );
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/metrics.json?prefix=lam_")],
            "metrics-json"
        );
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/metrics/history")],
            "metrics-history"
        );
        assert_eq!(ENDPOINTS[endpoint_index("GET", "/traces")], "traces");
        assert_eq!(
            ENDPOINTS[endpoint_index("GET", "/traces/00ab")],
            "traces-detail"
        );
    }

    #[test]
    fn query_params_parse_positionally_and_default_empty() {
        assert_eq!(query_param("prefix=lam_", "prefix"), "lam_");
        assert_eq!(query_param("a=1&prefix=lam_x&b=2", "prefix"), "lam_x");
        assert_eq!(query_param("", "prefix"), "");
        assert_eq!(query_param("prefix", "prefix"), "");
        assert_eq!(query_param("other=1", "prefix"), "");
    }

    #[test]
    fn artifact_paths_parse_and_reject() {
        assert_eq!(
            parse_artifact_path("/models/fmm-small/cart/artifact"),
            Some(("fmm-small", "cart", None))
        );
        assert_eq!(
            parse_artifact_path("/models/fmm-small/hybrid/artifact?version=3"),
            Some(("fmm-small", "hybrid", Some("3")))
        );
        assert_eq!(parse_artifact_path("/models/fmm-small/artifact"), None);
        assert_eq!(parse_artifact_path("/models//cart/artifact"), None);
        assert_eq!(parse_artifact_path("/models/a/b/c/artifact"), None);
        assert_eq!(parse_artifact_path("/models/a/b/artifact?v=1"), None);
        assert_eq!(parse_artifact_path("/models"), None);
    }

    #[test]
    fn status_classes_cover_every_emitted_status() {
        assert_eq!(STATUS_CLASSES[status_class_index(200)], "2xx");
        assert_eq!(STATUS_CLASSES[status_class_index(400)], "4xx");
        assert_eq!(STATUS_CLASSES[status_class_index(404)], "4xx");
        assert_eq!(STATUS_CLASSES[status_class_index(405)], "4xx");
        assert_eq!(STATUS_CLASSES[status_class_index(500)], "5xx");
    }

    #[test]
    fn predict_request_tolerates_missing_version() {
        let req: PredictRequest = serde_json::from_str(
            r#"{"workload":"fmm-small","kind":"cart","rows":[[1.0,2.0,3.0,4.0]]}"#,
        )
        .unwrap();
        assert_eq!(req.version, None);
        assert_eq!(req.rows.len(), 1);
    }

    #[test]
    fn predict_request_rejects_missing_rows() {
        let err = serde_json::from_str::<PredictRequest>(r#"{"workload":"fmm","kind":"cart"}"#);
        assert!(err.is_err());
    }

    #[test]
    fn response_bodies_round_trip() {
        let resp = PredictResponse {
            model: "fmm/cart/v1".to_string(),
            predictions: vec![1.5, 2.5],
            cache_hits: 1,
            micros: 42,
        };
        let back: PredictResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back.predictions, resp.predictions);
        assert_eq!(back.cache_hits, 1);
    }
}
