//! Property-based tests for the dataset substrate.

use lam_data::dataset::Dataset;
use lam_data::io::{from_csv_string, to_csv_string};
use lam_data::space::{block_ladder, ParamRange, ParamSpace};
use lam_data::stats::{percentile_sorted, Summary};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..40, 1usize..4).prop_flat_map(|(rows, cols)| {
        (
            proptest::collection::vec(-1e6f64..1e6, rows * cols),
            proptest::collection::vec(-1e6f64..1e6, rows),
            Just(cols),
        )
            .prop_map(|(features, response, cols)| {
                let names = (0..cols).map(|c| format!("f{c}")).collect();
                Dataset::new(names, features, response).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV round-trips exactly (Rust float Display is shortest-exact).
    #[test]
    fn csv_round_trip(d in dataset_strategy()) {
        let back = from_csv_string(&to_csv_string(&d)).unwrap();
        prop_assert_eq!(back, d);
    }

    /// JSON round-trips exactly.
    #[test]
    fn json_round_trip(d in dataset_strategy()) {
        let s = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back, d);
    }

    /// Selection preserves rows and order.
    #[test]
    fn select_preserves(d in dataset_strategy(), seed in 0usize..100) {
        let idx: Vec<usize> = (0..d.len()).filter(|i| (i + seed) % 3 != 0).collect();
        prop_assume!(!idx.is_empty());
        let s = d.select(&idx).unwrap();
        prop_assert_eq!(s.len(), idx.len());
        for (pos, &orig) in idx.iter().enumerate() {
            prop_assert_eq!(s.row(pos), d.row(orig));
            prop_assert_eq!(s.response()[pos], d.response()[orig]);
        }
    }

    /// Partition is a disjoint cover.
    #[test]
    fn partition_covers(d in dataset_strategy(), stride in 2usize..5) {
        let idx: Vec<usize> = (0..d.len()).step_by(stride).collect();
        let (sel, rest) = d.partition(&idx).unwrap();
        prop_assert_eq!(sel.len() + rest.len(), d.len());
    }

    /// with_column leaves existing columns untouched.
    #[test]
    fn with_column_preserves(d in dataset_strategy()) {
        let extra: Vec<f64> = (0..d.len()).map(|i| i as f64).collect();
        let aug = d.with_column("extra", &extra).unwrap();
        prop_assert_eq!(aug.n_features(), d.n_features() + 1);
        for i in 0..d.len() {
            prop_assert_eq!(&aug.row(i)[..d.n_features()], d.row(i));
            prop_assert_eq!(aug.row(i)[d.n_features()], i as f64);
        }
    }

    /// Range values are sorted, within bounds, and match the length
    /// formula.
    #[test]
    fn range_invariants(start in 0u64..1000, len in 0u64..50, step in 1u64..40) {
        let end = start + len * step;
        let r = ParamRange::new(start, end, step);
        let vals = r.values();
        prop_assert_eq!(vals.len(), r.len());
        prop_assert_eq!(vals[0], start);
        prop_assert!(*vals.last().unwrap() <= end);
        prop_assert!(vals.windows(2).all(|w| w[1] == w[0] + step));
    }

    /// The cartesian product has the product cardinality and every point
    /// respects its per-dimension range.
    #[test]
    fn space_cardinality(a_len in 1u64..6, b_len in 1u64..6) {
        let s = ParamSpace::new()
            .dim("a", ParamRange::new(0, a_len - 1, 1))
            .dim("b", ParamRange::new(10, 10 + (b_len - 1) * 5, 5));
        let pts = s.points();
        prop_assert_eq!(pts.len(), (a_len * b_len) as usize);
        prop_assert_eq!(pts.len(), s.len());
        for p in &pts {
            prop_assert!(p[0] < a_len);
            prop_assert!(p[1] >= 10 && (p[1] - 10) % 5 == 0);
        }
    }

    /// Block ladders are sorted, start at 1, end at the limit, dedup'd.
    #[test]
    fn ladder_invariants(limit in 1u64..5000) {
        let l = block_ladder(limit);
        prop_assert_eq!(l[0], 1);
        prop_assert_eq!(*l.last().unwrap(), limit);
        prop_assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    /// Summary quartiles are ordered and bounded by min/max.
    #[test]
    fn summary_ordering(values in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentile_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..50), p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let mut sorted = values;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(percentile_sorted(&sorted, lo) <= percentile_sorted(&sorted, hi) + 1e-9);
    }
}
