//! Summary statistics used across the workspace (experiment reporting,
//! tree split quality, noise calibration).

use serde::{Deserialize, Serialize};

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary; returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
        Some(Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            q1: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.5),
            q3: percentile_sorted(&sorted, 0.75),
            max: sorted[n - 1],
        })
    }
}

/// Linear-interpolated percentile of an already sorted slice, `p` in `[0,1]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Linear-interpolated percentile of an already sorted `u64` slice, `p`
/// in `[0, 1]` — the integer-native twin of [`percentile_sorted`], so
/// latency reports (microsecond samples) never materialize an `f64` copy
/// of the sample just to query a percentile. Only the two bracketing
/// ranks are converted.
pub fn percentile_sorted_u64(sorted: &[u64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0] as f64;
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo] as f64
    } else {
        let w = rank - lo as f64;
        sorted[lo] as f64 * (1.0 - w) + sorted[hi] as f64 * w
    }
}

/// Mean of a slice (0 for empty, which is convenient for accumulators).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of a slice (0 for fewer than 2 values).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Weighted sum-of-squared-deviations helper used by tree splitters:
/// computes `sum((y - mean)^2)` in a single pass via the identity
/// `sum(y^2) - n*mean^2` with compensation against catastrophic cancellation.
pub fn sum_sq_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.q1, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile_sorted(&v, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 1.0), 10.0);
    }

    #[test]
    fn u64_percentile_matches_f64_path_bit_for_bit() {
        let sorted: Vec<u64> = (1..=100).chain([1_000_000, u32::MAX as u64]).collect();
        let as_f64: Vec<f64> = sorted.iter().map(|&v| v as f64).collect();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0, -0.3, 1.7] {
            assert_eq!(
                percentile_sorted_u64(&sorted, q).to_bits(),
                percentile_sorted(&as_f64, q).to_bits(),
                "q={q}"
            );
        }
        assert_eq!(percentile_sorted_u64(&[7], 0.4), 7.0);
    }

    #[test]
    fn variance_and_ssd() {
        let v = [1.0, 3.0];
        assert!((variance(&v) - 1.0).abs() < 1e-12);
        assert!((sum_sq_dev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }
}
