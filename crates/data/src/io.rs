//! CSV and JSON persistence for [`Dataset`]s and experiment results.
//!
//! The CSV dialect is deliberately minimal (no quoting — all values are
//! numeric; the header carries the schema) because the only producers and
//! consumers are inside this workspace and external plotting scripts.

use crate::dataset::{Dataset, DatasetError};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Error type for dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed CSV content.
    Parse(String),
    /// Structural problem building the dataset.
    Dataset(DatasetError),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Binary codec failure (see [`crate::binio`]).
    Binary(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(m) => write!(f, "csv parse error: {m}"),
            IoError::Dataset(e) => write!(f, "dataset error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Binary(m) => write!(f, "binary codec error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<DatasetError> for IoError {
    fn from(e: DatasetError) -> Self {
        IoError::Dataset(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Serialize a dataset as CSV. The last column is the response, named
/// `response`.
pub fn to_csv_string(d: &Dataset) -> String {
    let mut s = String::new();
    for name in d.feature_names() {
        s.push_str(name);
        s.push(',');
    }
    s.push_str("response\n");
    for (row, y) in d.iter() {
        for v in row {
            let _ = write!(s, "{v},");
        }
        let _ = writeln!(s, "{y}");
    }
    s
}

/// Parse a dataset from the CSV dialect written by [`to_csv_string`].
pub fn from_csv_string(s: &str) -> Result<Dataset, IoError> {
    let mut lines = s.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| IoError::Parse("empty csv".to_string()))?;
    let mut cols: Vec<String> = header.split(',').map(|c| c.trim().to_string()).collect();
    let last = cols
        .pop()
        .ok_or_else(|| IoError::Parse("header has no columns".to_string()))?;
    if last != "response" {
        return Err(IoError::Parse(format!(
            "last column must be `response`, got `{last}`"
        )));
    }
    let n_features = cols.len();
    let mut features = Vec::new();
    let mut response = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != n_features + 1 {
            return Err(IoError::Parse(format!(
                "line {}: expected {} fields, got {}",
                lineno + 2,
                n_features + 1,
                parts.len()
            )));
        }
        for p in &parts[..n_features] {
            features.push(p.trim().parse::<f64>().map_err(|e| {
                IoError::Parse(format!("line {}: bad number `{p}`: {e}", lineno + 2))
            })?);
        }
        let y = parts[n_features];
        response.push(
            y.trim().parse::<f64>().map_err(|e| {
                IoError::Parse(format!("line {}: bad number `{y}`: {e}", lineno + 2))
            })?,
        );
    }
    Ok(Dataset::new(cols, features, response)?)
}

/// Write a dataset to a CSV file.
pub fn write_csv<P: AsRef<Path>>(d: &Dataset, path: P) -> Result<(), IoError> {
    fs::write(path, to_csv_string(d))?;
    Ok(())
}

/// Read a dataset from a CSV file.
pub fn read_csv<P: AsRef<Path>>(path: P) -> Result<Dataset, IoError> {
    from_csv_string(&fs::read_to_string(path)?)
}

/// Write any serializable value (datasets, fitted models, experiment
/// summaries) as pretty JSON.
pub fn write_json<T: serde::Serialize, P: AsRef<Path>>(value: &T, path: P) -> Result<(), IoError> {
    fs::write(path, serde_json::to_string_pretty(value)?)?;
    Ok(())
}

/// Read a JSON value written by [`write_json`].
pub fn read_json<T: serde::de::DeserializeOwned, P: AsRef<Path>>(path: P) -> Result<T, IoError> {
    Ok(serde_json::from_str(&fs::read_to_string(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            vec!["i".to_string(), "j".to_string()],
            vec![1.0, 2.0, 3.0, 4.5],
            vec![0.5, 0.25],
        )
        .unwrap()
    }

    #[test]
    fn csv_round_trip() {
        let d = sample();
        let s = to_csv_string(&d);
        let back = from_csv_string(&s).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn csv_header_checked() {
        assert!(from_csv_string("a,b\n1,2\n").is_err());
        assert!(from_csv_string("").is_err());
    }

    #[test]
    fn csv_field_count_checked() {
        let s = "a,response\n1,2\n1,2,3\n";
        let err = from_csv_string(s).unwrap_err();
        assert!(matches!(err, IoError::Parse(_)));
    }

    #[test]
    fn csv_bad_number() {
        let s = "a,response\nxyz,2\n";
        assert!(from_csv_string(s).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("lam_data_io_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("d.csv");
        let d = sample();
        write_csv(&d, &p).unwrap();
        assert_eq!(read_csv(&p).unwrap(), d);
        let pj = dir.join("d.json");
        write_json(&d, &pj).unwrap();
        let back: Dataset = read_json(&pj).unwrap();
        assert_eq!(back, d);
    }
}
