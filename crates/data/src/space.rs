//! Parameter-space enumeration.
//!
//! The paper's datasets are cartesian grids over tuning parameters, e.g.
//! `I×J×K = 1×16×16 … 1×128×128` with a 16-point stride, crossed with block
//! sizes `bi×bj×bk = 1×1×1 … I×J×K`. [`ParamSpace`] enumerates such grids,
//! with support for dependent ranges (block sizes bounded by the grid size).

use serde::{Deserialize, Serialize};

/// An inclusive arithmetic range `start, start+step, …, ≤ end`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// First value.
    pub start: u64,
    /// Inclusive upper bound.
    pub end: u64,
    /// Stride between consecutive values (must be ≥ 1).
    pub step: u64,
}

impl ParamRange {
    /// Construct a range; panics on a zero step or inverted bounds.
    pub fn new(start: u64, end: u64, step: u64) -> Self {
        assert!(step >= 1, "step must be >= 1");
        assert!(start <= end, "start must be <= end");
        Self { start, end, step }
    }

    /// A range holding a single value.
    pub fn single(v: u64) -> Self {
        Self {
            start: v,
            end: v,
            step: 1,
        }
    }

    /// Values of the range in order.
    pub fn values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut v = self.start;
        while v <= self.end {
            out.push(v);
            match v.checked_add(self.step) {
                Some(next) => v = next,
                None => break,
            }
        }
        out
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        ((self.end - self.start) / self.step + 1) as usize
    }

    /// `true` when the range is empty (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.start > self.end
    }
}

/// A named cartesian product of [`ParamRange`]s with optional dependent
/// dimensions computed per point.
#[derive(Debug, Clone, Default)]
pub struct ParamSpace {
    names: Vec<String>,
    ranges: Vec<ParamRange>,
}

impl ParamSpace {
    /// Empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an independent dimension.
    pub fn dim(mut self, name: &str, range: ParamRange) -> Self {
        self.names.push(name.to_string());
        self.ranges.push(range);
        self
    }

    /// Dimension names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Total number of points in the cartesian product.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|r| r.len()).product()
    }

    /// `true` if no dimensions were declared.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Enumerate all points (each point is one value per dimension).
    pub fn points(&self) -> Vec<Vec<u64>> {
        if self.ranges.is_empty() {
            return Vec::new();
        }
        let value_lists: Vec<Vec<u64>> = self.ranges.iter().map(|r| r.values()).collect();
        let total: usize = value_lists.iter().map(|v| v.len()).product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; value_lists.len()];
        loop {
            out.push(
                idx.iter()
                    .zip(&value_lists)
                    .map(|(&i, vals)| vals[i])
                    .collect::<Vec<u64>>(),
            );
            // odometer increment
            let mut d = value_lists.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < value_lists[d].len() {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    return out;
                }
            }
        }
    }

    /// Enumerate points and keep only those satisfying `pred`.
    pub fn filtered_points<F: Fn(&[u64]) -> bool>(&self, pred: F) -> Vec<Vec<u64>> {
        self.points().into_iter().filter(|p| pred(p)).collect()
    }
}

/// Enumerate the divisor-style block sizes the paper uses: all values of a
/// base range that do not exceed `limit`, i.e. `1, …` up to the dimension
/// size. The paper sweeps `bi×bj×bk = 1×1×1 … I×J×K`; to keep the space
/// finite it samples block edges from a geometric ladder.
pub fn block_ladder(limit: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut v = 1u64;
    while v < limit {
        out.push(v);
        v *= 2;
    }
    out.push(limit);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_values_and_len() {
        let r = ParamRange::new(16, 128, 16);
        let vals = r.values();
        assert_eq!(vals.len(), 8);
        assert_eq!(vals[0], 16);
        assert_eq!(*vals.last().unwrap(), 128);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn range_single() {
        assert_eq!(ParamRange::single(5).values(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn range_zero_step_panics() {
        ParamRange::new(0, 1, 0);
    }

    #[test]
    fn space_cartesian_product() {
        let s = ParamSpace::new()
            .dim("a", ParamRange::new(1, 2, 1))
            .dim("b", ParamRange::new(10, 30, 10));
        assert_eq!(s.len(), 6);
        let pts = s.points();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![1, 10]);
        assert_eq!(pts[5], vec![2, 30]);
    }

    #[test]
    fn space_filter() {
        let s = ParamSpace::new()
            .dim("a", ParamRange::new(1, 4, 1))
            .dim("b", ParamRange::new(1, 4, 1));
        let pts = s.filtered_points(|p| p[1] <= p[0]);
        assert_eq!(pts.len(), 10); // triangular number
    }

    #[test]
    fn empty_space() {
        let s = ParamSpace::new();
        assert!(s.is_empty());
        assert!(s.points().is_empty());
    }

    #[test]
    fn ladder_covers_limit() {
        assert_eq!(block_ladder(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(block_ladder(48), vec![1, 2, 4, 8, 16, 32, 48]);
        assert_eq!(block_ladder(1), vec![1]);
    }
}
