//! Dense, row-major dataset: a feature matrix with named columns plus a
//! response vector (execution time, in this workspace).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by [`Dataset`] constructors and accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The flat feature buffer length is not `rows * cols`.
    ShapeMismatch {
        /// Expected number of values (`rows * cols`).
        expected: usize,
        /// Number of values actually supplied.
        actual: usize,
    },
    /// The response vector length differs from the number of rows.
    ResponseLength {
        /// Number of feature rows.
        rows: usize,
        /// Length of the response vector supplied.
        len: usize,
    },
    /// The number of feature names differs from the number of columns.
    NameCount {
        /// Number of feature columns.
        cols: usize,
        /// Number of names supplied.
        names: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the dataset.
        rows: usize,
    },
    /// A non-finite (NaN/inf) value was found where finite data is required.
    NonFinite {
        /// Row of the offending value (response rows use the same indexing).
        row: usize,
        /// Column of the offending value, or `usize::MAX` for the response.
        col: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DatasetError::ShapeMismatch { expected, actual } => {
                write!(f, "feature buffer has {actual} values, expected {expected}")
            }
            DatasetError::ResponseLength { rows, len } => {
                write!(f, "response has {len} values for {rows} rows")
            }
            DatasetError::NameCount { cols, names } => {
                write!(f, "{names} feature names supplied for {cols} columns")
            }
            DatasetError::RowOutOfBounds { index, rows } => {
                write!(f, "row index {index} out of bounds for {rows} rows")
            }
            DatasetError::NonFinite { row, col } => {
                if col == usize::MAX {
                    write!(f, "non-finite response at row {row}")
                } else {
                    write!(f, "non-finite feature at row {row}, column {col}")
                }
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A dense dataset: `rows` observations of `cols` features plus a response.
///
/// Features are stored row-major in one contiguous allocation so that a row
/// view is a plain slice — the layout every downstream consumer (tree
/// splitters, analytical models, scalers) iterates over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    features: Vec<f64>,
    response: Vec<f64>,
    cols: usize,
}

impl Dataset {
    /// Create a dataset from a flat row-major buffer.
    pub fn new(
        feature_names: Vec<String>,
        features: Vec<f64>,
        response: Vec<f64>,
    ) -> Result<Self, DatasetError> {
        let cols = feature_names.len();
        if cols == 0 {
            if !features.is_empty() {
                return Err(DatasetError::ShapeMismatch {
                    expected: 0,
                    actual: features.len(),
                });
            }
            return Ok(Self {
                feature_names,
                features,
                response,
                cols: 0,
            });
        }
        if !features.len().is_multiple_of(cols) {
            return Err(DatasetError::ShapeMismatch {
                expected: (features.len() / cols) * cols,
                actual: features.len(),
            });
        }
        let rows = features.len() / cols;
        if response.len() != rows {
            return Err(DatasetError::ResponseLength {
                rows,
                len: response.len(),
            });
        }
        Ok(Self {
            feature_names,
            features,
            response,
            cols,
        })
    }

    /// Create an empty dataset with the given schema.
    pub fn empty(feature_names: Vec<String>) -> Self {
        let cols = feature_names.len();
        Self {
            feature_names,
            features: Vec::new(),
            response: Vec::new(),
            cols,
        }
    }

    /// Build from per-row feature vectors.
    pub fn from_rows(
        feature_names: Vec<String>,
        rows: &[Vec<f64>],
        response: Vec<f64>,
    ) -> Result<Self, DatasetError> {
        let cols = feature_names.len();
        let mut features = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(DatasetError::ShapeMismatch {
                    expected: cols,
                    actual: row.len(),
                });
            }
            features.extend_from_slice(row);
        }
        Self::new(feature_names, features, response)
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        match self.features.len().checked_div(self.cols) {
            Some(rows) => rows,
            None => self.response.len(), // zero-feature datasets
        }
    }

    /// `true` when the dataset holds no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of feature columns.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.cols
    }

    /// Feature (column) names.
    #[inline]
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The contiguous row-major feature buffer.
    #[inline]
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// The response vector.
    #[inline]
    pub fn response(&self) -> &[f64] {
        &self.response
    }

    /// A single observation's features.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.cols..(i + 1) * self.cols]
    }

    /// Checked access to a single observation's features.
    pub fn try_row(&self, i: usize) -> Result<&[f64], DatasetError> {
        if i >= self.len() {
            return Err(DatasetError::RowOutOfBounds {
                index: i,
                rows: self.len(),
            });
        }
        Ok(self.row(i))
    }

    /// Iterate over `(features, response)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        (0..self.len()).map(move |i| (self.row(i), self.response[i]))
    }

    /// Append an observation. Panics if the row width differs from the schema.
    pub fn push(&mut self, row: &[f64], y: f64) {
        assert_eq!(
            row.len(),
            self.cols,
            "row width {} != dataset width {}",
            row.len(),
            self.cols
        );
        self.features.extend_from_slice(row);
        self.response.push(y);
    }

    /// Column index of a feature name, if present.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Extract a feature column as an owned vector.
    pub fn column_values(&self, col: usize) -> Vec<f64> {
        (0..self.len()).map(|r| self.row(r)[col]).collect()
    }

    /// Select a subset of rows (by index, in the given order) into a new dataset.
    pub fn select(&self, indices: &[usize]) -> Result<Self, DatasetError> {
        let mut features = Vec::with_capacity(indices.len() * self.cols);
        let mut response = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DatasetError::RowOutOfBounds {
                    index: i,
                    rows: self.len(),
                });
            }
            features.extend_from_slice(self.row(i));
            response.push(self.response[i]);
        }
        Ok(Self {
            feature_names: self.feature_names.clone(),
            features,
            response,
            cols: self.cols,
        })
    }

    /// Split into `(selected, rest)` by row indices; `indices` need not be sorted.
    pub fn partition(&self, indices: &[usize]) -> Result<(Self, Self), DatasetError> {
        let mut mask = vec![false; self.len()];
        for &i in indices {
            if i >= self.len() {
                return Err(DatasetError::RowOutOfBounds {
                    index: i,
                    rows: self.len(),
                });
            }
            mask[i] = true;
        }
        let selected = self.select(indices)?;
        let rest_idx: Vec<usize> = (0..self.len()).filter(|&i| !mask[i]).collect();
        let rest = self.select(&rest_idx)?;
        Ok((selected, rest))
    }

    /// Append a new feature column (e.g. an analytical-model prediction used
    /// as a stacked feature). Returns the new dataset; `self` is unchanged.
    pub fn with_column(&self, name: &str, values: &[f64]) -> Result<Self, DatasetError> {
        if values.len() != self.len() {
            return Err(DatasetError::ResponseLength {
                rows: self.len(),
                len: values.len(),
            });
        }
        let new_cols = self.cols + 1;
        let mut features = Vec::with_capacity(self.len() * new_cols);
        for (i, v) in values.iter().enumerate() {
            features.extend_from_slice(self.row(i));
            features.push(*v);
        }
        let mut feature_names = self.feature_names.clone();
        feature_names.push(name.to_string());
        Ok(Self {
            feature_names,
            features,
            response: self.response.clone(),
            cols: new_cols,
        })
    }

    /// Verify that every feature and response value is finite.
    pub fn validate_finite(&self) -> Result<(), DatasetError> {
        for r in 0..self.len() {
            for (c, v) in self.row(r).iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFinite { row: r, col: c });
                }
            }
            if !self.response[r].is_finite() {
                return Err(DatasetError::NonFinite {
                    row: r,
                    col: usize::MAX,
                });
            }
        }
        Ok(())
    }

    /// Concatenate two datasets with identical schemas.
    pub fn concat(&self, other: &Self) -> Result<Self, DatasetError> {
        if self.feature_names != other.feature_names {
            return Err(DatasetError::NameCount {
                cols: self.cols,
                names: other.cols,
            });
        }
        let mut out = self.clone();
        out.features.extend_from_slice(&other.features);
        out.response.extend_from_slice(&other.response);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: &[&str]) -> Vec<String> {
        n.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn new_validates_shape() {
        let err = Dataset::new(names(&["a", "b"]), vec![1.0, 2.0, 3.0], vec![0.0]);
        assert!(matches!(err, Err(DatasetError::ShapeMismatch { .. })));
    }

    #[test]
    fn new_validates_response() {
        let err = Dataset::new(names(&["a"]), vec![1.0, 2.0], vec![0.0]);
        assert!(matches!(
            err,
            Err(DatasetError::ResponseLength { rows: 2, len: 1 })
        ));
    }

    #[test]
    fn row_access_and_iter() {
        let d = Dataset::new(
            names(&["a", "b"]),
            vec![1.0, 2.0, 3.0, 4.0],
            vec![10.0, 20.0],
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs[1], (&[3.0, 4.0][..], 20.0));
    }

    #[test]
    fn try_row_bounds() {
        let d = Dataset::new(names(&["a"]), vec![1.0], vec![2.0]).unwrap();
        assert!(d.try_row(0).is_ok());
        assert!(matches!(
            d.try_row(1),
            Err(DatasetError::RowOutOfBounds { index: 1, rows: 1 })
        ));
    }

    #[test]
    fn push_extends() {
        let mut d = Dataset::empty(names(&["a", "b"]));
        d.push(&[1.0, 2.0], 3.0);
        d.push(&[4.0, 5.0], 6.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.response(), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_wrong_width_panics() {
        let mut d = Dataset::empty(names(&["a", "b"]));
        d.push(&[1.0], 3.0);
    }

    #[test]
    fn select_and_partition() {
        let d = Dataset::new(
            names(&["x"]),
            vec![0.0, 1.0, 2.0, 3.0],
            vec![0.0, 10.0, 20.0, 30.0],
        )
        .unwrap();
        let s = d.select(&[2, 0]).unwrap();
        assert_eq!(s.response(), &[20.0, 0.0]);
        let (train, test) = d.partition(&[1, 3]).unwrap();
        assert_eq!(train.response(), &[10.0, 30.0]);
        assert_eq!(test.response(), &[0.0, 20.0]);
    }

    #[test]
    fn partition_out_of_bounds() {
        let d = Dataset::new(names(&["x"]), vec![0.0], vec![0.0]).unwrap();
        assert!(d.partition(&[7]).is_err());
    }

    #[test]
    fn with_column_appends_feature() {
        let d = Dataset::new(names(&["x"]), vec![1.0, 2.0], vec![5.0, 6.0]).unwrap();
        let d2 = d.with_column("am", &[0.5, 0.6]).unwrap();
        assert_eq!(d2.n_features(), 2);
        assert_eq!(d2.row(1), &[2.0, 0.6]);
        assert_eq!(d2.feature_names()[1], "am");
        // original untouched
        assert_eq!(d.n_features(), 1);
    }

    #[test]
    fn with_column_length_mismatch() {
        let d = Dataset::new(names(&["x"]), vec![1.0], vec![5.0]).unwrap();
        assert!(d.with_column("am", &[0.5, 0.6]).is_err());
    }

    #[test]
    fn validate_finite_catches_nan() {
        let d = Dataset::new(names(&["x"]), vec![f64::NAN], vec![5.0]).unwrap();
        assert!(matches!(
            d.validate_finite(),
            Err(DatasetError::NonFinite { row: 0, col: 0 })
        ));
        let d = Dataset::new(names(&["x"]), vec![1.0], vec![f64::INFINITY]).unwrap();
        assert!(d.validate_finite().is_err());
    }

    #[test]
    fn concat_requires_same_schema() {
        let a = Dataset::new(names(&["x"]), vec![1.0], vec![1.0]).unwrap();
        let b = Dataset::new(names(&["y"]), vec![2.0], vec![2.0]).unwrap();
        assert!(a.concat(&b).is_err());
        let c = Dataset::new(names(&["x"]), vec![2.0], vec![2.0]).unwrap();
        let joined = a.concat(&c).unwrap();
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn column_lookup() {
        let d = Dataset::empty(names(&["i", "j", "k"]));
        assert_eq!(d.column("j"), Some(1));
        assert_eq!(d.column("zz"), None);
    }

    #[test]
    fn serde_round_trip() {
        let d = Dataset::new(names(&["x"]), vec![1.0, 2.0], vec![3.0, 4.0]).unwrap();
        let s = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
    }
}
