//! Compact binary persistence for anything the vendored serde shim can
//! serialize — the fast-cold-start alternative to `io::write_json`.
//!
//! JSON artifacts pay shortest-exact float *formatting* on save and
//! `FromStr` float *parsing* on load — for a persisted forest (tens of
//! thousands of `f64` thresholds and leaves) that dominates registry
//! cold-start. This codec writes `f64` **bit patterns verbatim** in
//! little-endian byte order, so loading is a bounds-checked memcpy walk
//! instead of a parse, and round-trips are trivially bit-identical.
//!
//! ## Format
//!
//! Every file starts with a versioned magic header:
//!
//! | bytes | meaning                                   |
//! |-------|-------------------------------------------|
//! | 0..4  | magic `LAMB` (`4C 41 4D 42`)              |
//! | 4..8  | codec version, `u32` little-endian (1)    |
//! | 8..   | one encoded [`Value`]                     |
//!
//! A value is a one-byte tag followed by its payload; all integers are
//! little-endian, all lengths are `u32`:
//!
//! | tag | variant      | payload                                      |
//! |-----|--------------|----------------------------------------------|
//! | 0   | `Null`       | —                                            |
//! | 1   | `Bool(false)`| —                                            |
//! | 2   | `Bool(true)` | —                                            |
//! | 3   | `PosInt`     | `u64`                                        |
//! | 4   | `NegInt`     | `i64`                                        |
//! | 5   | `Float`      | `f64` bits                                   |
//! | 6   | `String`     | len + UTF-8 bytes                            |
//! | 7   | `Array`      | len + encoded elements                       |
//! | 8   | `Object`     | len + (len-prefixed key, encoded value) pairs|
//! | 9   | float array  | len + raw `f64` bits                         |
//!
//! Tag 9 is a transparent fast path: an array whose elements are all
//! `Number::Float` (tree thresholds, leaf values, coefficient vectors —
//! the bulk of every model artifact) is packed as raw floats, 9 bytes per
//! element instead of a tagged value each, and decodes back to the same
//! `Value::Array` it came from.

use crate::io::IoError;
use serde::{Deserialize, Number, Serialize, Value};
use std::fs;
use std::path::Path;

/// File magic: `LAMB` ("LAM Binary").
pub const MAGIC: [u8; 4] = *b"LAMB";

/// Codec version written after the magic; bump on layout changes so stale
/// artifacts fail loudly instead of decoding wrong.
pub const BINARY_VERSION: u32 = 1;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_POS_INT: u8 = 3;
const TAG_NEG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STRING: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;
const TAG_FLOAT_ARRAY: u8 = 9;

fn push_len(out: &mut Vec<u8>, len: usize) -> Result<(), IoError> {
    let len = u32::try_from(len)
        .map_err(|_| IoError::Binary(format!("collection of {len} elements exceeds u32 length")))?;
    out.extend_from_slice(&len.to_le_bytes());
    Ok(())
}

fn encode_value(value: &Value, out: &mut Vec<u8>) -> Result<(), IoError> {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(Number::PosInt(v)) => {
            out.push(TAG_POS_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Number(Number::NegInt(v)) => {
            out.push(TAG_NEG_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Number(Number::Float(v)) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            push_len(out, s.len())?;
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            let all_floats = !items.is_empty()
                && items
                    .iter()
                    .all(|v| matches!(v, Value::Number(Number::Float(_))));
            if all_floats {
                out.push(TAG_FLOAT_ARRAY);
                push_len(out, items.len())?;
                for item in items {
                    let Value::Number(Number::Float(v)) = item else {
                        unreachable!("checked all-floats above");
                    };
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            } else {
                out.push(TAG_ARRAY);
                push_len(out, items.len())?;
                for item in items {
                    encode_value(item, out)?;
                }
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            push_len(out, fields.len())?;
            for (key, item) in fields {
                push_len(out, key.len())?;
                out.extend_from_slice(key.as_bytes());
                encode_value(item, out)?;
            }
        }
    }
    Ok(())
}

/// A cursor over the encoded bytes with bounds-checked primitive reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                IoError::Binary(format!(
                    "truncated: wanted {n} bytes at offset {}, file holds {}",
                    self.pos,
                    self.bytes.len()
                ))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, IoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a length and sanity-check it against the bytes remaining
    /// (each encoded element needs at least `min_elem_bytes`), so a
    /// corrupt length cannot trigger a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, IoError> {
        let len = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if len.saturating_mul(min_elem_bytes) > remaining {
            return Err(IoError::Binary(format!(
                "corrupt length {len} at offset {}: only {remaining} bytes remain",
                self.pos - 4
            )));
        }
        Ok(len)
    }

    fn string(&mut self) -> Result<String, IoError> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| IoError::Binary(format!("invalid utf-8 in string: {e}")))
    }

    fn value(&mut self) -> Result<Value, IoError> {
        let tag = self.u8()?;
        Ok(match tag {
            TAG_NULL => Value::Null,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_POS_INT => Value::Number(Number::PosInt(self.u64()?)),
            TAG_NEG_INT => Value::Number(Number::NegInt(self.u64()? as i64)),
            TAG_FLOAT => Value::Number(Number::Float(f64::from_bits(self.u64()?))),
            TAG_STRING => Value::String(self.string()?),
            TAG_ARRAY => {
                let len = self.len(1)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.value()?);
                }
                Value::Array(items)
            }
            TAG_OBJECT => {
                let len = self.len(5)?;
                let mut fields = Vec::with_capacity(len);
                for _ in 0..len {
                    let key = self.string()?;
                    let value = self.value()?;
                    fields.push((key, value));
                }
                Value::Object(fields)
            }
            TAG_FLOAT_ARRAY => {
                let len = self.len(8)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(Value::Number(Number::Float(f64::from_bits(self.u64()?))));
                }
                Value::Array(items)
            }
            other => {
                return Err(IoError::Binary(format!(
                    "unknown value tag {other} at offset {}",
                    self.pos - 1
                )))
            }
        })
    }
}

/// Encode a serializable value as header + binary tree.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, IoError> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    encode_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Decode a value written by [`to_bytes`], validating magic and version
/// and rejecting trailing garbage.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, IoError> {
    let mut reader = Reader { bytes, pos: 0 };
    let magic = reader.take(4)?;
    if magic != MAGIC {
        return Err(IoError::Binary(format!(
            "bad magic {magic:02x?}, expected {MAGIC:02x?} (`LAMB`)"
        )));
    }
    let version = reader.u32()?;
    if version != BINARY_VERSION {
        return Err(IoError::Binary(format!(
            "binary codec version {version}, this build reads {BINARY_VERSION}"
        )));
    }
    let value = reader.value()?;
    if reader.pos != bytes.len() {
        return Err(IoError::Binary(format!(
            "{} trailing bytes after the encoded value",
            bytes.len() - reader.pos
        )));
    }
    T::from_value(&value).map_err(|e| IoError::Binary(format!("decode: {e}")))
}

/// Write a serializable value as a binary artifact.
pub fn write_binary<T: Serialize, P: AsRef<Path>>(value: &T, path: P) -> Result<(), IoError> {
    fs::write(path, to_bytes(value)?)?;
    Ok(())
}

/// Read a value written by [`write_binary`].
pub fn read_binary<T: Deserialize, P: AsRef<Path>>(path: P) -> Result<T, IoError> {
    from_bytes(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let bytes = to_bytes(v).unwrap();
        from_bytes(&bytes).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Number(Number::PosInt(u64::MAX)),
            Value::Number(Number::NegInt(i64::MIN)),
            Value::Number(Number::Float(std::f64::consts::PI)),
            Value::String("héllo \"world\"\n".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn float_bits_survive_verbatim() {
        for bits in [
            0u64,
            f64::to_bits(-0.0),
            f64::to_bits(f64::NAN),
            f64::to_bits(f64::INFINITY),
            f64::to_bits(f64::MIN_POSITIVE),
            0x0000_0000_0000_0001, // subnormal
            f64::to_bits(1.0000000000000002),
        ] {
            let v = Value::Number(Number::Float(f64::from_bits(bits)));
            let bytes = to_bytes(&v).unwrap();
            let back: Value = from_bytes(&bytes).unwrap();
            let Value::Number(Number::Float(f)) = back else {
                panic!("variant changed");
            };
            assert_eq!(f.to_bits(), bits);
        }
    }

    #[test]
    fn float_arrays_pack_and_round_trip() {
        let items: Vec<Value> = (0..1000)
            .map(|i| Value::Number(Number::Float(i as f64 / 7.0)))
            .collect();
        let v = Value::Array(items);
        let bytes = to_bytes(&v).unwrap();
        // Header 8 + tag 1 + len 4 + 8 per float: the packed fast path.
        assert_eq!(bytes.len(), 8 + 1 + 4 + 1000 * 8);
        assert_eq!(from_bytes::<Value>(&bytes).unwrap(), v);
    }

    #[test]
    fn mixed_arrays_and_objects_round_trip() {
        let v = Value::Object(vec![
            (
                "nested".into(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(1)),
                    Value::Number(Number::Float(2.5)),
                    Value::Null,
                ]),
            ),
            ("empty_array".into(), Value::Array(vec![])),
            ("empty_object".into(), Value::Object(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = to_bytes(&Value::Null).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<Value>(&bytes),
            Err(IoError::Binary(_))
        ));
        let mut bytes = to_bytes(&Value::Null).unwrap();
        bytes[4] = 99;
        assert!(matches!(
            from_bytes::<Value>(&bytes),
            Err(IoError::Binary(_))
        ));
    }

    #[test]
    fn truncated_and_trailing_bytes_rejected() {
        let bytes = to_bytes(&Value::String("hello".into())).unwrap();
        assert!(matches!(
            from_bytes::<Value>(&bytes[..bytes.len() - 1]),
            Err(IoError::Binary(_))
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            from_bytes::<Value>(&padded),
            Err(IoError::Binary(_))
        ));
    }

    #[test]
    fn corrupt_length_cannot_demand_huge_allocation() {
        // An array claiming u32::MAX elements in a tiny file must error,
        // not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&BINARY_VERSION.to_le_bytes());
        bytes.push(TAG_ARRAY);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes::<Value>(&bytes),
            Err(IoError::Binary(_))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&BINARY_VERSION.to_le_bytes());
        bytes.push(200);
        assert!(matches!(
            from_bytes::<Value>(&bytes),
            Err(IoError::Binary(_))
        ));
    }

    #[test]
    fn file_round_trip_through_typed_api() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Artifact {
            name: String,
            weights: Vec<f64>,
            tag: Option<u32>,
        }
        let a = Artifact {
            name: "m".into(),
            weights: vec![1.5, -0.0, f64::MIN_POSITIVE],
            tag: None,
        };
        let path = std::env::temp_dir().join("lam_data_binio_roundtrip.lamb");
        write_binary(&a, &path).unwrap();
        let back: Artifact = read_binary(&path).unwrap();
        assert_eq!(a.name, back.name);
        assert_eq!(a.tag, back.tag);
        for (x, y) in a.weights.iter().zip(&back.weights) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn binary_is_smaller_than_json_for_float_heavy_payloads() {
        let weights: Vec<f64> = (0..5000).map(|i| (i as f64).sin() * 1e-3).collect();
        let v = Value::Array(
            weights
                .iter()
                .map(|&w| Value::Number(Number::Float(w)))
                .collect(),
        );
        let bin = to_bytes(&v).unwrap();
        let json = serde_json::to_string(&v).unwrap();
        assert!(
            bin.len() < json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }
}
