//! # lam-data
//!
//! Dataset substrate for the `lam` workspace: a dense row-major feature
//! matrix with named columns and a response vector, parameter-space
//! enumeration helpers that mirror the configuration grids of the paper
//! (*Learning with Analytical Models*, Ibeid et al., 2019), and CSV/JSON
//! persistence.
//!
//! The crate deliberately has no machine-learning logic; it is the layer
//! both the applications (which *generate* data) and the models (which
//! *consume* data) depend on.

pub mod binio;
pub mod dataset;
pub mod io;
pub mod space;
pub mod stats;

pub use dataset::{Dataset, DatasetError};
pub use space::{ParamRange, ParamSpace};
pub use stats::Summary;
