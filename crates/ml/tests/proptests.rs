//! Property-based tests for the ML substrate.

use lam_data::Dataset;
use lam_ml::ensemble::BaggingRegressor;
use lam_ml::forest::ExtraTreesRegressor;
use lam_ml::metrics::{mae, mape, r2, rmse};
use lam_ml::model::Regressor;
use lam_ml::preprocessing::StandardScaler;
use lam_ml::sampling::{k_fold, train_test_split_fraction};
use lam_ml::tree::{DecisionTreeRegressor, TreeParams};
use proptest::prelude::*;

/// Arbitrary small dataset: n rows, 2 features, finite values.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (4usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(-100.0f64..100.0, n * 2),
            proptest::collection::vec(0.1f64..1000.0, n),
        )
            .prop_map(|(features, response)| {
                Dataset::new(vec!["a".into(), "b".into()], features, response).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tree predictions never leave the training-target range (leaf values
    /// are means of training targets).
    #[test]
    fn tree_predictions_within_target_range(data in dataset_strategy(), px in -200.0f64..200.0, py in -200.0f64..200.0) {
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 1);
        t.fit(&data).unwrap();
        let lo = data.response().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.response().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict_row(&[px, py]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Forest predictions are convex combinations of tree predictions, so
    /// they also stay in the target range.
    #[test]
    fn forest_predictions_within_target_range(data in dataset_strategy()) {
        let mut f = ExtraTreesRegressor::with_params(10, TreeParams::default(), 3);
        f.fit(&data).unwrap();
        let lo = data.response().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.response().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..data.len() {
            let p = f.predict_row(data.row(i));
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    /// A depth-unbounded tree interpolates training data whenever feature
    /// rows are distinct.
    #[test]
    fn tree_interpolates_distinct_rows(n in 4usize..40) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        let data = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, ys).unwrap();
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        t.fit(&data).unwrap();
        for (x, y) in data.iter() {
            prop_assert!((t.predict_row(x) - y).abs() < 1e-9);
        }
    }

    /// Standardization round-trips.
    #[test]
    fn scaler_round_trip(data in dataset_strategy()) {
        let mut s = StandardScaler::new();
        s.fit(&data).unwrap();
        for i in 0..data.len() {
            let mut row = data.row(i).to_vec();
            let orig = row.clone();
            s.transform_row(&mut row);
            s.inverse_transform_row(&mut row);
            for (a, b) in row.iter().zip(&orig) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    /// Split fractions produce disjoint, complete partitions.
    #[test]
    fn split_partitions_completely(data in dataset_strategy(), frac in 0.05f64..0.95, seed in 0u64..1000) {
        let (train, test) = train_test_split_fraction(&data, frac, seed);
        prop_assert_eq!(train.len() + test.len(), data.len());
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
    }

    /// K-fold covers every row exactly once as test data.
    #[test]
    fn k_fold_covers(data in dataset_strategy(), k in 2usize..5, seed in 0u64..100) {
        prop_assume!(data.len() >= k);
        let folds = k_fold(&data, k, seed);
        let total_test: usize = folds.iter().map(|(_, t)| t.len()).sum();
        prop_assert_eq!(total_test, data.len());
    }

    /// Metric identities: perfect predictions give zero error and R² = 1;
    /// MAPE is scale-invariant.
    #[test]
    fn metric_identities(ys in proptest::collection::vec(0.5f64..100.0, 2..30), scale in 0.1f64..50.0) {
        prop_assert_eq!(mape(&ys, &ys).unwrap(), 0.0);
        prop_assert_eq!(mae(&ys, &ys).unwrap(), 0.0);
        prop_assert_eq!(rmse(&ys, &ys).unwrap(), 0.0);
        if ys.iter().any(|&y| (y - ys[0]).abs() > 1e-9) {
            prop_assert!((r2(&ys, &ys).unwrap() - 1.0).abs() < 1e-12);
        }
        // scale invariance of MAPE
        let perturbed: Vec<f64> = ys.iter().map(|y| y * 1.1).collect();
        let a = mape(&ys, &perturbed).unwrap();
        let ys2: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let perturbed2: Vec<f64> = perturbed.iter().map(|y| y * scale).collect();
        let b = mape(&ys2, &perturbed2).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// MAE ≤ RMSE (Jensen).
    #[test]
    fn mae_le_rmse(
        ys in proptest::collection::vec(0.5f64..100.0, 2..30),
        noise in proptest::collection::vec(-5.0f64..5.0, 30)
    ) {
        let preds: Vec<f64> = ys.iter().zip(&noise).map(|(y, n)| y + n).collect();
        let mae_v = mae(&ys, &preds).unwrap();
        let rmse_v = rmse(&ys, &preds).unwrap();
        prop_assert!(mae_v <= rmse_v + 1e-12);
    }

    /// Bagging with one member behaves like a (resampled) base model: its
    /// prediction stays within the training-target range.
    #[test]
    fn bagging_stays_in_range(data in dataset_strategy()) {
        let mut b = BaggingRegressor::new(5, 3, |seed| {
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), seed))
        });
        b.fit(&data).unwrap();
        let lo = data.response().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.response().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = b.predict_row(data.row(0));
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// Forests are deterministic in their seed regardless of Rayon
    /// scheduling.
    #[test]
    fn forest_seed_determinism(data in dataset_strategy(), seed in 0u64..50) {
        let mut a = ExtraTreesRegressor::with_params(8, TreeParams::default(), seed);
        let mut b = ExtraTreesRegressor::with_params(8, TreeParams::default(), seed);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        for i in 0..data.len() {
            prop_assert_eq!(a.predict_row(data.row(i)), b.predict_row(data.row(i)));
        }
    }
}
