//! Property tests certifying the arena-compiled fast path
//! ([`lam_ml::compile`]) is a *bit-identical* drop-in for interpreted
//! evaluation, for every tree-backed model family, over arbitrary fitted
//! models and arbitrary query rows — including rows far outside the
//! training range and rows carrying `NaN`, infinities, and `-0.0`
//! (the branchless descent must route them exactly as the interpreted
//! `x <= t` comparison does).

use lam_data::Dataset;
use lam_ml::ensemble::GradientBoostingRegressor;
use lam_ml::forest::{ExtraTreesRegressor, RandomForestRegressor};
use lam_ml::model::Regressor;
use lam_ml::tree::{DecisionTreeRegressor, TreeParams};
use proptest::prelude::*;

/// Arbitrary small dataset: n rows, 3 features, finite values.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (6usize..50).prop_flat_map(|n| {
        (
            proptest::collection::vec(-50.0f64..50.0, n * 3),
            proptest::collection::vec(0.1f64..500.0, n),
        )
            .prop_map(|(features, response)| {
                Dataset::new(vec!["a".into(), "b".into(), "c".into()], features, response).unwrap()
            })
    })
}

/// Query rows that stress the descent: any finite value, plus the special
/// values the comparison contract must preserve.
fn query_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    let special = (0usize..8, -200.0f64..200.0).prop_map(|(k, v)| match k {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        _ => v,
    });
    proptest::collection::vec(proptest::collection::vec(special, 3), 1..150)
}

fn assert_bit_identical(
    interpreted: &dyn Fn(&[f64]) -> f64,
    compiled: &lam_ml::compile::CompiledTrees,
    queries: &[Vec<f64>],
) -> Result<(), TestCaseError> {
    // Row-at-a-time path.
    for q in queries {
        let a = interpreted(q);
        let b = compiled.predict_row(q);
        prop_assert!(
            a.to_bits() == b.to_bits(),
            "row diverged on {q:?}: interpreted {a} vs compiled {b}"
        );
    }
    // Blocked batch path must agree with its own row path (and hence the
    // interpreter) regardless of how queries split into blocks.
    let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
    let batch = compiled.predict_rows_by_ref(&refs);
    for (q, b) in queries.iter().zip(&batch) {
        let a = interpreted(q);
        prop_assert!(
            a.to_bits() == b.to_bits(),
            "batch diverged on {q:?}: interpreted {a} vs blocked {b}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cart_compiles_bit_identical(data in dataset_strategy(), queries in query_strategy(), seed in 0u64..1000) {
        let mut m = DecisionTreeRegressor::new(TreeParams::default(), seed);
        m.fit(&data).unwrap();
        let compiled = m.compile().unwrap();
        assert_bit_identical(&|q| m.predict_row(q), &compiled, &queries)?;
    }

    #[test]
    fn random_forest_compiles_bit_identical(data in dataset_strategy(), queries in query_strategy(), seed in 0u64..1000) {
        let mut m = RandomForestRegressor::with_params(12, TreeParams::default(), seed);
        m.fit(&data).unwrap();
        let compiled = m.compile().unwrap();
        assert_bit_identical(&|q| m.predict_row(q), &compiled, &queries)?;
    }

    #[test]
    fn extra_trees_compile_bit_identical(data in dataset_strategy(), queries in query_strategy(), seed in 0u64..1000) {
        let mut m = ExtraTreesRegressor::with_params(12, TreeParams::default(), seed);
        m.fit(&data).unwrap();
        let compiled = m.compile().unwrap();
        assert_bit_identical(&|q| m.predict_row(q), &compiled, &queries)?;
    }

    #[test]
    fn boosting_compiles_bit_identical(data in dataset_strategy(), queries in query_strategy(), seed in 0u64..1000) {
        let mut m = GradientBoostingRegressor::new(40, 0.1, seed);
        m.fit(&data).unwrap();
        let compiled = m.compile().unwrap();
        assert_bit_identical(&|q| m.predict_row(q), &compiled, &queries)?;
    }

    /// Batch sizes straddling the block boundary (63, 64, 65, …) all
    /// agree with the row path — no off-by-one in remainder handling.
    #[test]
    fn block_remainders_are_exact(n in 1usize..200, seed in 0u64..100) {
        let xs: Vec<f64> = (0..40).flat_map(|i| [i as f64, (i * i % 17) as f64, -(i as f64)]).collect();
        let ys: Vec<f64> = (0..40).map(|i| (i as f64).cos() + 2.0).collect();
        let data = Dataset::new(vec!["a".into(), "b".into(), "c".into()], xs, ys).unwrap();
        let mut m = ExtraTreesRegressor::with_params(8, TreeParams::default(), seed);
        m.fit(&data).unwrap();
        let compiled = m.compile().unwrap();
        let queries: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.7, i as f64 - 3.0, 0.5]).collect();
        let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let batch = compiled.predict_rows_by_ref(&refs);
        prop_assert_eq!(batch.len(), n);
        for (q, b) in queries.iter().zip(&batch) {
            prop_assert!(compiled.predict_row(q).to_bits() == b.to_bits());
        }
    }
}

#[test]
fn unfitted_models_fail_to_compile_with_typed_error() {
    use lam_ml::compile::CompileError;
    let tree = DecisionTreeRegressor::new(TreeParams::default(), 0);
    assert_eq!(tree.compile().unwrap_err(), CompileError::NotFitted);
    let forest = RandomForestRegressor::with_params(4, TreeParams::default(), 0);
    assert_eq!(forest.compile().unwrap_err(), CompileError::NotFitted);
    let et = ExtraTreesRegressor::with_params(4, TreeParams::default(), 0);
    assert_eq!(et.compile().unwrap_err(), CompileError::NotFitted);
    let gbm = GradientBoostingRegressor::new(10, 0.1, 0);
    assert_eq!(gbm.compile().unwrap_err(), CompileError::NotFitted);
}
