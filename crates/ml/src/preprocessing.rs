//! Feature preprocessing. The paper standardizes features to zero mean and
//! unit variance before training (a scikit-learn convention); tree models
//! are scale-invariant but the scalers matter for the linear/kNN baselines
//! and keep the pipeline faithful.

use crate::model::FitError;
use lam_data::Dataset;
use serde::{Deserialize, Serialize};

/// Zero-mean unit-variance standardization, fitted per feature column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// New, unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit on a dataset's feature columns.
    pub fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let cols = data.n_features();
        let n = data.len() as f64;
        let mut means = vec![0.0; cols];
        for i in 0..data.len() {
            for (c, v) in data.row(i).iter().enumerate() {
                means[c] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; cols];
        for i in 0..data.len() {
            for (c, v) in data.row(i).iter().enumerate() {
                let d = v - means[c];
                vars[c] += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                // Constant columns transform to zero instead of dividing by 0.
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        self.means = means;
        self.stds = stds;
        Ok(())
    }

    /// `true` once fitted.
    pub fn is_fitted(&self) -> bool {
        !self.means.is_empty()
    }

    /// Transform one row in place.
    pub fn transform_row(&self, x: &mut [f64]) {
        assert!(self.is_fitted(), "StandardScaler used before fit");
        assert_eq!(x.len(), self.means.len(), "row width mismatch");
        for (i, v) in x.iter_mut().enumerate() {
            *v = (*v - self.means[i]) / self.stds[i];
        }
    }

    /// Transform a dataset's features; the response is untouched.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let mut features = data.features().to_vec();
        let cols = data.n_features();
        for row in features.chunks_mut(cols) {
            self.transform_row(row);
        }
        Dataset::new(
            data.feature_names().to_vec(),
            features,
            data.response().to_vec(),
        )
        .expect("shape preserved")
    }

    /// Inverse-transform one row in place.
    pub fn inverse_transform_row(&self, x: &mut [f64]) {
        assert!(self.is_fitted(), "StandardScaler used before fit");
        for (i, v) in x.iter_mut().enumerate() {
            *v = *v * self.stds[i] + self.means[i];
        }
    }

    /// Fit then transform, in one step.
    pub fn fit_transform(&mut self, data: &Dataset) -> Result<Dataset, FitError> {
        self.fit(data)?;
        Ok(self.transform(data))
    }

    /// Per-column means (empty before fit).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations (constant columns report 1.0).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Min–max scaling to `[0, 1]` per feature column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// New, unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit per-column min/range.
    pub fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let cols = data.n_features();
        let mut mins = vec![f64::INFINITY; cols];
        let mut maxs = vec![f64::NEG_INFINITY; cols];
        for i in 0..data.len() {
            for (c, v) in data.row(i).iter().enumerate() {
                mins[c] = mins[c].min(*v);
                maxs[c] = maxs[c].max(*v);
            }
        }
        self.ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();
        self.mins = mins;
        Ok(())
    }

    /// Transform a dataset's features into `[0, 1]` per column.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        assert!(!self.mins.is_empty(), "MinMaxScaler used before fit");
        let cols = data.n_features();
        let mut features = data.features().to_vec();
        for row in features.chunks_mut(cols) {
            for (i, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mins[i]) / self.ranges[i];
            }
        }
        Dataset::new(
            data.feature_names().to_vec(),
            features,
            data.response().to_vec(),
        )
        .expect("shape preserved")
    }
}

/// Natural-log transform of the response, used when execution times span
/// orders of magnitude (the FMM dataset). Inverse is [`LogTarget::invert`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LogTarget;

impl LogTarget {
    /// Replace the response with `ln(y)`; all responses must be positive.
    pub fn apply(data: &Dataset) -> Result<Dataset, FitError> {
        if data.response().iter().any(|&y| y <= 0.0) {
            return Err(FitError::Invalid(
                "log-target requires positive responses".to_string(),
            ));
        }
        let response = data.response().iter().map(|y| y.ln()).collect();
        Ok(Dataset::new(
            data.feature_names().to_vec(),
            data.features().to_vec(),
            response,
        )
        .expect("shape preserved"))
    }

    /// Map a prediction in log space back to the original scale.
    #[inline]
    pub fn invert(pred: f64) -> f64 {
        pred.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            vec!["a".into(), "b".into()],
            vec![1.0, 10.0, 3.0, 10.0, 5.0, 10.0],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap()
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let d = sample();
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&d).unwrap();
        let col0: Vec<f64> = t.column_values(0);
        let mean: f64 = col0.iter().sum::<f64>() / 3.0;
        let var: f64 = col0.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_scaler_constant_column_safe() {
        let d = sample();
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&d).unwrap();
        // column b is constant 10 → all zeros, no NaN
        for v in t.column_values(1) {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn standard_scaler_round_trip() {
        let d = sample();
        let mut s = StandardScaler::new();
        s.fit(&d).unwrap();
        let mut row = d.row(1).to_vec();
        let orig = row.clone();
        s.transform_row(&mut row);
        s.inverse_transform_row(&mut row);
        for (a, b) in row.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_scaler_empty_rejected() {
        let d = Dataset::empty(vec!["x".into()]);
        assert!(StandardScaler::new().fit(&d).is_err());
    }

    #[test]
    fn minmax_bounds() {
        let d = sample();
        let mut s = MinMaxScaler::new();
        s.fit(&d).unwrap();
        let t = s.transform(&d);
        for v in t.column_values(0) {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(t.column_values(0)[0], 0.0);
        assert_eq!(t.column_values(0)[2], 1.0);
    }

    #[test]
    fn log_target_round_trip() {
        let d = sample();
        let logd = LogTarget::apply(&d).unwrap();
        for (orig, logged) in d.response().iter().zip(logd.response()) {
            assert!((LogTarget::invert(*logged) - orig).abs() < 1e-12);
        }
    }

    #[test]
    fn log_target_rejects_nonpositive() {
        let d = Dataset::new(vec!["x".into()], vec![1.0], vec![0.0]).unwrap();
        assert!(LogTarget::apply(&d).is_err());
    }
}
