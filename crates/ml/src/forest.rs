//! Tree ensembles: random forests (bootstrap + best splits over random
//! feature subsets) and extremely randomized trees (no bootstrap by default +
//! random thresholds), mirroring scikit-learn's regressors of the same names.
//!
//! Trees are fit in parallel with Rayon; per-tree RNG streams are derived
//! from the forest seed so parallel and serial fits produce identical models.

use crate::model::{validate_training_data, FitError, Regressor};
use crate::rng::{derive_seeds, Xoshiro256};
use crate::tree::{DecisionTreeRegressor, Splitter, TreeParams};
use lam_data::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Shared implementation of both forest flavours.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Forest {
    n_estimators: usize,
    params: TreeParams,
    bootstrap: bool,
    seed: u64,
    trees: Vec<DecisionTreeRegressor>,
    n_features: usize,
}

impl Forest {
    /// Build an unfitted forest.
    pub fn new(n_estimators: usize, params: TreeParams, bootstrap: bool, seed: u64) -> Self {
        Self {
            n_estimators,
            params,
            bootstrap,
            seed,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Fitted member trees (empty before `fit`).
    pub fn trees(&self) -> &[DecisionTreeRegressor] {
        &self.trees
    }

    /// Number of member trees requested.
    pub fn n_estimators(&self) -> usize {
        self.n_estimators
    }

    /// Mean impurity-decrease feature importances across member trees.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(t.feature_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        acc
    }

    fn fit_impl(&mut self, data: &Dataset) -> Result<(), FitError> {
        validate_training_data(data)?;
        self.params.validate()?;
        if self.n_estimators == 0 {
            return Err(FitError::Invalid("n_estimators must be >= 1".to_string()));
        }
        self.n_features = data.n_features();
        let seeds = derive_seeds(self.seed, self.n_estimators);
        let bootstrap = self.bootstrap;
        let params = self.params;
        let trees: Result<Vec<DecisionTreeRegressor>, FitError> = seeds
            .par_iter()
            .map(|&tree_seed| {
                let mut tree = DecisionTreeRegressor::new(params, tree_seed);
                if bootstrap {
                    // Bootstrap resample (with replacement) using a stream
                    // independent from the split stream.
                    let mut rng = Xoshiro256::seeded(tree_seed ^ 0xB007_57A9_0000_0001);
                    let n = data.len();
                    let sample: Vec<usize> = (0..n).map(|_| rng.next_below(n)).collect();
                    let boot = data.select(&sample).expect("indices in range");
                    tree.fit(&boot)?;
                } else {
                    tree.fit(data)?;
                }
                Ok(tree)
            })
            .collect();
        self.trees = trees?;
        Ok(())
    }

    fn predict_row_impl(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "forest used before fit");
        let sum: f64 = self.trees.iter().map(|t| t.predict_row(x)).sum();
        sum / self.trees.len() as f64
    }

    /// Mean and population standard deviation of the member-tree
    /// predictions in one streaming Welford pass — no per-row `Vec` of
    /// per-tree predictions is allocated.
    fn predict_row_with_std_impl(&self, x: &[f64]) -> (f64, f64) {
        assert!(!self.trees.is_empty(), "forest used before fit");
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for (k, tree) in self.trees.iter().enumerate() {
            let p = tree.predict_row(x);
            let delta = p - mean;
            mean += delta / (k + 1) as f64;
            m2 += delta * (p - mean);
        }
        // Each Welford term is a product of same-signed factors, so m2 is
        // non-negative and the sqrt is safe.
        (mean, (m2 / self.trees.len() as f64).sqrt())
    }
}

/// Random forest regressor: bootstrap sampling + best-split trees over a
/// random feature subset per split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    inner: Forest,
}

impl RandomForestRegressor {
    /// Construct with explicit tree parameters. The splitter is forced to
    /// `Best` (that is what makes it a random *forest* rather than extra
    /// trees); feature subsampling comes from `params.max_features`.
    pub fn with_params(n_estimators: usize, mut params: TreeParams, seed: u64) -> Self {
        params.splitter = Splitter::Best;
        Self {
            inner: Forest::new(n_estimators, params, true, seed),
        }
    }

    /// scikit-learn-like defaults: 100 trees, all features, bootstrap.
    pub fn new(seed: u64) -> Self {
        Self::with_params(100, TreeParams::default(), seed)
    }

    /// Mean impurity-decrease feature importances.
    pub fn feature_importances(&self) -> Vec<f64> {
        self.inner.feature_importances()
    }

    /// Access the fitted member trees.
    pub fn trees(&self) -> &[DecisionTreeRegressor] {
        self.inner.trees()
    }

    /// Prediction with an uncertainty estimate: the mean and standard
    /// deviation of the member-tree predictions (ensemble disagreement).
    pub fn predict_row_with_std(&self, x: &[f64]) -> (f64, f64) {
        self.inner.predict_row_with_std_impl(x)
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        self.inner.fit_impl(data)
    }
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.inner.predict_row_impl(x)
    }
    fn name(&self) -> &'static str {
        "random_forest"
    }
}

/// Extremely randomized trees: no bootstrap (whole training set per tree),
/// random thresholds per candidate feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtraTreesRegressor {
    inner: Forest,
}

impl ExtraTreesRegressor {
    /// Construct with explicit tree parameters; the splitter is forced to
    /// `Random`.
    pub fn with_params(n_estimators: usize, mut params: TreeParams, seed: u64) -> Self {
        params.splitter = Splitter::Random;
        Self {
            inner: Forest::new(n_estimators, params, false, seed),
        }
    }

    /// scikit-learn-like defaults: 100 trees, all features, no bootstrap.
    pub fn new(seed: u64) -> Self {
        Self::with_params(100, TreeParams::default(), seed)
    }

    /// Enable bootstrap resampling (off by default, as in scikit-learn).
    pub fn with_bootstrap(mut self, bootstrap: bool) -> Self {
        self.inner.bootstrap = bootstrap;
        self
    }

    /// Mean impurity-decrease feature importances.
    pub fn feature_importances(&self) -> Vec<f64> {
        self.inner.feature_importances()
    }

    /// Access the fitted member trees.
    pub fn trees(&self) -> &[DecisionTreeRegressor] {
        self.inner.trees()
    }

    /// Prediction with an uncertainty estimate: the mean and standard
    /// deviation of the member-tree predictions (ensemble disagreement).
    pub fn predict_row_with_std(&self, x: &[f64]) -> (f64, f64) {
        self.inner.predict_row_with_std_impl(x)
    }
}

impl Regressor for ExtraTreesRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        self.inner.fit_impl(data)
    }
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.inner.predict_row_impl(x)
    }
    fn name(&self) -> &'static str {
        "extra_trees"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;
    use crate::tree::MaxFeatures;

    /// y = x0^2 + 3*x1 with mild nonlinearity; 256 points on an 16x16 grid.
    fn surface() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..16 {
            for b in 0..16 {
                let x0 = a as f64 / 4.0;
                let x1 = b as f64 / 4.0;
                rows.push(vec![x0, x1]);
                ys.push(x0 * x0 + 3.0 * x1 + 1.0);
            }
        }
        Dataset::from_rows(vec!["x0".into(), "x1".into()], &rows, ys).unwrap()
    }

    #[test]
    fn random_forest_learns_surface() {
        let d = surface();
        let mut rf = RandomForestRegressor::with_params(60, TreeParams::default(), 3);
        rf.fit(&d).unwrap();
        let preds = rf.predict(&d);
        let err = mape(d.response(), &preds).unwrap();
        assert!(err < 10.0, "train MAPE {err}");
    }

    #[test]
    fn extra_trees_learns_surface() {
        let d = surface();
        let mut et = ExtraTreesRegressor::with_params(60, TreeParams::default(), 3);
        et.fit(&d).unwrap();
        let preds = et.predict(&d);
        let err = mape(d.response(), &preds).unwrap();
        assert!(err < 5.0, "train MAPE {err}");
    }

    #[test]
    fn forest_prediction_is_tree_mean() {
        let d = surface();
        let mut et = ExtraTreesRegressor::with_params(7, TreeParams::default(), 1);
        et.fit(&d).unwrap();
        let x = d.row(10);
        let mean: f64 =
            et.trees().iter().map(|t| t.predict_row(x)).sum::<f64>() / et.trees().len() as f64;
        assert!((et.predict_row(x) - mean).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = surface();
        let mut a = RandomForestRegressor::with_params(20, TreeParams::default(), 9);
        let mut b = RandomForestRegressor::with_params(20, TreeParams::default(), 9);
        a.fit(&d).unwrap();
        b.fit(&d).unwrap();
        for i in 0..d.len() {
            assert_eq!(a.predict_row(d.row(i)), b.predict_row(d.row(i)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Fully grown extra trees interpolate training points exactly, so
        // seed differences only show off-grid: probe between grid nodes.
        let d = surface();
        let mut a = ExtraTreesRegressor::with_params(5, TreeParams::default(), 1);
        let mut b = ExtraTreesRegressor::with_params(5, TreeParams::default(), 2);
        a.fit(&d).unwrap();
        b.fit(&d).unwrap();
        let probes: Vec<[f64; 2]> = (0..60)
            .map(|i| [0.125 + (i % 15) as f64 / 4.0, 0.125 + (i / 15) as f64 / 1.1])
            .collect();
        let same = probes
            .iter()
            .filter(|p| a.predict_row(&p[..]) == b.predict_row(&p[..]))
            .count();
        assert!(same < probes.len(), "seeds produced identical forests");
    }

    #[test]
    fn zero_estimators_rejected() {
        let d = surface();
        let mut f = RandomForestRegressor::with_params(0, TreeParams::default(), 0);
        assert!(matches!(f.fit(&d), Err(FitError::Invalid(_))));
    }

    #[test]
    fn feature_subsampling_works() {
        let d = surface();
        let params = TreeParams {
            max_features: MaxFeatures::Count(1),
            ..TreeParams::default()
        };
        let mut rf = RandomForestRegressor::with_params(40, params, 5);
        rf.fit(&d).unwrap();
        let err = mape(d.response(), &rf.predict(&d)).unwrap();
        assert!(err < 25.0, "train MAPE {err}");
    }

    #[test]
    fn importances_normalized() {
        let d = surface();
        let mut et = ExtraTreesRegressor::with_params(20, TreeParams::default(), 4);
        et.fit(&d).unwrap();
        let imp = et.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uncertainty_larger_off_grid() {
        let d = surface();
        let mut rf = RandomForestRegressor::with_params(40, TreeParams::default(), 2);
        rf.fit(&d).unwrap();
        let (mean_in, std_in) = rf.predict_row_with_std(d.row(100));
        // Far outside the training domain trees disagree via their
        // bootstrap differences much more than on a training point.
        let (_, std_out) = rf.predict_row_with_std(&[40.0, -7.0]);
        assert!(std_in >= 0.0);
        assert!(std_out >= std_in, "in {std_in} out {std_out}");
        assert!((mean_in - rf.predict_row(d.row(100))).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let d = surface();
        let mut et = ExtraTreesRegressor::with_params(5, TreeParams::default(), 4);
        et.fit(&d).unwrap();
        let json = serde_json::to_string(&et).unwrap();
        let back: ExtraTreesRegressor = serde_json::from_str(&json).unwrap();
        for i in 0..d.len() {
            assert_eq!(et.predict_row(d.row(i)), back.predict_row(d.row(i)));
        }
    }
}
