//! Hyperparameter search: exhaustive grid search scored by k-fold
//! cross-validated MAPE.
//!
//! The paper uses scikit-learn defaults throughout; this module supports
//! the workflow a practitioner would actually run on a new application —
//! and the ablation harness uses it to check the defaults are sane.

use crate::metrics::mape;
use crate::model::{FitError, Regressor};
use crate::sampling::k_fold;
use lam_data::Dataset;

/// Result of evaluating one hyperparameter point.
#[derive(Debug, Clone)]
pub struct GridPoint<P> {
    /// The parameter value.
    pub params: P,
    /// Mean cross-validated MAPE (%).
    pub cv_mape: f64,
    /// Per-fold scores.
    pub fold_scores: Vec<f64>,
}

/// Exhaustively evaluate `candidates` with `k`-fold CV; returns all points
/// sorted best-first. `factory(params, seed)` builds a fresh model.
pub fn grid_search<P, F>(
    data: &Dataset,
    candidates: Vec<P>,
    k: usize,
    seed: u64,
    factory: F,
) -> Result<Vec<GridPoint<P>>, FitError>
where
    P: Clone,
    F: Fn(&P, u64) -> Box<dyn Regressor>,
{
    if candidates.is_empty() {
        return Err(FitError::Invalid("no candidates supplied".to_string()));
    }
    if data.len() < k {
        return Err(FitError::Invalid(format!(
            "dataset of {} rows cannot be split into {k} folds",
            data.len()
        )));
    }
    let folds = k_fold(data, k, seed);
    let mut out = Vec::with_capacity(candidates.len());
    for params in candidates {
        let mut fold_scores = Vec::with_capacity(k);
        for (fi, (train, test)) in folds.iter().enumerate() {
            let mut model = factory(&params, seed ^ (fi as u64).wrapping_mul(0x9E37));
            model.fit(train)?;
            let preds = model.predict(test);
            let score = mape(test.response(), &preds)
                .map_err(|e| FitError::Invalid(format!("metric failure: {e}")))?;
            fold_scores.push(score);
        }
        let cv_mape = fold_scores.iter().sum::<f64>() / fold_scores.len() as f64;
        out.push(GridPoint {
            params,
            cv_mape,
            fold_scores,
        });
    }
    out.sort_by(|a, b| a.cv_mape.partial_cmp(&b.cv_mape).expect("finite scores"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ExtraTreesRegressor;
    use crate::knn::KnnRegressor;
    use crate::tree::TreeParams;

    fn dataset() -> Dataset {
        let xs: Vec<f64> = (0..120).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 + x * x).collect();
        Dataset::new(vec!["x".into()], xs, ys).unwrap()
    }

    #[test]
    fn grid_search_ranks_knn_k() {
        // On a smooth noiseless function, small k should beat large k.
        let d = dataset();
        let ranked = grid_search(&d, vec![1usize, 5, 40], 4, 3, |&k, _| {
            Box::new(KnnRegressor::new(k))
        })
        .unwrap();
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].cv_mape <= w[1].cv_mape));
        assert!(ranked[0].params < 40, "best k = {}", ranked[0].params);
    }

    #[test]
    fn grid_search_over_forest_size() {
        let d = dataset();
        let ranked = grid_search(&d, vec![5usize, 50], 3, 1, |&n, seed| {
            Box::new(ExtraTreesRegressor::with_params(
                n,
                TreeParams::default(),
                seed,
            ))
        })
        .unwrap();
        // Bigger forest should not be (much) worse.
        let best = &ranked[0];
        assert!(best.cv_mape <= ranked[1].cv_mape);
        assert_eq!(best.fold_scores.len(), 3);
    }

    #[test]
    fn empty_candidates_rejected() {
        let d = dataset();
        let r = grid_search(&d, Vec::<usize>::new(), 3, 0, |_, _| {
            Box::new(KnnRegressor::new(1))
        });
        assert!(matches!(r, Err(FitError::Invalid(_))));
    }

    #[test]
    fn too_few_rows_rejected() {
        let d = Dataset::new(vec!["x".into()], vec![1.0, 2.0], vec![1.0, 2.0]).unwrap();
        let r = grid_search(&d, vec![1usize], 5, 0, |_, _| {
            Box::new(KnnRegressor::new(1))
        });
        assert!(matches!(r, Err(FitError::Invalid(_))));
    }
}
