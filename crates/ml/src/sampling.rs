//! Training-set construction: uniform random sampling (the paper's method),
//! train/test splitting, and k-fold cross-validation.

use crate::rng::Xoshiro256;
use lam_data::Dataset;

/// Uniformly sample `fraction` of the dataset (without replacement) as the
/// training set; the remainder is the test set. This is exactly the
/// "window size of the training set" protocol in the paper's figures.
///
/// `fraction` is clamped so at least one point lands on each side when the
/// dataset has ≥ 2 rows.
pub fn train_test_split_fraction(data: &Dataset, fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction {fraction} outside [0, 1]"
    );
    let n = data.len();
    let mut k = ((n as f64) * fraction).round() as usize;
    if n >= 2 {
        k = k.clamp(1, n - 1);
    } else {
        k = k.min(n);
    }
    let mut rng = Xoshiro256::seeded(seed);
    let train_idx = rng.sample_indices(n, k);
    data.partition(&train_idx)
        .expect("sampled indices in range")
}

/// Split by an explicit training-set size.
pub fn train_test_split_count(data: &Dataset, n_train: usize, seed: u64) -> (Dataset, Dataset) {
    let n = data.len();
    assert!(n_train <= n, "n_train {n_train} exceeds dataset size {n}");
    let mut rng = Xoshiro256::seeded(seed);
    let train_idx = rng.sample_indices(n, n_train);
    data.partition(&train_idx)
        .expect("sampled indices in range")
}

/// Latin-hypercube-style stratified training split: sort the dataset by a
/// 1-D projection of its features (the row sum of standardized columns),
/// cut it into `k` equal strata, and draw one training point per stratum.
///
/// An extension beyond the paper's uniform sampling: for the same training
/// budget, stratified windows cover the configuration space more evenly and
/// typically lower small-window MAPE.
pub fn train_test_split_stratified(
    data: &Dataset,
    n_train: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    let n = data.len();
    assert!(
        n_train >= 1 && n_train < n,
        "need 1 <= n_train ({n_train}) < rows ({n})"
    );
    // Standardize columns so no single feature dominates the projection.
    let cols = data.n_features();
    let mut mean = vec![0.0; cols];
    let mut var = vec![0.0; cols];
    for i in 0..n {
        for (c, v) in data.row(i).iter().enumerate() {
            mean[c] += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    for i in 0..n {
        for (c, v) in data.row(i).iter().enumerate() {
            var[c] += (v - mean[c]).powi(2);
        }
    }
    let std: Vec<f64> = var
        .iter()
        .map(|v| {
            let s = (v / n as f64).sqrt();
            if s > 0.0 {
                s
            } else {
                1.0
            }
        })
        .collect();
    let score = |i: usize| -> f64 {
        data.row(i)
            .iter()
            .enumerate()
            .map(|(c, v)| (v - mean[c]) / std[c])
            .sum()
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| score(a).partial_cmp(&score(b)).expect("finite features"));
    let mut rng = Xoshiro256::seeded(seed);
    let mut train_idx = Vec::with_capacity(n_train);
    for stratum in 0..n_train {
        let lo = stratum * n / n_train;
        let hi = ((stratum + 1) * n / n_train).max(lo + 1);
        let pick = lo + rng.next_below(hi - lo);
        train_idx.push(order[pick]);
    }
    data.partition(&train_idx).expect("indices in range")
}

/// K-fold cross-validation index sets: returns `k` (train, test) pairs
/// covering the dataset, shuffled by `seed`.
pub fn k_fold(data: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k must be >= 2");
    let n = data.len();
    assert!(n >= k, "dataset smaller than k");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Xoshiro256::seeded(seed);
    rng.shuffle(&mut order);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let test_idx: Vec<usize> = order[lo..hi].to_vec();
        let train_idx: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();
        folds.push((
            data.select(&train_idx).expect("in range"),
            data.select(&test_idx).expect("in range"),
        ));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys = xs.clone();
        Dataset::new(vec!["x".into()], xs, ys).unwrap()
    }

    #[test]
    fn fraction_split_sizes() {
        let d = dataset(100);
        let (train, test) = train_test_split_fraction(&d, 0.2, 1);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 80);
    }

    #[test]
    fn fraction_split_disjoint_and_complete() {
        let d = dataset(50);
        let (train, test) = train_test_split_fraction(&d, 0.3, 7);
        let mut all: Vec<i64> = train
            .response()
            .iter()
            .chain(test.response())
            .map(|&v| v as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn tiny_fraction_clamps_to_one() {
        let d = dataset(10);
        let (train, test) = train_test_split_fraction(&d, 0.001, 3);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 9);
    }

    #[test]
    fn full_fraction_leaves_one_test_point() {
        let d = dataset(10);
        let (train, test) = train_test_split_fraction(&d, 1.0, 3);
        assert_eq!(train.len(), 9);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = dataset(30);
        let (a, _) = train_test_split_fraction(&d, 0.5, 11);
        let (b, _) = train_test_split_fraction(&d, 0.5, 11);
        assert_eq!(a.response(), b.response());
        let (c, _) = train_test_split_fraction(&d, 0.5, 12);
        assert_ne!(a.response(), c.response());
    }

    #[test]
    fn count_split() {
        let d = dataset(10);
        let (train, test) = train_test_split_count(&d, 4, 0);
        assert_eq!(train.len(), 4);
        assert_eq!(test.len(), 6);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn count_split_too_large_panics() {
        let d = dataset(5);
        train_test_split_count(&d, 6, 0);
    }

    #[test]
    fn stratified_split_sizes_and_disjoint() {
        let d = dataset(100);
        let (train, test) = train_test_split_stratified(&d, 10, 3);
        assert_eq!(train.len(), 10);
        assert_eq!(test.len(), 90);
        let mut all: Vec<i64> = train
            .response()
            .iter()
            .chain(test.response())
            .map(|&v| v as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn stratified_split_covers_range() {
        // One pick per stratum → training points spread over the response
        // range (here response == feature).
        let d = dataset(100);
        let (train, _) = train_test_split_stratified(&d, 10, 7);
        let min = train
            .response()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = train.response().iter().cloned().fold(0.0, f64::max);
        assert!(min < 10.0, "lowest stratum sampled: min {min}");
        assert!(max >= 90.0, "highest stratum sampled: max {max}");
    }

    #[test]
    #[should_panic(expected = "n_train")]
    fn stratified_rejects_degenerate_sizes() {
        let d = dataset(10);
        train_test_split_stratified(&d, 10, 0);
    }

    #[test]
    fn k_fold_covers_everything() {
        let d = dataset(25);
        let folds = k_fold(&d, 4, 5);
        assert_eq!(folds.len(), 4);
        let mut test_points: Vec<i64> = folds
            .iter()
            .flat_map(|(_, test)| test.response().iter().map(|&v| v as i64))
            .collect();
        test_points.sort_unstable();
        assert_eq!(test_points, (0..25).collect::<Vec<i64>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 25);
        }
    }
}
