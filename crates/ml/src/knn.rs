//! k-nearest-neighbours regression baseline.
//!
//! Performance-model feature spaces are low-dimensional (4–8 columns), so a
//! brute-force scan is appropriate; features should be standardized first
//! (see [`crate::preprocessing::StandardScaler`]).

use crate::model::{validate_training_data, FitError, Regressor};
use lam_data::Dataset;
use serde::{Deserialize, Serialize};

/// Distance-weighted or uniform k-NN regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    /// Number of neighbours consulted.
    pub k: usize,
    /// Weight predictions by inverse distance when `true`.
    pub distance_weighted: bool,
    train: Option<Dataset>,
}

impl KnnRegressor {
    /// Uniform-weight k-NN.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            distance_weighted: false,
            train: None,
        }
    }

    /// Enable inverse-distance weighting.
    pub fn weighted(mut self) -> Self {
        self.distance_weighted = true;
        self
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        validate_training_data(data)?;
        if self.k == 0 {
            return Err(FitError::Invalid("k must be >= 1".to_string()));
        }
        if self.k > data.len() {
            return Err(FitError::Invalid(format!(
                "k = {} exceeds training size {}",
                self.k,
                data.len()
            )));
        }
        self.train = Some(data.clone());
        Ok(())
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        let train = self.train.as_ref().expect("KnnRegressor used before fit");
        // Collect (distance², y) and partial-select the k smallest.
        let mut dists: Vec<(f64, f64)> =
            train.iter().map(|(row, y)| (sq_dist(row, x), y)).collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let neighbours = &dists[..k];
        if self.distance_weighted {
            let mut wsum = 0.0;
            let mut acc = 0.0;
            for &(d2, y) in neighbours {
                if d2 == 0.0 {
                    return y; // exact match dominates
                }
                let w = 1.0 / d2.sqrt();
                wsum += w;
                acc += w * y;
            }
            acc / wsum
        } else {
            neighbours.iter().map(|&(_, y)| y).sum::<f64>() / k as f64
        }
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..10 {
            rows.push(vec![a as f64]);
            ys.push(a as f64 * 2.0);
        }
        Dataset::from_rows(vec!["x".into()], &rows, ys).unwrap()
    }

    #[test]
    fn one_nn_exact_on_training_points() {
        let d = grid();
        let mut m = KnnRegressor::new(1);
        m.fit(&d).unwrap();
        for (x, y) in d.iter() {
            assert_eq!(m.predict_row(x), y);
        }
    }

    #[test]
    fn three_nn_averages() {
        let d = grid();
        let mut m = KnnRegressor::new(3);
        m.fit(&d).unwrap();
        // Neighbours of 5.0 are {4,5,6} → mean y = 10.
        assert!((m.predict_row(&[5.0]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_exact_match_short_circuits() {
        let d = grid();
        let mut m = KnnRegressor::new(3).weighted();
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[4.0]), 8.0);
    }

    #[test]
    fn weighted_interpolates() {
        let d = grid();
        let mut m = KnnRegressor::new(2).weighted();
        m.fit(&d).unwrap();
        // Halfway between 4 and 5 → equal weights → (8 + 10) / 2.
        let p = m.predict_row(&[4.5]);
        assert!((p - 9.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_k_rejected() {
        let d = grid();
        assert!(matches!(
            KnnRegressor::new(0).fit(&d),
            Err(FitError::Invalid(_))
        ));
        assert!(matches!(
            KnnRegressor::new(11).fit(&d),
            Err(FitError::Invalid(_))
        ));
    }
}
