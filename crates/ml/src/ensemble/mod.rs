//! Ensemble meta-algorithms.
//!
//! The paper's hybrid model is built from exactly these two pieces:
//! *stacking* (one model's prediction feeds the next level as a feature) and
//! *bagging* (resampled replicas of a predictor whose outputs are averaged).
//! Both are generic over [`crate::model::Regressor`], so they compose with
//! trees, forests, linear models, and — in `lam-core` — analytical models
//! wrapped as regressors.

mod bagging;
mod boosting;
mod stacking;

pub use bagging::BaggingRegressor;
pub use boosting::GradientBoostingRegressor;
pub use stacking::StackingRegressor;

/// How an ensemble combines member predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Arithmetic mean of member predictions.
    Mean,
    /// Median of member predictions (robust to one wild member).
    Median,
}

pub(crate) fn aggregate(values: &mut [f64], how: Aggregation) -> f64 {
    debug_assert!(!values.is_empty());
    match how {
        Aggregation::Mean => values.iter().sum::<f64>() / values.len() as f64,
        Aggregation::Median => {
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite predictions"));
            let n = values.len();
            if n % 2 == 1 {
                values[n / 2]
            } else {
                0.5 * (values[n / 2 - 1] + values[n / 2])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        assert_eq!(aggregate(&mut [1.0, 2.0, 9.0], Aggregation::Mean), 4.0);
        assert_eq!(aggregate(&mut [1.0, 2.0, 9.0], Aggregation::Median), 2.0);
        assert_eq!(aggregate(&mut [1.0, 3.0], Aggregation::Median), 2.0);
    }
}
