//! Bootstrap aggregation over any base regressor (Breiman, 1996).

use super::{aggregate, Aggregation};
use crate::model::{validate_training_data, FitError, Regressor};
use crate::rng::{derive_seeds, Xoshiro256};
use lam_data::Dataset;

/// Bagging: fit `n_estimators` clones of a base model on bootstrap resamples
/// and aggregate their predictions.
///
/// The base model is supplied as a factory closure so each replica starts
/// from a fresh, independently seeded instance.
pub struct BaggingRegressor {
    factory: Box<dyn Fn(u64) -> Box<dyn Regressor> + Send + Sync>,
    n_estimators: usize,
    sample_fraction: f64,
    aggregation: Aggregation,
    seed: u64,
    members: Vec<Box<dyn Regressor>>,
}

impl BaggingRegressor {
    /// Create a bagging ensemble. `factory(seed)` must return a fresh
    /// unfitted base model.
    pub fn new<F>(n_estimators: usize, seed: u64, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn Regressor> + Send + Sync + 'static,
    {
        Self {
            factory: Box::new(factory),
            n_estimators,
            sample_fraction: 1.0,
            aggregation: Aggregation::Mean,
            seed,
            members: Vec::new(),
        }
    }

    /// Fraction of the training set drawn (with replacement) per member.
    pub fn with_sample_fraction(mut self, f: f64) -> Self {
        self.sample_fraction = f;
        self
    }

    /// Change how member predictions are combined.
    pub fn with_aggregation(mut self, a: Aggregation) -> Self {
        self.aggregation = a;
        self
    }

    /// Fitted members (empty before `fit`).
    pub fn members(&self) -> &[Box<dyn Regressor>] {
        &self.members
    }
}

impl Regressor for BaggingRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        validate_training_data(data)?;
        if self.n_estimators == 0 {
            return Err(FitError::Invalid("n_estimators must be >= 1".to_string()));
        }
        if !(self.sample_fraction > 0.0 && self.sample_fraction <= 1.0) {
            return Err(FitError::Invalid(format!(
                "sample_fraction {} outside (0, 1]",
                self.sample_fraction
            )));
        }
        let n = data.len();
        let m = ((n as f64) * self.sample_fraction).ceil().max(1.0) as usize;
        let seeds = derive_seeds(self.seed, self.n_estimators);
        let mut members = Vec::with_capacity(self.n_estimators);
        for &s in &seeds {
            let mut rng = Xoshiro256::seeded(s ^ 0xBA66_1276_0000_0001);
            let sample: Vec<usize> = (0..m).map(|_| rng.next_below(n)).collect();
            let boot = data.select(&sample).expect("indices in range");
            let mut model = (self.factory)(s);
            model.fit(&boot)?;
            members.push(model);
        }
        self.members = members;
        Ok(())
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        assert!(!self.members.is_empty(), "BaggingRegressor used before fit");
        let mut preds: Vec<f64> = self.members.iter().map(|m| m.predict_row(x)).collect();
        aggregate(&mut preds, self.aggregation)
    }

    fn name(&self) -> &'static str {
        "bagging"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MeanRegressor;
    use crate::tree::{DecisionTreeRegressor, TreeParams};

    fn line() -> Dataset {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 2.0).collect();
        Dataset::new(vec!["x".into()], xs, ys).unwrap()
    }

    #[test]
    fn bagged_trees_fit_line() {
        let d = line();
        let mut b = BaggingRegressor::new(30, 7, |seed| {
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), seed))
        });
        b.fit(&d).unwrap();
        let pred = b.predict_row(&[32.0]);
        assert!((pred - 98.0).abs() < 6.0, "pred {pred}");
        assert_eq!(b.members().len(), 30);
    }

    #[test]
    fn bagging_of_mean_models_equals_grand_mean_statistically() {
        // Each member predicts its bootstrap mean; the aggregate is close to
        // the overall mean.
        let d = line();
        let grand = d.response().iter().sum::<f64>() / d.len() as f64;
        let mut b = BaggingRegressor::new(64, 1, |_| Box::new(MeanRegressor::new()));
        b.fit(&d).unwrap();
        assert!((b.predict_row(&[0.0]) - grand).abs() < 8.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let d = line();
        let mut b = BaggingRegressor::new(0, 0, |_| Box::new(MeanRegressor::new()));
        assert!(matches!(b.fit(&d), Err(FitError::Invalid(_))));
        let mut b = BaggingRegressor::new(3, 0, |_| Box::new(MeanRegressor::new()))
            .with_sample_fraction(0.0);
        assert!(matches!(b.fit(&d), Err(FitError::Invalid(_))));
    }

    #[test]
    fn median_aggregation_robust() {
        let d = line();
        let mut b = BaggingRegressor::new(9, 5, |seed| {
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), seed))
        })
        .with_aggregation(Aggregation::Median);
        b.fit(&d).unwrap();
        let pred = b.predict_row(&[10.0]);
        assert!((pred - 32.0).abs() < 6.0);
    }

    #[test]
    fn subsampled_bagging_works() {
        let d = line();
        let mut b = BaggingRegressor::new(20, 3, |seed| {
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), seed))
        })
        .with_sample_fraction(0.5);
        b.fit(&d).unwrap();
        let pred = b.predict_row(&[16.0]);
        assert!((pred - 50.0).abs() < 10.0);
    }
}
