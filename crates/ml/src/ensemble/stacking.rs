//! Stacked generalization (Wolpert, 1992): level-0 models' predictions are
//! appended to the feature vector of a level-1 (meta) model.
//!
//! This is the exact mechanism the hybrid model in `lam-core` uses — there
//! the level-0 "model" is the analytical model, whose prediction becomes an
//! additional feature of the machine-learning regressor.

use crate::model::{validate_training_data, FitError, Regressor};
use lam_data::Dataset;

/// Stacking ensemble: `level0` models each contribute one extra feature
/// column; `meta` is trained on the augmented dataset.
pub struct StackingRegressor {
    level0: Vec<Box<dyn Regressor>>,
    meta: Box<dyn Regressor>,
    /// When `true`, level-0 models are (re)fit on the training data before
    /// the meta model; when `false`, they are assumed pre-fitted (the case
    /// for analytical models, which need no training).
    fit_level0: bool,
    fitted: bool,
}

impl StackingRegressor {
    /// Create a stacking ensemble that fits its level-0 models.
    pub fn new(level0: Vec<Box<dyn Regressor>>, meta: Box<dyn Regressor>) -> Self {
        Self {
            level0,
            meta,
            fit_level0: true,
            fitted: false,
        }
    }

    /// Create a stacking ensemble over *pre-fitted* (or training-free)
    /// level-0 models; only the meta model is trained.
    pub fn with_prefit_level0(level0: Vec<Box<dyn Regressor>>, meta: Box<dyn Regressor>) -> Self {
        Self {
            level0,
            meta,
            fit_level0: false,
            fitted: false,
        }
    }

    /// Augment `data` with one column per level-0 model prediction.
    fn augment(&self, data: &Dataset) -> Dataset {
        let mut out = data.clone();
        for (k, m) in self.level0.iter().enumerate() {
            let preds = m.predict(data);
            out = out
                .with_column(&format!("level0_{k}"), &preds)
                .expect("prediction length matches dataset");
        }
        out
    }

    /// Number of level-0 models.
    pub fn n_level0(&self) -> usize {
        self.level0.len()
    }
}

impl Regressor for StackingRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        validate_training_data(data)?;
        if self.level0.is_empty() {
            return Err(FitError::Invalid(
                "stacking needs at least one level-0 model".to_string(),
            ));
        }
        if self.fit_level0 {
            for m in &mut self.level0 {
                m.fit(data)?;
            }
        }
        let augmented = self.augment(data);
        self.meta.fit(&augmented)?;
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        assert!(self.fitted, "StackingRegressor used before fit");
        let mut augmented = Vec::with_capacity(x.len() + self.level0.len());
        augmented.extend_from_slice(x);
        for m in &self.level0 {
            augmented.push(m.predict_row(x));
        }
        self.meta.predict_row(&augmented)
    }

    fn name(&self) -> &'static str {
        "stacking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegressor;
    use crate::model::MeanRegressor;
    use crate::tree::{DecisionTreeRegressor, TreeParams};

    fn quadratic() -> Dataset {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 / 4.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x + 1.0).collect();
        Dataset::new(vec!["x".into()], xs, ys).unwrap()
    }

    #[test]
    fn stacking_tree_on_linear_beats_linear() {
        let d = quadratic();
        let mut lin = LinearRegressor::default();
        lin.fit(&d).unwrap();
        let lin_sse: f64 = d
            .iter()
            .map(|(x, y)| (lin.predict_row(x) - y).powi(2))
            .sum();

        let mut stack = StackingRegressor::new(
            vec![Box::new(LinearRegressor::default())],
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), 0)),
        );
        stack.fit(&d).unwrap();
        let stack_sse: f64 = d
            .iter()
            .map(|(x, y)| (stack.predict_row(x) - y).powi(2))
            .sum();
        assert!(stack_sse < lin_sse * 0.1, "stack {stack_sse} lin {lin_sse}");
    }

    #[test]
    fn prefit_level0_not_refit() {
        // Pre-fit a mean model on dataset A, stack on dataset B: the level-0
        // prediction must still come from A's mean.
        let a = Dataset::new(vec!["x".into()], vec![0.0, 1.0], vec![100.0, 100.0]).unwrap();
        let b = quadratic();
        let mut level0 = MeanRegressor::new();
        level0.fit(&a).unwrap();
        let mut stack = StackingRegressor::with_prefit_level0(
            vec![Box::new(level0)],
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), 0)),
        );
        stack.fit(&b).unwrap();
        // works and still predicts b's targets on training points
        let err: f64 = b
            .iter()
            .map(|(x, y)| (stack.predict_row(x) - y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9);
    }

    #[test]
    fn empty_level0_rejected() {
        let d = quadratic();
        let mut stack = StackingRegressor::new(vec![], Box::new(MeanRegressor::new()));
        assert!(matches!(stack.fit(&d), Err(FitError::Invalid(_))));
    }

    #[test]
    fn multiple_level0_models() {
        let d = quadratic();
        let mut stack = StackingRegressor::new(
            vec![
                Box::new(LinearRegressor::default()),
                Box::new(MeanRegressor::new()),
            ],
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), 0)),
        );
        stack.fit(&d).unwrap();
        assert_eq!(stack.n_level0(), 2);
        let (x, y) = (d.row(5), d.response()[5]);
        assert!((stack.predict_row(x) - y).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn unfitted_panics() {
        let stack = StackingRegressor::new(
            vec![Box::new(MeanRegressor::new())],
            Box::new(MeanRegressor::new()),
        );
        stack.predict_row(&[1.0]);
    }
}
