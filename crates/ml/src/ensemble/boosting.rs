//! Gradient-boosted regression trees (least-squares boosting).
//!
//! An extension beyond the paper's model zoo: each stage fits a shallow
//! tree to the current residuals and is added with a learning rate. Useful
//! as a stronger pure-ML baseline in the experiment harness and as an
//! alternative hybrid base.

use super::super::model::{validate_training_data, FitError, Regressor};
use super::super::tree::{DecisionTreeRegressor, TreeParams};
use lam_data::Dataset;
use serde::{Deserialize, Serialize};

/// Least-squares gradient boosting over CART trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoostingRegressor {
    /// Boosting stages.
    pub n_estimators: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Parameters of the stage trees (depth defaults to 3).
    pub tree_params: TreeParams,
    seed: u64,
    base: f64,
    stages: Vec<DecisionTreeRegressor>,
}

impl GradientBoostingRegressor {
    /// Standard configuration: `n` stages, learning rate `lr`, depth-3
    /// stage trees.
    pub fn new(n_estimators: usize, learning_rate: f64, seed: u64) -> Self {
        Self {
            n_estimators,
            learning_rate,
            tree_params: TreeParams {
                max_depth: Some(3),
                ..TreeParams::default()
            },
            seed,
            base: 0.0,
            stages: Vec::new(),
        }
    }

    /// Override the stage-tree parameters.
    pub fn with_tree_params(mut self, params: TreeParams) -> Self {
        self.tree_params = params;
        self
    }

    /// Number of fitted stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// The fitted stage trees (empty before `fit`).
    pub fn stages(&self) -> &[DecisionTreeRegressor] {
        &self.stages
    }

    /// The base (mean-response) prediction every stage corrects (0 before
    /// `fit`).
    pub fn base_prediction(&self) -> f64 {
        self.base
    }

    /// Staged prediction: value after each boosting stage (for monitoring
    /// or early stopping).
    pub fn staged_predict_row(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = self.base;
        self.stages
            .iter()
            .map(|t| {
                acc += self.learning_rate * t.predict_row(x);
                acc
            })
            .collect()
    }
}

impl Regressor for GradientBoostingRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        validate_training_data(data)?;
        if self.n_estimators == 0 {
            return Err(FitError::Invalid("n_estimators must be >= 1".to_string()));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(FitError::Invalid(format!(
                "learning_rate {} outside (0, 1]",
                self.learning_rate
            )));
        }
        self.tree_params.validate()?;
        self.stages.clear();
        // Base prediction: the mean (the LS-optimal constant).
        self.base = data.response().iter().sum::<f64>() / data.len() as f64;
        let mut residuals: Vec<f64> = data.response().iter().map(|y| y - self.base).collect();
        let seeds = crate::rng::derive_seeds(self.seed, self.n_estimators);
        for &stage_seed in &seeds {
            let stage_data = Dataset::new(
                data.feature_names().to_vec(),
                data.features().to_vec(),
                residuals.clone(),
            )
            .expect("shape preserved");
            let mut tree = DecisionTreeRegressor::new(self.tree_params, stage_seed);
            tree.fit(&stage_data)?;
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= self.learning_rate * tree.predict_row(data.row(i));
            }
            self.stages.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        assert!(
            !self.stages.is_empty(),
            "GradientBoostingRegressor used before fit"
        );
        self.base + self.learning_rate * self.stages.iter().map(|t| t.predict_row(x)).sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "gradient_boosting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    fn wave() -> Dataset {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 10.0 + x + 2.0 * x.sin()).collect();
        Dataset::new(vec!["x".into()], xs, ys).unwrap()
    }

    #[test]
    fn boosting_fits_nonlinear_target() {
        let d = wave();
        let mut g = GradientBoostingRegressor::new(200, 0.1, 1);
        g.fit(&d).unwrap();
        let err = mape(d.response(), &g.predict(&d)).unwrap();
        assert!(err < 1.0, "train MAPE {err}");
    }

    #[test]
    fn more_stages_fit_better() {
        let d = wave();
        let mut few = GradientBoostingRegressor::new(10, 0.1, 1);
        let mut many = GradientBoostingRegressor::new(150, 0.1, 1);
        few.fit(&d).unwrap();
        many.fit(&d).unwrap();
        let e_few = mape(d.response(), &few.predict(&d)).unwrap();
        let e_many = mape(d.response(), &many.predict(&d)).unwrap();
        assert!(e_many < e_few, "few {e_few} many {e_many}");
    }

    #[test]
    fn staged_predictions_converge_monotonically_on_mean_start() {
        let d = wave();
        let mut g = GradientBoostingRegressor::new(50, 0.2, 2);
        g.fit(&d).unwrap();
        let staged = g.staged_predict_row(d.row(100));
        assert_eq!(staged.len(), 50);
        let finals = *staged.last().unwrap();
        assert!((finals - g.predict_row(d.row(100))).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = wave();
        assert!(GradientBoostingRegressor::new(0, 0.1, 0).fit(&d).is_err());
        assert!(GradientBoostingRegressor::new(10, 0.0, 0).fit(&d).is_err());
        assert!(GradientBoostingRegressor::new(10, 1.5, 0).fit(&d).is_err());
    }

    #[test]
    fn constant_target_handled() {
        let d = Dataset::new(vec!["x".into()], vec![1.0, 2.0, 3.0], vec![5.0; 3]).unwrap();
        let mut g = GradientBoostingRegressor::new(5, 0.5, 0);
        g.fit(&d).unwrap();
        assert!((g.predict_row(&[2.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let d = wave();
        let mut g = GradientBoostingRegressor::new(20, 0.1, 3);
        g.fit(&d).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: GradientBoostingRegressor = serde_json::from_str(&json).unwrap();
        assert_eq!(g.predict_row(d.row(7)), back.predict_row(d.row(7)));
    }
}
