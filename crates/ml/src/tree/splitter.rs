//! Split search: candidate-feature selection plus *best* (exhaustive scan
//! over sorted cut points) and *random* (extra-trees style uniform
//! threshold) strategies, both scored by variance reduction.

use super::TreeParams;
use crate::rng::Xoshiro256;
use lam_data::Dataset;
use serde::{Deserialize, Serialize};

/// How many features a split considers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// All features (scikit-learn default for regression).
    All,
    /// `ceil(sqrt(n_features))`.
    Sqrt,
    /// `ceil(log2(n_features))`.
    Log2,
    /// A fraction of features in `(0, 1]`.
    Fraction(f64),
    /// An explicit count (clamped to `n_features`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolve to a concrete count for `n_features` columns (≥ 1).
    pub fn resolve(self, n_features: usize) -> usize {
        let k = match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (n_features as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Fraction(f) => ((n_features as f64) * f).ceil() as usize,
            MaxFeatures::Count(c) => c,
        };
        k.clamp(1, n_features)
    }
}

/// Split strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Splitter {
    /// Scan every cut point of every candidate feature (CART).
    Best,
    /// One uniform-random threshold per candidate feature (extra trees).
    Random,
}

/// A chosen split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// Feature column.
    pub feature: usize,
    /// Threshold (`<=` goes left).
    pub threshold: f64,
    /// Sum-of-squared-deviations reduction relative to the unsplit node.
    pub improvement: f64,
}

/// Find the best split of `indices` under `params`, or `None` when no valid
/// split exists (all candidate features constant, or leaf constraints
/// unsatisfiable).
pub fn find_split(
    data: &Dataset,
    indices: &[usize],
    params: &TreeParams,
    rng: &mut Xoshiro256,
) -> Option<SplitCandidate> {
    let n = indices.len();
    let n_features = data.n_features();
    let k = params.max_features.resolve(n_features);

    // Candidate features: all, or a random subset without replacement.
    let candidates: Vec<usize> = if k == n_features {
        (0..n_features).collect()
    } else {
        rng.sample_indices(n_features, k)
    };

    // Node-level statistics for improvement computation.
    let sum: f64 = indices.iter().map(|&i| data.response()[i]).sum();
    let sum_sq: f64 = indices
        .iter()
        .map(|&i| {
            let y = data.response()[i];
            y * y
        })
        .sum();
    let parent_ssd = sum_sq - sum * sum / n as f64;

    let mut best: Option<SplitCandidate> = None;
    let mut consider = |cand: SplitCandidate| {
        if cand.improvement > best.map_or(1e-18, |b| b.improvement) {
            best = Some(cand);
        }
    };

    match params.splitter {
        Splitter::Best => {
            // Reusable buffer of (value, y) pairs.
            let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
            for &f in &candidates {
                pairs.clear();
                pairs.extend(
                    indices
                        .iter()
                        .map(|&i| (data.row(i)[f], data.response()[i])),
                );
                pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
                if pairs[0].0 == pairs[n - 1].0 {
                    continue; // constant feature
                }
                // Prefix scan: try every boundary between distinct values.
                let mut left_sum = 0.0;
                let mut left_sq = 0.0;
                for cut in 1..n {
                    let (v_prev, y_prev) = pairs[cut - 1];
                    left_sum += y_prev;
                    left_sq += y_prev * y_prev;
                    let v_next = pairs[cut].0;
                    if v_next <= v_prev {
                        continue; // same feature value; not a valid boundary
                    }
                    if cut < params.min_samples_leaf || n - cut < params.min_samples_leaf {
                        continue;
                    }
                    let right_sum = sum - left_sum;
                    let right_sq = sum_sq - left_sq;
                    let left_ssd = left_sq - left_sum * left_sum / cut as f64;
                    let right_ssd = right_sq - right_sum * right_sum / (n - cut) as f64;
                    let improvement = parent_ssd - left_ssd - right_ssd;
                    // Midpoint threshold, as in CART; guards against placing
                    // the threshold exactly on a sample value.
                    let threshold = v_prev + 0.5 * (v_next - v_prev);
                    consider(SplitCandidate {
                        feature: f,
                        threshold,
                        improvement,
                    });
                }
            }
        }
        Splitter::Random => {
            for &f in &candidates {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &i in indices {
                    let v = data.row(i)[f];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi <= lo {
                    continue; // constant feature
                }
                let threshold = rng.next_range(lo, hi);
                let mut left_n = 0usize;
                let mut left_sum = 0.0;
                let mut left_sq = 0.0;
                for &i in indices {
                    if data.row(i)[f] <= threshold {
                        let y = data.response()[i];
                        left_n += 1;
                        left_sum += y;
                        left_sq += y * y;
                    }
                }
                let right_n = n - left_n;
                if left_n < params.min_samples_leaf || right_n < params.min_samples_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                let right_sq = sum_sq - left_sq;
                let left_ssd = left_sq - left_sum * left_sum / left_n as f64;
                let right_ssd = right_sq - right_sum * right_sum / right_n as f64;
                consider(SplitCandidate {
                    feature: f,
                    threshold,
                    improvement: parent_ssd - left_ssd - right_ssd,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        // y jumps from 0 to 10 at x = 4.5 → best split threshold near 4.5.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 4.5 { 0.0 } else { 10.0 })
            .collect();
        Dataset::new(vec!["x".into()], xs, ys).unwrap()
    }

    #[test]
    fn best_split_finds_step() {
        let d = step_data();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = Xoshiro256::seeded(0);
        let s = find_split(&d, &idx, &TreeParams::default(), &mut rng).unwrap();
        assert_eq!(s.feature, 0);
        assert!(
            (s.threshold - 4.5).abs() < 1e-12,
            "threshold {}",
            s.threshold
        );
        // Perfect split removes all variance: improvement == parent SSD == 250.
        assert!((s.improvement - 250.0).abs() < 1e-9);
    }

    #[test]
    fn constant_feature_yields_none() {
        let d = Dataset::new(
            vec!["x".into()],
            vec![1.0; 6],
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let idx: Vec<usize> = (0..6).collect();
        let mut rng = Xoshiro256::seeded(0);
        assert!(find_split(&d, &idx, &TreeParams::default(), &mut rng).is_none());
        let params = TreeParams {
            splitter: Splitter::Random,
            ..TreeParams::default()
        };
        assert!(find_split(&d, &idx, &params, &mut rng).is_none());
    }

    #[test]
    fn min_samples_leaf_blocks_edge_cuts() {
        let d = step_data();
        let idx: Vec<usize> = (0..d.len()).collect();
        let mut rng = Xoshiro256::seeded(0);
        let params = TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        };
        let s = find_split(&d, &idx, &params, &mut rng).unwrap();
        // Only the 5|5 cut is allowed; it happens to be the step.
        assert!((s.threshold - 4.5).abs() < 1e-12);
        let params = TreeParams {
            min_samples_leaf: 6,
            ..TreeParams::default()
        };
        assert!(find_split(&d, &idx, &params, &mut rng).is_none());
    }

    #[test]
    fn random_split_within_range() {
        let d = step_data();
        let idx: Vec<usize> = (0..d.len()).collect();
        let params = TreeParams {
            splitter: Splitter::Random,
            ..TreeParams::default()
        };
        for seed in 0..20 {
            let mut rng = Xoshiro256::seeded(seed);
            if let Some(s) = find_split(&d, &idx, &params, &mut rng) {
                assert!(s.threshold >= 0.0 && s.threshold < 9.0);
                assert!(s.improvement > 0.0);
            }
        }
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Log2.resolve(8), 3);
        assert_eq!(MaxFeatures::Log2.resolve(1), 1);
        assert_eq!(MaxFeatures::Fraction(0.5).resolve(10), 5);
        assert_eq!(MaxFeatures::Fraction(0.01).resolve(10), 1);
        assert_eq!(MaxFeatures::Count(3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(30).resolve(10), 10);
    }

    #[test]
    fn ties_in_feature_values_not_split() {
        // Two distinct values only; the only valid boundary is between them.
        let d = Dataset::new(
            vec!["x".into()],
            vec![1.0, 1.0, 2.0, 2.0],
            vec![0.0, 0.0, 8.0, 8.0],
        )
        .unwrap();
        let idx: Vec<usize> = (0..4).collect();
        let mut rng = Xoshiro256::seeded(0);
        let s = find_split(&d, &idx, &TreeParams::default(), &mut rng).unwrap();
        assert!((s.threshold - 1.5).abs() < 1e-12);
    }

    #[test]
    fn two_features_picks_informative_one() {
        // Feature 0 is noise-free signal, feature 1 is constant.
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 3.0]).collect();
        let ys: Vec<f64> = (0..12).map(|i| if i < 6 { 0.0 } else { 1.0 }).collect();
        let d = Dataset::from_rows(vec!["sig".into(), "const".into()], &rows, ys).unwrap();
        let idx: Vec<usize> = (0..12).collect();
        let mut rng = Xoshiro256::seeded(1);
        let s = find_split(&d, &idx, &TreeParams::default(), &mut rng).unwrap();
        assert_eq!(s.feature, 0);
    }
}
