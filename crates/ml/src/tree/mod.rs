//! CART regression trees.
//!
//! Two split strategies are provided, matching scikit-learn's
//! `DecisionTreeRegressor(splitter="best")` and the per-tree behaviour of
//! `ExtraTreesRegressor` (`splitter="random"`): *best* sorts each candidate
//! feature and scans every cut point; *random* draws one uniform threshold
//! per candidate feature and keeps the best of those. The split criterion is
//! variance reduction (sum-of-squared-deviations improvement).

mod node;
mod splitter;

pub use node::{Node, NodeId};
pub use splitter::{MaxFeatures, SplitCandidate, Splitter};

use crate::model::{validate_training_data, FitError, Regressor};
use crate::rng::Xoshiro256;
use lam_data::Dataset;
use serde::{Deserialize, Serialize};

/// Hyperparameters shared by single trees and forests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth; `None` grows until pure/exhausted.
    pub max_depth: Option<usize>,
    /// Minimum number of samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum number of samples required in each leaf.
    pub min_samples_leaf: usize,
    /// How many features to consider per split.
    pub max_features: MaxFeatures,
    /// Split strategy.
    pub splitter: Splitter,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            splitter: Splitter::Best,
        }
    }
}

impl TreeParams {
    /// Validate parameter sanity before fitting.
    pub fn validate(&self) -> Result<(), FitError> {
        if self.min_samples_split < 2 {
            return Err(FitError::Invalid(
                "min_samples_split must be >= 2".to_string(),
            ));
        }
        if self.min_samples_leaf == 0 {
            return Err(FitError::Invalid(
                "min_samples_leaf must be >= 1".to_string(),
            ));
        }
        if let MaxFeatures::Fraction(f) = self.max_features {
            if !(f > 0.0 && f <= 1.0) {
                return Err(FitError::Invalid(format!(
                    "max_features fraction {f} outside (0, 1]"
                )));
            }
        }
        if let MaxFeatures::Count(0) = self.max_features {
            return Err(FitError::Invalid(
                "max_features count must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// A fitted (or not yet fitted) CART regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    params: TreeParams,
    seed: u64,
    nodes: Vec<Node>,
    n_features: usize,
}

impl Default for DecisionTreeRegressor {
    fn default() -> Self {
        Self::new(TreeParams::default(), 0)
    }
}

impl DecisionTreeRegressor {
    /// Create an unfitted tree with the given parameters and RNG seed (the
    /// seed matters for `Splitter::Random` and feature subsampling).
    pub fn new(params: TreeParams, seed: u64) -> Self {
        Self {
            params,
            seed,
            nodes: Vec::new(),
            n_features: 0,
        }
    }

    /// The tree's hyperparameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// `true` once `fit` has succeeded.
    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of feature columns seen at fit time (0 before fitting).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The flat node storage (empty before fitting). Crate-internal: the
    /// arena compiler lowers these into its SoA layout.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves in the fitted tree.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the fitted tree (a lone root leaf has depth 0).
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        self.depth_of(0)
    }

    fn depth_of(&self, id: usize) -> usize {
        match self.nodes[id] {
            Node::Leaf { .. } => 0,
            Node::Internal { left, right, .. } => 1 + self.depth_of(left).max(self.depth_of(right)),
        }
    }

    /// Impurity-decrease feature importances, normalized to sum to 1
    /// (all-zero when the tree is a single leaf).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for n in &self.nodes {
            if let Node::Internal {
                feature,
                improvement,
                ..
            } = *n
            {
                imp[feature as usize] += improvement;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        rng: &mut Xoshiro256,
    ) -> NodeId {
        let ys: Vec<f64> = indices.iter().map(|&i| data.response()[i]).collect();
        let n = ys.len();
        let mean = ys.iter().sum::<f64>() / n as f64;

        let stop = n < self.params.min_samples_split
            || self.params.max_depth.is_some_and(|d| depth >= d)
            || ys.iter().all(|&y| (y - ys[0]).abs() < 1e-30);

        if !stop {
            if let Some(split) = splitter::find_split(data, indices, &self.params, rng) {
                // Partition indices in place around the chosen threshold.
                let mid = partition_in_place(data, indices, split.feature, split.threshold);
                // A degenerate partition can only happen with pathological
                // float behaviour; fall through to a leaf in that case.
                if mid > 0 && mid < n {
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                    let (left_idx, right_idx) = indices.split_at_mut(mid);
                    let left = self.build(data, left_idx, depth + 1, rng);
                    let right = self.build(data, right_idx, depth + 1, rng);
                    self.nodes[id] = Node::Internal {
                        feature: split.feature as u32,
                        threshold: split.threshold,
                        left,
                        right,
                        improvement: split.improvement,
                    };
                    return id as NodeId;
                }
            }
        }

        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        id as NodeId
    }
}

/// Partition `indices` so rows with `feature <= threshold` come first;
/// returns the boundary position.
fn partition_in_place(
    data: &Dataset,
    indices: &mut [usize],
    feature: usize,
    threshold: f64,
) -> usize {
    let mut lo = 0usize;
    let mut hi = indices.len();
    while lo < hi {
        if data.row(indices[lo])[feature] <= threshold {
            lo += 1;
        } else {
            hi -= 1;
            indices.swap(lo, hi);
        }
    }
    lo
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        validate_training_data(data)?;
        self.params.validate()?;
        self.nodes.clear();
        self.n_features = data.n_features();
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let mut rng = Xoshiro256::seeded(self.seed);
        let root = self.build(data, &mut indices, 0, &mut rng);
        debug_assert_eq!(root, 0);
        Ok(())
    }

    /// Walk the tree to a leaf. Fitted-ness is *not* re-checked per call
    /// (hoisted to fit/compile time — see [`crate::compile`]); calling an
    /// unfitted tree panics on the root index instead of an assert, and
    /// compiled use surfaces a typed
    /// [`crate::compile::CompileError::NotFitted`] up front.
    fn predict_row(&self, x: &[f64]) -> f64 {
        let mut id = 0usize;
        loop {
            match self.nodes[id] {
                Node::Leaf { value } => return value,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    id = if x[feature as usize] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        match self.params.splitter {
            Splitter::Best => "decision_tree",
            Splitter::Random => "extra_tree",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like() -> Dataset {
        // Response depends on both features: y = x0 + 10*x1.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                rows.push(vec![a as f64, b as f64]);
                ys.push(a as f64 + 10.0 * b as f64);
            }
        }
        Dataset::from_rows(vec!["a".into(), "b".into()], &rows, ys).unwrap()
    }

    #[test]
    fn fits_training_data_exactly_when_unbounded() {
        let d = xor_like();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        for (x, y) in d.iter() {
            assert!((t.predict_row(x) - y).abs() < 1e-12);
        }
        assert!(t.is_fitted());
        assert!(t.n_leaves() >= 64);
    }

    #[test]
    fn max_depth_limits_depth() {
        let d = xor_like();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                max_depth: Some(3),
                ..TreeParams::default()
            },
            0,
        );
        t.fit(&d).unwrap();
        assert!(t.depth() <= 3, "depth {}", t.depth());
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = xor_like();
        let leaf = 5;
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                min_samples_leaf: leaf,
                ..TreeParams::default()
            },
            0,
        );
        t.fit(&d).unwrap();
        // With 64 samples and min leaf 5, there can be at most 12 leaves.
        assert!(t.n_leaves() <= 64 / leaf);
    }

    #[test]
    fn constant_target_single_leaf() {
        let d = Dataset::new(
            vec!["x".into()],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![7.0, 7.0, 7.0, 7.0],
        )
        .unwrap();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_row(&[2.5]), 7.0);
    }

    #[test]
    fn random_splitter_still_learns() {
        let d = xor_like();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                splitter: Splitter::Random,
                ..TreeParams::default()
            },
            42,
        );
        t.fit(&d).unwrap();
        // Fully grown random tree also interpolates training data.
        for (x, y) in d.iter() {
            assert!((t.predict_row(x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn refit_replaces_model() {
        let d1 = Dataset::new(vec!["x".into()], vec![0.0, 1.0], vec![0.0, 0.0]).unwrap();
        let d2 = Dataset::new(vec!["x".into()], vec![0.0, 1.0], vec![5.0, 5.0]).unwrap();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d1).unwrap();
        assert_eq!(t.predict_row(&[0.5]), 0.0);
        t.fit(&d2).unwrap();
        assert_eq!(t.predict_row(&[0.5]), 5.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let d = xor_like();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                min_samples_split: 1,
                ..TreeParams::default()
            },
            0,
        );
        assert!(matches!(t.fit(&d), Err(FitError::Invalid(_))));
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                min_samples_leaf: 0,
                ..TreeParams::default()
            },
            0,
        );
        assert!(matches!(t.fit(&d), Err(FitError::Invalid(_))));
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                max_features: MaxFeatures::Fraction(1.5),
                ..TreeParams::default()
            },
            0,
        );
        assert!(matches!(t.fit(&d), Err(FitError::Invalid(_))));
    }

    #[test]
    fn feature_importances_identify_dominant_feature() {
        let d = xor_like(); // y = a + 10*b, so b dominates variance
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        let imp = t.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > imp[0], "importances {imp:?}");
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let d = xor_like();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTreeRegressor = serde_json::from_str(&json).unwrap();
        for (x, _) in d.iter() {
            assert_eq!(t.predict_row(x), back.predict_row(x));
        }
    }

    #[test]
    fn partition_in_place_splits_correctly() {
        let d = Dataset::new(
            vec!["x".into()],
            vec![5.0, 1.0, 3.0, 2.0, 4.0],
            vec![0.0; 5],
        )
        .unwrap();
        let mut idx = vec![0, 1, 2, 3, 4];
        let mid = partition_in_place(&d, &mut idx, 0, 2.5);
        assert_eq!(mid, 2);
        for &i in &idx[..mid] {
            assert!(d.row(i)[0] <= 2.5);
        }
        for &i in &idx[mid..] {
            assert!(d.row(i)[0] > 2.5);
        }
    }
}
