//! Flat tree-node storage.
//!
//! Nodes live in one `Vec` and reference children by index, which keeps a
//! fitted tree in a single allocation (cache-friendly prediction walks, cheap
//! serde).

use serde::{Deserialize, Serialize};

/// Index of a node within its tree's node vector.
pub type NodeId = usize;

/// One tree node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node carrying the mean response of its training samples.
    Leaf {
        /// Predicted value.
        value: f64,
    },
    /// Internal split: `x[feature] <= threshold` goes left, else right.
    Internal {
        /// Feature column index.
        feature: u32,
        /// Split threshold.
        threshold: f64,
        /// Left child id.
        left: NodeId,
        /// Right child id.
        right: NodeId,
        /// Sum-of-squared-deviations improvement achieved by this split
        /// (used for feature importances).
        improvement: f64,
    },
}

impl Node {
    /// `true` for leaves.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_detection() {
        assert!(Node::Leaf { value: 1.0 }.is_leaf());
        assert!(!Node::Internal {
            feature: 0,
            threshold: 0.5,
            left: 1,
            right: 2,
            improvement: 0.0
        }
        .is_leaf());
    }

    #[test]
    fn serde_round_trip() {
        let n = Node::Internal {
            feature: 3,
            threshold: 1.25,
            left: 10,
            right: 11,
            improvement: 2.5,
        };
        let s = serde_json::to_string(&n).unwrap();
        let back: Node = serde_json::from_str(&s).unwrap();
        assert_eq!(n, back);
    }
}
