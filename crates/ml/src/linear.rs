//! Linear least-squares baseline (with optional ridge regularization),
//! solved by normal equations + Gaussian elimination with partial pivoting.
//!
//! Used as a meta-learner option and as a weak baseline in the experiment
//! reports; the feature counts here are tiny (≤ 10), so the dense solver is
//! the right tool.

use crate::model::{validate_training_data, FitError, Regressor};
use lam_data::Dataset;
use serde::{Deserialize, Serialize};

/// Ordinary least squares / ridge regression with an intercept.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRegressor {
    /// L2 penalty (0 = OLS). The intercept is never penalized.
    pub ridge: f64,
    coef: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl Default for LinearRegressor {
    fn default() -> Self {
        Self::new(0.0)
    }
}

impl LinearRegressor {
    /// Create with the given ridge penalty (`0.0` for plain OLS).
    pub fn new(ridge: f64) -> Self {
        Self {
            ridge,
            coef: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Fitted coefficients (empty before fit).
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Solve `A x = b` for a dense symmetric-ish system via Gaussian elimination
/// with partial pivoting. Returns `None` for singular systems.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot: largest |value| in this column at or below the diagonal.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (off, row) in rest.iter_mut().enumerate() {
            let factor = row[col] / diag;
            if factor == 0.0 {
                continue;
            }
            for (rk, pk) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *rk -= factor * pk;
            }
            b[col + 1 + off] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

impl Regressor for LinearRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        validate_training_data(data)?;
        if self.ridge < 0.0 {
            return Err(FitError::Invalid("ridge penalty must be >= 0".to_string()));
        }
        let p = data.n_features();
        let n = data.len();
        // Augmented design: [x, 1] → normal equations of size (p+1).
        let dim = p + 1;
        let mut xtx = vec![vec![0.0; dim]; dim];
        let mut xty = vec![0.0; dim];
        for i in 0..n {
            let row = data.row(i);
            let y = data.response()[i];
            for a in 0..dim {
                let xa = if a < p { row[a] } else { 1.0 };
                xty[a] += xa * y;
                for b in a..dim {
                    let xb = if b < p { row[b] } else { 1.0 };
                    xtx[a][b] += xa * xb;
                }
            }
        }
        // Mirror the upper triangle and add the ridge penalty (not on the
        // intercept). Index loops: the symmetric mirror is clearest with
        // explicit coordinates.
        #[allow(clippy::needless_range_loop)]
        for a in 0..dim {
            for b in 0..a {
                let mirrored = xtx[b][a];
                xtx[a][b] = mirrored;
            }
        }
        for (a, row) in xtx.iter_mut().enumerate().take(p) {
            row[a] += self.ridge;
        }
        let solution = solve_dense(xtx, xty).ok_or_else(|| {
            FitError::Invalid("singular design matrix; add ridge regularization".to_string())
        })?;
        self.intercept = solution[p];
        self.coef = solution[..p].to_vec();
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        assert!(self.fitted, "LinearRegressor used before fit");
        self.intercept + self.coef.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 2.0).collect();
        let d = Dataset::new(vec!["x".into()], xs, ys).unwrap();
        let mut m = LinearRegressor::default();
        m.fit(&d).unwrap();
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-9);
        assert!((m.intercept() + 2.0).abs() < 1e-9);
        assert!((m.predict_row(&[100.0]) - 298.0).abs() < 1e-6);
    }

    #[test]
    fn two_features() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                rows.push(vec![a as f64, b as f64]);
                ys.push(2.0 * a as f64 - 1.0 * b as f64 + 0.5);
            }
        }
        let d = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, ys).unwrap();
        let mut m = LinearRegressor::default();
        m.fit(&d).unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((m.coefficients()[1] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn singular_without_ridge_errors() {
        // Duplicate column → singular normal equations.
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let d =
            Dataset::from_rows(vec!["a".into(), "b".into()], &rows, vec![1.0, 2.0, 3.0]).unwrap();
        let mut m = LinearRegressor::default();
        assert!(matches!(m.fit(&d), Err(FitError::Invalid(_))));
        // Ridge fixes it.
        let mut m = LinearRegressor::new(1e-6);
        m.fit(&d).unwrap();
        assert!((m.predict_row(&[2.0, 2.0]) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn negative_ridge_rejected() {
        let d = Dataset::new(vec!["x".into()], vec![1.0, 2.0], vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            LinearRegressor::new(-1.0).fit(&d),
            Err(FitError::Invalid(_))
        ));
    }

    #[test]
    fn solver_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_dense(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solver_pivoting() {
        // Requires a row swap to avoid dividing by ~0.
        let a = vec![vec![1e-16, 1.0], vec![1.0, 1.0]];
        let x = solve_dense(a, vec![1.0, 2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solver_singular_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_none());
    }
}
