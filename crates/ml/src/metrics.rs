//! Regression error metrics. MAPE is the paper's headline score; the others
//! support the wider experiment reports.

/// Error from metric computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// The two slices differ in length.
    LengthMismatch,
    /// No observations.
    Empty,
    /// MAPE undefined: a true value is zero.
    ZeroTruth,
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::LengthMismatch => write!(f, "prediction/truth length mismatch"),
            MetricError::Empty => write!(f, "metric of empty sample"),
            MetricError::ZeroTruth => write!(f, "MAPE undefined for zero true values"),
        }
    }
}

impl std::error::Error for MetricError {}

fn check(y_true: &[f64], y_pred: &[f64]) -> Result<(), MetricError> {
    if y_true.len() != y_pred.len() {
        return Err(MetricError::LengthMismatch);
    }
    if y_true.is_empty() {
        return Err(MetricError::Empty);
    }
    Ok(())
}

/// Mean Absolute Percentage Error, in percent:
/// `100/n * Σ |y - ŷ| / |y|`.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MetricError> {
    check(y_true, y_pred)?;
    let mut acc = 0.0;
    for (&t, &p) in y_true.iter().zip(y_pred) {
        if t == 0.0 {
            return Err(MetricError::ZeroTruth);
        }
        acc += ((t - p) / t).abs();
    }
    Ok(100.0 * acc / y_true.len() as f64)
}

/// Median absolute percentage error, in percent (robust companion to MAPE).
pub fn medape(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MetricError> {
    check(y_true, y_pred)?;
    let mut apes: Vec<f64> = y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| {
            if t == 0.0 {
                Err(MetricError::ZeroTruth)
            } else {
                Ok(((t - p) / t).abs())
            }
        })
        .collect::<Result<_, _>>()?;
    apes.sort_by(|a, b| a.partial_cmp(b).expect("finite APEs"));
    let n = apes.len();
    let med = if n % 2 == 1 {
        apes[n / 2]
    } else {
        0.5 * (apes[n / 2 - 1] + apes[n / 2])
    };
    Ok(100.0 * med)
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MetricError> {
    check(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MetricError> {
    check(y_true, y_pred)?;
    let mse = y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64;
    Ok(mse.sqrt())
}

/// Coefficient of determination `R² = 1 - SS_res / SS_tot`. Returns 0 when
/// the truth is constant and predictions are imperfect (scikit-learn
/// convention would be 0 too for that degenerate case... it actually returns
/// 0.0 only when SS_res > 0; perfect predictions give 1.0).
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MetricError> {
    check(y_true, y_pred)?;
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|&t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        return Ok(if ss_res == 0.0 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basic() {
        // errors: 10% and 20%
        let m = mape(&[10.0, 10.0], &[9.0, 12.0]).unwrap();
        assert!((m - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mape_perfect_zero() {
        assert_eq!(mape(&[5.0, 7.0], &[5.0, 7.0]).unwrap(), 0.0);
    }

    #[test]
    fn mape_zero_truth_rejected() {
        assert_eq!(mape(&[0.0], &[1.0]), Err(MetricError::ZeroTruth));
    }

    #[test]
    fn mape_scale_invariant() {
        let a = mape(&[10.0, 20.0], &[11.0, 18.0]).unwrap();
        let b = mape(&[100.0, 200.0], &[110.0, 180.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn medape_robust_to_outlier() {
        let t = [10.0, 10.0, 10.0];
        let p = [10.0, 10.0, 1000.0];
        assert!(mape(&t, &p).unwrap() > 1000.0);
        assert_eq!(medape(&t, &p).unwrap(), 0.0);
    }

    #[test]
    fn mae_rmse() {
        let t = [0.0, 0.0];
        let p = [3.0, -4.0];
        assert!((mae(&t, &p).unwrap() - 3.5).abs() < 1e-12);
        assert!((rmse(&t, &p).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(r2(&t, &t).unwrap(), 1.0);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!((r2(&t, &mean_pred).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_truth() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]).unwrap(), 1.0);
        assert_eq!(r2(&[5.0, 5.0], &[4.0, 6.0]).unwrap(), 0.0);
    }

    #[test]
    fn shape_checks() {
        assert_eq!(mape(&[1.0], &[1.0, 2.0]), Err(MetricError::LengthMismatch));
        assert_eq!(mae(&[], &[]), Err(MetricError::Empty));
    }
}
