//! # lam-ml
//!
//! From-scratch supervised regression substrate replacing the paper's use of
//! scikit-learn: CART regression trees, random forests, extremely randomized
//! trees (extra trees), generic bagging and stacking ensembles, feature
//! standardization, error metrics (MAPE first — the paper's score), and
//! sampling utilities (uniform random training-set selection, k-fold CV).
//!
//! Everything is deterministic given a seed; forest training is
//! data-parallel over trees via Rayon.
//!
//! ## Quick example
//!
//! ```
//! use lam_data::Dataset;
//! use lam_ml::forest::ExtraTreesRegressor;
//! use lam_ml::model::Regressor;
//!
//! // y = 2*x, learn it from 32 points.
//! let xs: Vec<f64> = (0..32).map(|i| i as f64).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
//! let data = Dataset::new(vec!["x".into()], xs, ys).unwrap();
//! let mut model = ExtraTreesRegressor::with_params(50, Default::default(), 7);
//! model.fit(&data).unwrap();
//! let yhat = model.predict_row(&[10.0]);
//! assert!((yhat - 20.0).abs() < 4.0);
//! ```

pub mod compile;
pub mod ensemble;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod preprocessing;
pub mod rng;
pub mod sampling;
pub mod tree;
pub mod tuning;

pub use ensemble::{BaggingRegressor, GradientBoostingRegressor, StackingRegressor};
pub use forest::{ExtraTreesRegressor, RandomForestRegressor};
pub use metrics::{mae, mape, r2, rmse};
pub use model::{FitError, Regressor};
pub use preprocessing::StandardScaler;
pub use tree::{DecisionTreeRegressor, TreeParams};
