//! Arena-compiled tree inference: lower any fitted tree model into a
//! contiguous structure-of-arrays arena and evaluate it branchlessly,
//! block-wise.
//!
//! The interpreted walk ([`crate::tree::DecisionTreeRegressor::predict_row`])
//! matches on a 40-byte enum node per step, dragging the fit-time
//! `improvement` payload through the cache and paying a branch per level.
//! Compilation splits the hot split data into parallel arrays:
//!
//! * `feature: Vec<u32>` — split column, one entry per internal node;
//! * `threshold: Vec<f64>` — split threshold, same indexing;
//! * `children: Vec<u32>` — two encoded child slots per internal node
//!   (`2*id` left, `2*id + 1` right), each either another internal node
//!   index or a leaf reference with the [`LEAF_TAG`] bit set;
//! * `leaf_values: Vec<f64>` — leaf payloads, separate so the walk only
//!   touches them once per tree.
//!
//! Descending one level is branchless index arithmetic — the comparison
//! result selects the child slot directly
//! (`children[2 * id + (!(x[f] <= t)) as usize]`), so the only branch per
//! level is the loop's leaf-exit test. `!(x <= t)` (rather than `x > t`)
//! reproduces the interpreted walk's NaN routing exactly: NaN fails
//! `<=` and goes right in both.
//!
//! Ensembles of trees — forests, extra trees, boosting stages — share one
//! arena with per-tree root slots; [`CompiledTrees::predict_rows`]
//! evaluates rows in blocks of [`BLOCK`] with a tree-outer/row-inner loop
//! so a tree's upper-level split data is loaded once per block instead of
//! once per row, accumulating into a stack block accumulator instead of a
//! per-row `Vec` collect. Within a block, [`LANES`] rows descend each
//! tree *in lockstep* — a single descent is a serial dependent-load
//! chain, so interleaving eight of them overlaps their memory latency —
//! with finished lanes parked branchlessly on their leaf slot.
//! Aggregation follows the source model exactly (tree order,
//! `fold(0.0, +)` summation), so compiled predictions are
//! **bit-identical** to the interpreted model's.
//!
//! Fitted-ness is validated once, here, at compile time
//! ([`CompileError::NotFitted`]) — the per-row hot path carries no assert.

use crate::ensemble::GradientBoostingRegressor;
use crate::forest::{ExtraTreesRegressor, RandomForestRegressor};
use crate::tree::{DecisionTreeRegressor, Node};
use std::fmt;

/// High bit of an encoded child slot: set when the slot references a leaf
/// (payload = index into `leaf_values`), clear when it references an
/// internal node (payload = index into `feature`/`threshold`/`children`).
pub const LEAF_TAG: u32 = 1 << 31;

/// Rows per evaluation block of [`CompiledTrees::predict_rows`]: small
/// enough for the accumulator to live on the stack, large enough that a
/// tree's upper levels stay cached across the whole block.
pub const BLOCK: usize = 64;

/// Rows walked through a tree in lockstep by the batch path. A single
/// descent is a serial dependent-load chain (each level's node index
/// comes from the previous level's load), so one row leaves the core's
/// load ports mostly idle; eight interleaved descents give the
/// out-of-order window eight independent chains to overlap.
pub const LANES: usize = 8;

/// Errors raised when lowering a model into an arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The model has not been fitted; there is nothing to compile. This is
    /// where unfit use surfaces as a typed error — the compiled walk
    /// itself never re-checks per row.
    NotFitted,
    /// The ensemble exceeds the arena's 2³¹-node index capacity.
    TooLarge,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotFitted => write!(f, "cannot compile an unfitted model"),
            CompileError::TooLarge => write!(f, "ensemble exceeds arena index capacity"),
        }
    }
}

impl std::error::Error for CompileError {}

/// How per-tree values combine into the ensemble prediction. Each variant
/// reproduces its source model's arithmetic exactly (same order, same
/// operations) so compiled output is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Aggregation {
    /// A single tree: the leaf value verbatim.
    Single,
    /// Forest mean: `fold(0.0, +)` over trees in order, divided by the
    /// tree count.
    Mean,
    /// Boosting: `base + learning_rate * fold(0.0, +)` over stages.
    Boosted {
        /// The ensemble's base (mean-response) prediction.
        base: f64,
        /// Stage shrinkage.
        learning_rate: f64,
    },
}

/// A fitted tree ensemble lowered into one contiguous SoA arena.
///
/// Built via [`DecisionTreeRegressor::compile`],
/// [`RandomForestRegressor::compile`], [`ExtraTreesRegressor::compile`],
/// or [`GradientBoostingRegressor::compile`]; immutable and `Send + Sync`,
/// so serving layers share it freely across threads.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrees {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    children: Vec<u32>,
    leaf_values: Vec<f64>,
    /// One encoded slot per tree, same encoding as `children` entries.
    roots: Vec<u32>,
    agg: Aggregation,
    n_features: usize,
    /// Split-node count *before* padding (see [`CompiledTrees::finalize`]);
    /// `feature`/`threshold`/`children` may carry inert entries beyond it.
    n_internal: usize,
}

impl CompiledTrees {
    fn builder(n_features: usize, agg: Aggregation) -> Self {
        Self {
            feature: Vec::new(),
            threshold: Vec::new(),
            children: Vec::new(),
            leaf_values: Vec::new(),
            roots: Vec::new(),
            agg,
            n_features,
            n_internal: 0,
        }
    }

    /// Seal the arena after the last tree: record the true split count,
    /// then pad the node arrays so every *leaf* payload is also a valid
    /// index into them. The lockstep walk ([`CompiledTrees::eval_lanes`])
    /// advances all lanes unconditionally and discards the result for
    /// lanes already parked on a leaf — branchless parking is only sound
    /// if those dead loads stay in bounds. Padded `feature` entries are 0
    /// (always a legal column), the rest is inert.
    fn finalize(&mut self) {
        self.n_internal = self.feature.len();
        let padded = self.feature.len().max(self.leaf_values.len());
        self.feature.resize(padded, 0);
        self.threshold.resize(padded, 0.0);
        self.children.resize(2 * padded, LEAF_TAG);
    }

    /// Lower one tree's nodes into the arena, returning the encoded root
    /// slot. Internal nodes are emitted in DFS preorder so a walk's next
    /// node is usually adjacent in memory.
    fn lower(&mut self, nodes: &[Node], id: usize) -> Result<u32, CompileError> {
        match nodes[id] {
            Node::Leaf { value } => {
                let slot = self.leaf_values.len();
                if slot >= LEAF_TAG as usize {
                    return Err(CompileError::TooLarge);
                }
                self.leaf_values.push(value);
                Ok(LEAF_TAG | slot as u32)
            }
            Node::Internal {
                feature,
                threshold,
                left,
                right,
                // Fit-time payload: stays behind on the interpreted
                // representation (feature importances read it there).
                improvement: _,
            } => {
                let slot = self.feature.len();
                if slot >= LEAF_TAG as usize {
                    return Err(CompileError::TooLarge);
                }
                self.feature.push(feature);
                self.threshold.push(threshold);
                self.children.push(0);
                self.children.push(0);
                let l = self.lower(nodes, left)?;
                let r = self.lower(nodes, right)?;
                self.children[2 * slot] = l;
                self.children[2 * slot + 1] = r;
                Ok(slot as u32)
            }
        }
    }

    fn push_tree(&mut self, tree: &DecisionTreeRegressor) -> Result<(), CompileError> {
        let nodes = tree.nodes();
        if nodes.is_empty() {
            return Err(CompileError::NotFitted);
        }
        let root = self.lower(nodes, 0)?;
        self.roots.push(root);
        Ok(())
    }

    /// Number of trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Number of internal (split) nodes across all trees.
    pub fn n_internal(&self) -> usize {
        self.n_internal
    }

    /// Number of leaves across all trees.
    pub fn n_leaves(&self) -> usize {
        self.leaf_values.len()
    }

    /// Feature arity the ensemble was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total bytes of the arena's arrays (the compiled model's working
    /// set, excluding the struct header).
    pub fn arena_bytes(&self) -> usize {
        self.feature.len() * 4
            + self.threshold.len() * 8
            + self.children.len() * 4
            + self.leaf_values.len() * 8
            + self.roots.len() * 4
    }

    /// Walk one tree from an encoded root slot. The descent direction is
    /// branchless (`!(x <= t)` indexes the child pair directly); the only
    /// branch is the leaf exit.
    #[inline]
    // `!(x <= t)` is deliberately NOT `x > t`: NaN must fail the
    // comparison and route right, matching the interpreted walk.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn eval(&self, mut slot: u32, x: &[f64]) -> f64 {
        while slot & LEAF_TAG == 0 {
            let id = slot as usize;
            let right = !(x[self.feature[id] as usize] <= self.threshold[id]) as usize;
            slot = self.children[2 * id + right];
        }
        self.leaf_values[(slot & !LEAF_TAG) as usize]
    }

    /// Unchecked scalar twin of [`CompiledTrees::eval`], used once the
    /// caller has verified `x.len() == n_features` (and `n_features > 0`).
    ///
    /// # Safety-by-construction
    ///
    /// Same arena invariants as [`CompiledTrees::eval_lanes`]: every
    /// untagged slot indexes a real internal node, every `feature` entry
    /// is `< n_features == x.len()`, and the scalar walk exits *before*
    /// dereferencing a tagged slot, so it never touches the padded region.
    #[inline]
    // `!(x <= t)` is deliberately NOT `x > t`: NaN must fail the
    // comparison and route right, matching the interpreted walk.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn eval_checked_row(&self, mut slot: u32, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_features);
        while slot & LEAF_TAG == 0 {
            let id = slot as usize;
            // SAFETY: see the method docs.
            unsafe {
                let f = *self.feature.get_unchecked(id) as usize;
                let t = *self.threshold.get_unchecked(id);
                let right = !(*x.get_unchecked(f) <= t) as usize;
                slot = *self.children.get_unchecked(2 * id + right);
            }
        }
        self.leaf_values[(slot & !LEAF_TAG) as usize]
    }

    /// Scalar walk with a per-call (not per-level) validity dispatch:
    /// rows matching the trained arity take the unchecked walk, anything
    /// else the fully bounds-checked one (which panics exactly where the
    /// interpreted walk would).
    #[inline]
    fn eval_row(&self, root: u32, x: &[f64]) -> f64 {
        if self.n_features > 0 && x.len() == self.n_features {
            self.eval_checked_row(root, x)
        } else {
            self.eval(root, x)
        }
    }

    /// Walk one tree for [`LANES`] rows in lockstep: every level advances
    /// all lanes with branchless selects (a lane already parked on a leaf
    /// keeps its slot; the dead load lands in the padded region — see
    /// [`CompiledTrees::finalize`]), and the loop exits when every lane is
    /// parked. One branch per *level per group* instead of per level per
    /// row, and eight independent load chains in flight.
    /// # Safety-by-construction
    ///
    /// The walk indexes without bounds checks. Every index is in range by
    /// arena invariants, all established before this method can run:
    ///
    /// * every untagged slot (roots and `children` entries) is `<
    ///   n_internal ≤ feature.len()`, every tagged slot's payload is `<
    ///   leaf_values.len() ≤ feature.len()` ([`CompiledTrees::finalize`]
    ///   pads to the max, so a parked lane's dead load stays in bounds);
    /// * `children.len() == 2 * feature.len()`, so `2 * id + right` is in
    ///   bounds whenever `id` is;
    /// * every `feature` entry is `< n_features` (split features come from
    ///   fitting; padding entries are 0 and `n_features > 0` — the caller
    ///   routes through the safe scalar walk otherwise);
    /// * `x` is the caller's flat row-major scratch: lane `k` is the
    ///   `n_features` values at `base + k * n_features`, and the caller
    ///   guarantees `x.len() >= base + LANES * n_features` (rows were
    ///   length-checked as they were packed).
    #[inline]
    // `!(x <= t)` is deliberately NOT `x > t`: NaN must fail the
    // comparison and route right, matching the interpreted walk.
    // `k` indexes both `slot` and the lane's scratch offset, so the
    // range loop is clearer than an enumerate over one of the two.
    #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]
    fn eval_lanes(&self, root: u32, x: &[f64], base: usize) -> [f64; LANES] {
        let feature = self.feature.as_slice();
        let threshold = self.threshold.as_slice();
        let children = self.children.as_slice();
        let nf = self.n_features;
        let mut slot = [root; LANES];
        loop {
            let mut all_parked = true;
            for k in 0..LANES {
                let s = slot[k];
                let id = (s & !LEAF_TAG) as usize;
                // SAFETY: see the method docs; `id`, `2 * id + right`, and
                // `base + k * nf + f` are all in range by arena
                // construction plus the caller's scratch-length guarantee.
                let next = unsafe {
                    let f = *feature.get_unchecked(id) as usize;
                    let t = *threshold.get_unchecked(id);
                    let xv = *x.get_unchecked(base + k * nf + f);
                    let right = !(xv <= t) as usize;
                    *children.get_unchecked(2 * id + right)
                };
                slot[k] = if s & LEAF_TAG != 0 { s } else { next };
                all_parked &= slot[k] & LEAF_TAG != 0;
            }
            if all_parked {
                break;
            }
        }
        std::array::from_fn(|k| self.leaf_values[(slot[k] & !LEAF_TAG) as usize])
    }

    /// Evaluate one tree over a block of rows, adding each leaf value into
    /// the matching accumulator slot: full [`LANES`]-wide groups go
    /// through the lockstep walk over the packed `scratch` copy of the
    /// block (when `lockstep` certifies its preconditions), the remainder
    /// through the scalar walk on the original rows.
    #[inline]
    fn accumulate_tree(
        &self,
        root: u32,
        rows: &[&[f64]],
        scratch: &[f64],
        acc: &mut [f64],
        lockstep: bool,
    ) {
        let mut i = 0;
        if lockstep {
            while i + LANES <= rows.len() {
                let leaves = self.eval_lanes(root, scratch, i * self.n_features);
                for (a, leaf) in acc[i..i + LANES].iter_mut().zip(leaves) {
                    *a += leaf;
                }
                i += LANES;
            }
        }
        for (row, a) in rows[i..].iter().zip(&mut acc[i..]) {
            *a += self.eval_row(root, row);
        }
    }

    /// Predict a single row: every tree in order, aggregated exactly as
    /// the interpreted ensemble aggregates.
    pub fn predict_row(&self, x: &[f64]) -> f64 {
        match self.agg {
            Aggregation::Single => self.eval_row(self.roots[0], x),
            Aggregation::Mean => {
                let sum = self
                    .roots
                    .iter()
                    .fold(0.0, |acc, &root| acc + self.eval_row(root, x));
                sum / self.roots.len() as f64
            }
            Aggregation::Boosted {
                base,
                learning_rate,
            } => {
                let sum = self
                    .roots
                    .iter()
                    .fold(0.0, |acc, &root| acc + self.eval_row(root, x));
                base + learning_rate * sum
            }
        }
    }

    /// Block-wise batch prediction: rows are processed in blocks of
    /// [`BLOCK`] with a tree-outer/row-inner loop and a per-block stack
    /// accumulator, so each tree's upper split nodes load once per block
    /// and aggregation never allocates per row. Output order matches input
    /// order; values are bit-identical to [`CompiledTrees::predict_row`].
    pub fn predict_rows_by_ref(&self, rows: &[&[f64]]) -> Vec<f64> {
        // Sub-lane batches skip the block machinery entirely — a single
        // /predict request shouldn't pay for a scratch buffer.
        if rows.len() < LANES {
            return rows.iter().map(|row| self.predict_row(row)).collect();
        }
        // The lockstep walk reads feature columns unchecked, so it
        // requires every row to span the trained feature arity (checked
        // once here, not per level). Short rows — or a zero-feature
        // single-leaf model — take the scalar walk instead, preserving
        // the interpreted path's panic behavior on malformed input.
        let lockstep = rows.len() >= LANES
            && self.n_features > 0
            && rows.iter().all(|r| r.len() == self.n_features);
        // Flat row-major copy of the current block: one contiguous,
        // L1-resident buffer that every tree re-reads, instead of a
        // per-lane pointer chase through scattered row slices. The copy
        // is paid once per block and amortised over all trees.
        let mut scratch = vec![0.0f64; if lockstep { BLOCK * self.n_features } else { 0 }];
        let mut out = Vec::with_capacity(rows.len());
        for block in rows.chunks(BLOCK) {
            if lockstep {
                let nf = self.n_features;
                for (k, row) in block.iter().enumerate() {
                    scratch[k * nf..(k + 1) * nf].copy_from_slice(row);
                }
            }
            match self.agg {
                Aggregation::Single => {
                    // Leaves are emitted verbatim (no accumulator): the
                    // interpreted single tree returns the leaf value
                    // itself, and `0.0 + leaf` would flip `-0.0`'s sign.
                    let root = self.roots[0];
                    let mut i = 0;
                    if lockstep {
                        while i + LANES <= block.len() {
                            out.extend_from_slice(&self.eval_lanes(
                                root,
                                &scratch,
                                i * self.n_features,
                            ));
                            i += LANES;
                        }
                    }
                    out.extend(block[i..].iter().map(|row| self.eval_row(root, row)));
                }
                Aggregation::Mean => {
                    let mut acc = [0.0f64; BLOCK];
                    for &root in &self.roots {
                        self.accumulate_tree(root, block, &scratch, &mut acc, lockstep);
                    }
                    let n = self.roots.len() as f64;
                    out.extend(acc[..block.len()].iter().map(|&s| s / n));
                }
                Aggregation::Boosted {
                    base,
                    learning_rate,
                } => {
                    let mut acc = [0.0f64; BLOCK];
                    for &root in &self.roots {
                        self.accumulate_tree(root, block, &scratch, &mut acc, lockstep);
                    }
                    out.extend(acc[..block.len()].iter().map(|&s| base + learning_rate * s));
                }
            }
        }
        out
    }

    /// Owned-row convenience over [`CompiledTrees::predict_rows_by_ref`].
    pub fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.len() < LANES {
            return rows.iter().map(|row| self.predict_row(row)).collect();
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        self.predict_rows_by_ref(&refs)
    }
}

impl DecisionTreeRegressor {
    /// Lower the fitted tree into a [`CompiledTrees`] arena whose
    /// predictions are bit-identical to [`Self::predict_row`]
    /// (`predict_row` via [`crate::model::Regressor`]).
    pub fn compile(&self) -> Result<CompiledTrees, CompileError> {
        let mut arena = CompiledTrees::builder(self.n_features(), Aggregation::Single);
        arena.push_tree(self)?;
        arena.finalize();
        Ok(arena)
    }
}

/// Lower a slice of fitted trees into one shared arena with the given
/// aggregation; the feature arity comes from the first tree.
fn compile_trees(
    trees: &[DecisionTreeRegressor],
    agg: Aggregation,
) -> Result<CompiledTrees, CompileError> {
    let Some(first) = trees.first() else {
        return Err(CompileError::NotFitted);
    };
    let mut arena = CompiledTrees::builder(first.n_features(), agg);
    for tree in trees {
        arena.push_tree(tree)?;
    }
    arena.finalize();
    Ok(arena)
}

impl RandomForestRegressor {
    /// Lower the fitted forest into a [`CompiledTrees`] arena whose
    /// predictions are bit-identical to the interpreted forest mean.
    pub fn compile(&self) -> Result<CompiledTrees, CompileError> {
        compile_trees(self.trees(), Aggregation::Mean)
    }
}

impl ExtraTreesRegressor {
    /// Lower the fitted forest into a [`CompiledTrees`] arena whose
    /// predictions are bit-identical to the interpreted forest mean.
    pub fn compile(&self) -> Result<CompiledTrees, CompileError> {
        compile_trees(self.trees(), Aggregation::Mean)
    }
}

impl GradientBoostingRegressor {
    /// Lower the fitted stage trees into a [`CompiledTrees`] arena whose
    /// predictions are bit-identical to the interpreted
    /// `base + learning_rate * Σ stage` evaluation.
    pub fn compile(&self) -> Result<CompiledTrees, CompileError> {
        compile_trees(
            self.stages(),
            Aggregation::Boosted {
                base: self.base_prediction(),
                learning_rate: self.learning_rate,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Regressor;
    use crate::tree::TreeParams;
    use lam_data::Dataset;

    fn grid() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..12 {
            for b in 0..12 {
                let x0 = a as f64 / 3.0;
                let x1 = b as f64 / 5.0;
                rows.push(vec![x0, x1]);
                ys.push(x0 * x0 + 7.0 * x1 + 0.5);
            }
        }
        Dataset::from_rows(vec!["a".into(), "b".into()], &rows, ys).unwrap()
    }

    fn probes() -> Vec<Vec<f64>> {
        (0..200)
            .map(|i| vec![(i % 17) as f64 / 4.3 - 0.5, (i % 23) as f64 / 6.1 - 0.5])
            .collect()
    }

    #[test]
    fn unfitted_models_refuse_to_compile() {
        assert_eq!(
            DecisionTreeRegressor::default().compile(),
            Err(CompileError::NotFitted)
        );
        assert_eq!(
            RandomForestRegressor::new(0).compile(),
            Err(CompileError::NotFitted)
        );
        assert_eq!(
            ExtraTreesRegressor::new(0).compile(),
            Err(CompileError::NotFitted)
        );
        assert_eq!(
            GradientBoostingRegressor::new(10, 0.1, 0).compile(),
            Err(CompileError::NotFitted)
        );
    }

    #[test]
    fn single_tree_bit_identical() {
        let d = grid();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        let c = t.compile().unwrap();
        assert_eq!(c.n_trees(), 1);
        assert_eq!(c.n_leaves(), t.n_leaves());
        assert_eq!(c.n_internal(), t.n_nodes() - t.n_leaves());
        for row in d
            .iter()
            .map(|(x, _)| x)
            .chain(probes().iter().map(|r| &r[..]))
        {
            assert_eq!(t.predict_row(row).to_bits(), c.predict_row(row).to_bits());
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let d = Dataset::new(vec!["x".into()], vec![1.0, 2.0], vec![3.0, 3.0]).unwrap();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        let c = t.compile().unwrap();
        assert_eq!(c.n_internal(), 0);
        assert_eq!(c.predict_row(&[9.0]), 3.0);
        assert_eq!(c.predict_rows(&[vec![0.0], vec![5.0]]), vec![3.0, 3.0]);
    }

    #[test]
    fn forest_bit_identical() {
        let d = grid();
        let mut rf = RandomForestRegressor::with_params(17, TreeParams::default(), 3);
        rf.fit(&d).unwrap();
        let c = rf.compile().unwrap();
        assert_eq!(c.n_trees(), 17);
        for row in probes() {
            assert_eq!(
                rf.predict_row(&row).to_bits(),
                c.predict_row(&row).to_bits()
            );
        }
    }

    #[test]
    fn extra_trees_bit_identical() {
        let d = grid();
        let mut et = ExtraTreesRegressor::with_params(9, TreeParams::default(), 5);
        et.fit(&d).unwrap();
        let c = et.compile().unwrap();
        for row in probes() {
            assert_eq!(
                et.predict_row(&row).to_bits(),
                c.predict_row(&row).to_bits()
            );
        }
    }

    #[test]
    fn boosting_bit_identical() {
        let d = grid();
        let mut g = GradientBoostingRegressor::new(40, 0.2, 7);
        g.fit(&d).unwrap();
        let c = g.compile().unwrap();
        assert_eq!(c.n_trees(), 40);
        for row in probes() {
            assert_eq!(g.predict_row(&row).to_bits(), c.predict_row(&row).to_bits());
        }
    }

    #[test]
    fn blocked_batch_matches_per_row_across_block_boundaries() {
        let d = grid();
        let mut et = ExtraTreesRegressor::with_params(8, TreeParams::default(), 2);
        et.fit(&d).unwrap();
        let c = et.compile().unwrap();
        // 1, BLOCK-1, BLOCK, BLOCK+1, and a few blocks worth of rows.
        for n in [1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 5] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![(i % 13) as f64 / 3.7, (i % 7) as f64 / 2.9])
                .collect();
            let batched = c.predict_rows(&rows);
            assert_eq!(batched.len(), n);
            for (row, y) in rows.iter().zip(&batched) {
                assert_eq!(c.predict_row(row).to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn nan_rows_route_like_the_interpreted_walk() {
        let d = grid();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        let c = t.compile().unwrap();
        let weird = [
            vec![f64::NAN, 1.0],
            vec![1.0, f64::NAN],
            vec![f64::INFINITY, f64::NEG_INFINITY],
            vec![-0.0, 0.0],
        ];
        for row in &weird {
            assert_eq!(t.predict_row(row).to_bits(), c.predict_row(row).to_bits());
        }
    }

    #[test]
    fn arena_is_compact() {
        let d = grid();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&d).unwrap();
        let c = t.compile().unwrap();
        // 4 (feature) + 8 (threshold) + 8 (children pair) bytes per
        // internal node, 8 per leaf, 4 per root, plus the inert padding
        // out to the leaf count (finalize): far below the 40-byte enum
        // node of the interpreted representation.
        let padded = c.n_internal().max(c.n_leaves());
        assert_eq!(
            c.arena_bytes(),
            padded * 20 + c.n_leaves() * 8 + c.n_trees() * 4
        );
        let interpreted_bytes = t.n_nodes() * std::mem::size_of::<Node>();
        assert!(
            c.arena_bytes() < interpreted_bytes,
            "arena {} vs interpreted {}",
            c.arena_bytes(),
            interpreted_bytes
        );
    }
}
