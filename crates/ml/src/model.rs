//! The [`Regressor`] trait implemented by every model in this crate, plus
//! fitting errors shared across models.

use lam_data::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by `fit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set holds no observations.
    EmptyDataset,
    /// The training set has no feature columns.
    NoFeatures,
    /// A feature or response value was NaN/inf.
    NonFiniteData,
    /// Model-specific precondition failed (message explains).
    Invalid(String),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDataset => write!(f, "cannot fit on an empty dataset"),
            FitError::NoFeatures => write!(f, "cannot fit on a dataset with zero features"),
            FitError::NonFiniteData => write!(f, "dataset contains non-finite values"),
            FitError::Invalid(m) => write!(f, "invalid model configuration: {m}"),
        }
    }
}

impl std::error::Error for FitError {}

/// Common checks every `fit` implementation performs first.
pub fn validate_training_data(data: &Dataset) -> Result<(), FitError> {
    if data.is_empty() {
        return Err(FitError::EmptyDataset);
    }
    if data.n_features() == 0 {
        return Err(FitError::NoFeatures);
    }
    data.validate_finite()
        .map_err(|_| FitError::NonFiniteData)?;
    Ok(())
}

/// A supervised regression model mapping a feature vector to a scalar.
///
/// All models in this workspace predict *execution time*; the trait is
/// object-safe so ensembles can hold heterogeneous `Box<dyn Regressor>`
/// members (the hybrid model mixes analytical and learned components).
pub trait Regressor: Send + Sync {
    /// Fit the model to the dataset, replacing any previous fit.
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError>;

    /// Predict the response for a single feature row.
    ///
    /// Panics or returns unspecified values if called before a successful
    /// `fit` (each implementation documents its behaviour; most panic).
    fn predict_row(&self, x: &[f64]) -> f64;

    /// Predict the response for every row of `data`.
    fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_row(data.row(i)))
            .collect()
    }

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str {
        "regressor"
    }
}

impl Regressor for Box<dyn Regressor> {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        (**self).fit(data)
    }
    fn predict_row(&self, x: &[f64]) -> f64 {
        (**self).predict_row(x)
    }
    fn predict(&self, data: &Dataset) -> Vec<f64> {
        (**self).predict(data)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Trivial baseline predicting the training-set mean. Useful in tests and as
/// a sanity floor in experiment reports.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeanRegressor {
    mean: Option<f64>,
}

impl MeanRegressor {
    /// New, unfitted.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Regressor for MeanRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        self.mean = Some(data.response().iter().sum::<f64>() / data.len() as f64);
        Ok(())
    }

    fn predict_row(&self, _x: &[f64]) -> f64 {
        self.mean.expect("MeanRegressor used before fit")
    }

    fn name(&self) -> &'static str {
        "mean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(xs: &[f64], ys: &[f64]) -> Dataset {
        Dataset::new(vec!["x".into()], xs.to_vec(), ys.to_vec()).unwrap()
    }

    #[test]
    fn mean_regressor_predicts_mean() {
        let d = data(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
        let mut m = MeanRegressor::new();
        m.fit(&d).unwrap();
        assert!((m.predict_row(&[100.0]) - 4.0).abs() < 1e-12);
        assert_eq!(m.predict(&d), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn mean_regressor_empty_errors() {
        let d = Dataset::empty(vec!["x".into()]);
        assert_eq!(MeanRegressor::new().fit(&d), Err(FitError::EmptyDataset));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn mean_regressor_unfitted_panics() {
        MeanRegressor::new().predict_row(&[1.0]);
    }

    #[test]
    fn validate_rejects_bad_data() {
        let empty = Dataset::empty(vec!["x".into()]);
        assert_eq!(validate_training_data(&empty), Err(FitError::EmptyDataset));
        let no_feat = Dataset::new(vec![], vec![], vec![1.0]).unwrap();
        assert_eq!(validate_training_data(&no_feat), Err(FitError::NoFeatures));
        let nan = data(&[f64::NAN], &[1.0]);
        assert_eq!(validate_training_data(&nan), Err(FitError::NonFiniteData));
    }

    #[test]
    fn boxed_regressor_delegates() {
        let d = data(&[1.0], &[5.0]);
        let mut boxed: Box<dyn Regressor> = Box::new(MeanRegressor::new());
        boxed.fit(&d).unwrap();
        assert_eq!(boxed.predict_row(&[0.0]), 5.0);
        assert_eq!(boxed.name(), "mean");
    }
}
