//! Small deterministic RNG utilities shared by the ensemble code.
//!
//! Forest training derives one independent stream per tree from a base seed
//! with SplitMix64 — the standard way to seed many parallel PRNGs without
//! correlation — so results are identical whether trees are fit serially or
//! in parallel.

/// SplitMix64 step: maps a seed to a well-mixed 64-bit value.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive `n` independent sub-seeds from `base`.
pub fn derive_seeds(base: u64, n: usize) -> Vec<u64> {
    let mut state = base ^ 0xD1B5_4A32_D192_ED03;
    (0..n).map(|_| splitmix64(&mut state)).collect()
}

/// A tiny, fast xoshiro256** PRNG. Local implementation so the hot tree
/// splitter does not depend on `rand`'s trait machinery in inner loops.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the generator; distinct seeds give independent streams.
    pub fn seeded(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut st);
        }
        // All-zero state is invalid; splitmix of any seed avoids it, but be safe.
        if s.iter().all(|&v| v == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free bound; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard-normal sample via Box–Muller (used by the noise model and
    /// synthetic datasets; keeps `rand_distr` out of the dependency tree).
    pub fn next_normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 <= f64::EPSILON {
                continue;
            }
            let u2 = self.next_f64();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Partial Fisher–Yates over an index vector; O(n) allocation but the
        // datasets here are small (≤ tens of thousands of rows).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seeded(42);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_in_bounds_and_covers() {
        let mut r = Xoshiro256::seeded(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.next_below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::seeded(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Xoshiro256::seeded(5);
        let s = r.sample_indices(100, 40);
        assert_eq!(s.len(), 40);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn derive_seeds_unique() {
        let seeds = derive_seeds(7, 100);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seeded(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
