//! Metrics history: a ring of timestamped registry deltas, so loadgen
//! and CI can compute rates and windows from `GET /metrics/history`
//! without running an external scraper.
//!
//! A background snapshotter (started once per process by the server)
//! snapshots the global registry every interval and stores the *delta*
//! frame against the previous snapshot: counter and histogram series
//! keep only what moved (count/sum deltas), gauges keep their absolute
//! value. Zero-delta series are omitted, so an idle process rings
//! near-empty frames.

use crate::registry::{Snapshot, ValueSnapshot};
use std::collections::VecDeque;
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// Default frames kept (one per snapshot interval).
pub const DEFAULT_FRAMES: usize = 64;
/// Default snapshot interval for [`start_snapshotter`].
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);

/// One series' movement within a frame.
#[derive(Debug, Clone)]
enum SeriesDelta {
    /// Counter increase over the interval.
    Counter(u64),
    /// Gauge absolute value at frame time.
    Gauge(i64),
    /// Histogram `(count, sum)` increase over the interval.
    Histogram(u64, u64),
}

/// One timestamped delta frame.
#[derive(Debug, Clone)]
struct Frame {
    unix_ms: u64,
    interval_ms: u64,
    /// `(name, rendered label object, delta)` per moved series.
    series: Vec<(&'static str, String, SeriesDelta)>,
}

/// The frame ring plus the previous snapshot the next delta diffs
/// against. Use [`global`] for the process-wide instance.
pub struct MetricsHistory {
    inner: Mutex<HistoryInner>,
    capacity: usize,
}

struct HistoryInner {
    frames: VecDeque<Frame>,
    last: Option<(u64, Snapshot)>,
}

/// Flatten a snapshot into `(name, labels-json, value)` triples.
fn flatten(snapshot: &Snapshot) -> Vec<(&'static str, String, ValueSnapshot)> {
    let mut out = Vec::new();
    for family in &snapshot.families {
        for series in &family.series {
            let mut labels = String::new();
            crate::expose::json_labels(&family.label_names, &series.label_values, &mut labels);
            out.push((family.name, labels, series.value.clone()));
        }
    }
    out
}

impl MetricsHistory {
    /// A history ring keeping `capacity` frames (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HistoryInner {
                frames: VecDeque::new(),
                last: None,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Take one snapshot of `snapshot` at wall-clock `unix_ms` and ring
    /// the delta frame against the previous call. The first call only
    /// seeds the baseline (there is nothing to diff yet).
    pub fn observe(&self, snapshot: Snapshot, unix_ms: u64) {
        let mut inner = self.inner.lock().expect("metrics history poisoned");
        if let Some((last_ms, last_snapshot)) = &inner.last {
            let last: std::collections::BTreeMap<(&'static str, String), ValueSnapshot> =
                flatten(last_snapshot)
                    .into_iter()
                    .map(|(name, labels, value)| ((name, labels), value))
                    .collect();
            let mut series = Vec::new();
            for (name, labels, value) in flatten(&snapshot) {
                let prev = last.get(&(name, labels.clone()));
                let delta = match (&value, prev) {
                    (ValueSnapshot::Counter(now), prev) => {
                        let before = match prev {
                            Some(ValueSnapshot::Counter(v)) => *v,
                            _ => 0,
                        };
                        let d = now.saturating_sub(before);
                        (d > 0).then_some(SeriesDelta::Counter(d))
                    }
                    (ValueSnapshot::Gauge(now), _) => Some(SeriesDelta::Gauge(*now)),
                    (ValueSnapshot::Histogram(now), prev) => {
                        let (count0, sum0) = match prev {
                            Some(ValueSnapshot::Histogram(h)) => (h.count(), h.sum),
                            _ => (0, 0),
                        };
                        let dc = now.count().saturating_sub(count0);
                        let ds = now.sum.saturating_sub(sum0);
                        (dc > 0).then_some(SeriesDelta::Histogram(dc, ds))
                    }
                };
                if let Some(delta) = delta {
                    series.push((name, labels, delta));
                }
            }
            let frame = Frame {
                unix_ms,
                interval_ms: unix_ms.saturating_sub(*last_ms),
                series,
            };
            if inner.frames.len() == self.capacity {
                inner.frames.pop_front();
            }
            inner.frames.push_back(frame);
        }
        inner.last = Some((unix_ms, snapshot));
    }

    /// Frames currently ringed.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("metrics history poisoned")
            .frames
            .len()
    }

    /// No frames yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the ring as JSON, oldest frame first:
    ///
    /// ```json
    /// {"frames":[{"unix_ms":...,"interval_ms":...,
    ///   "counters":[{"name":"...","labels":{...},"delta":1}],
    ///   "gauges":[{"name":"...","labels":{...},"value":0}],
    ///   "histograms":[{"name":"...","labels":{...},
    ///                  "delta_count":2,"delta_sum":90}]}]}
    /// ```
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics history poisoned");
        let frames: Vec<String> = inner
            .frames
            .iter()
            .map(|frame| {
                let mut counters = String::new();
                let mut gauges = String::new();
                let mut histograms = String::new();
                for (name, labels, delta) in &frame.series {
                    let (out, body) = match delta {
                        SeriesDelta::Counter(d) => (&mut counters, format!("\"delta\":{d}")),
                        SeriesDelta::Gauge(v) => (&mut gauges, format!("\"value\":{v}")),
                        SeriesDelta::Histogram(dc, ds) => (
                            &mut histograms,
                            format!("\"delta_count\":{dc},\"delta_sum\":{ds}"),
                        ),
                    };
                    if !out.is_empty() {
                        out.push(',');
                    }
                    out.push_str("{\"name\":\"");
                    crate::expose::escape_json(name, out);
                    out.push_str("\",\"labels\":");
                    out.push_str(labels);
                    out.push(',');
                    out.push_str(&body);
                    out.push('}');
                }
                format!(
                    "{{\"unix_ms\":{},\"interval_ms\":{},\"counters\":[{counters}],\"gauges\":[{gauges}],\"histograms\":[{histograms}]}}",
                    frame.unix_ms, frame.interval_ms
                )
            })
            .collect();
        format!("{{\"frames\":[{}]}}", frames.join(","))
    }
}

/// The process-global history ring (`LAM_METRICS_HISTORY_FRAMES`
/// overrides the frame count on first touch).
pub fn global() -> &'static MetricsHistory {
    static GLOBAL: OnceLock<MetricsHistory> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let frames = std::env::var("LAM_METRICS_HISTORY_FRAMES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_FRAMES);
        MetricsHistory::with_capacity(frames)
    })
}

/// Start the background snapshotter thread (idempotent; the first call
/// wins and fixes the interval). The thread diffs [`crate::global`]
/// into [`global`] every `interval` and is detached — it costs one
/// registry snapshot per tick and dies with the process.
pub fn start_snapshotter(interval: Duration) {
    static STARTED: Once = Once::new();
    STARTED.call_once(|| {
        std::thread::Builder::new()
            .name("lam-obs-history".to_string())
            .spawn(move || loop {
                std::thread::sleep(interval);
                global().observe(
                    crate::global().snapshot(),
                    crate::recorder::unix_now_ns() / 1_000_000,
                );
            })
            .expect("spawn metrics-history snapshotter");
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn frames_carry_deltas_not_totals() {
        let reg = MetricsRegistry::new();
        let hits = reg.counter("h_total", "H.", &[("scope", "a")]);
        let lat = reg.histogram("l_ns", "L.", &[]);
        let inflight = reg.gauge("g", "G.", &[]);
        let history = MetricsHistory::with_capacity(4);

        hits.add(10);
        lat.record(100);
        inflight.set(3);
        history.observe(reg.snapshot(), 1_000); // baseline only
        assert!(history.is_empty());

        hits.add(5);
        lat.record(50);
        lat.record(50);
        inflight.set(1);
        history.observe(reg.snapshot(), 2_000);
        assert_eq!(history.len(), 1);
        let json = history.render_json();
        assert!(json.contains("\"unix_ms\":2000"), "{json}");
        assert!(json.contains("\"interval_ms\":1000"), "{json}");
        assert!(json.contains("\"name\":\"h_total\""), "{json}");
        assert!(
            json.contains("\"delta\":5"),
            "delta, not the 15 total: {json}"
        );
        assert!(
            json.contains("\"delta_count\":2,\"delta_sum\":100"),
            "{json}"
        );
        assert!(json.contains("\"value\":1"), "gauges are absolute: {json}");
        assert!(json.contains(r#""labels":{"scope":"a"}"#), "{json}");
    }

    #[test]
    fn idle_intervals_ring_empty_frames_and_capacity_bounds() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", "C.", &[]);
        c.inc();
        let history = MetricsHistory::with_capacity(2);
        history.observe(reg.snapshot(), 0);
        for t in 1..=5u64 {
            history.observe(reg.snapshot(), t * 1_000);
        }
        assert_eq!(history.len(), 2, "ring is bounded");
        let json = history.render_json();
        // Nothing moved after the baseline: counters lists are empty.
        assert!(json.contains("\"counters\":[]"), "{json}");
        assert!(json.contains("\"unix_ms\":5000"), "{json}");
        assert!(!json.contains("\"unix_ms\":1000"), "oldest evicted: {json}");
    }

    #[test]
    fn render_is_balanced_json() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", "X.", &[("k", "v\"w")]).inc();
        let history = MetricsHistory::with_capacity(4);
        history.observe(reg.snapshot(), 1);
        reg.counter("x_total", "X.", &[("k", "v\"w")]).inc();
        history.observe(reg.snapshot(), 2);
        let json = history.render_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
