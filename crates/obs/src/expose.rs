//! Render a registry [`Snapshot`] as Prometheus text exposition (the
//! `GET /metrics` body) or as a compact JSON document (`/metrics.json`,
//! for scrapers that want quantiles precomputed instead of `le` buckets).
//!
//! Both renderers are deterministic for a given snapshot: families sort
//! by name and series by label values, so golden tests can pin the exact
//! output.

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::registry::{FamilySnapshot, SeriesSnapshot, Snapshot, ValueSnapshot};
use std::fmt::Write;

/// Content type of the Prometheus text format, for HTTP servers.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Render `{a="x",b="y"}` (empty string when there are no labels).
/// `extra` appends one more pair (the histogram `le` label).
fn label_block(
    names: &[&'static str],
    values: &[String],
    extra: Option<(&str, &str)>,
    out: &mut String,
) {
    if names.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (name, value) in names.iter().zip(values) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(name);
        out.push_str("=\"");
        escape_label(value, out);
        out.push('"');
    }
    if let Some((name, value)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(name);
        out.push_str("=\"");
        escape_label(value, out);
        out.push('"');
    }
    out.push('}');
}

fn render_histogram_prometheus(
    family: &FamilySnapshot,
    series: &SeriesSnapshot,
    h: &HistogramSnapshot,
    out: &mut String,
) {
    // Cumulative `le` buckets up to the highest non-empty one; the
    // log2 upper bounds (0, 1, 3, 7, …) are exact for integer samples.
    let highest = h
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |i| (i + 1).min(HISTOGRAM_BUCKETS - 1));
    let mut cum = 0u64;
    for (i, &n) in h.buckets.iter().enumerate().take(highest + 1) {
        cum += n;
        out.push_str(family.name);
        out.push_str("_bucket");
        label_block(
            &family.label_names,
            &series.label_values,
            Some(("le", &bucket_upper_bound(i).to_string())),
            out,
        );
        let _ = writeln!(out, " {cum}");
    }
    let count = h.count();
    out.push_str(family.name);
    out.push_str("_bucket");
    label_block(
        &family.label_names,
        &series.label_values,
        Some(("le", "+Inf")),
        out,
    );
    let _ = writeln!(out, " {count}");
    out.push_str(family.name);
    out.push_str("_sum");
    label_block(&family.label_names, &series.label_values, None, out);
    let _ = writeln!(out, " {}", h.sum);
    out.push_str(family.name);
    out.push_str("_count");
    label_block(&family.label_names, &series.label_values, None, out);
    let _ = writeln!(out, " {count}");
}

/// Render the whole snapshot in Prometheus text exposition format.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.name());
        for series in &family.series {
            match &series.value {
                ValueSnapshot::Counter(v) => {
                    out.push_str(family.name);
                    label_block(&family.label_names, &series.label_values, None, &mut out);
                    let _ = writeln!(out, " {v}");
                }
                ValueSnapshot::Gauge(v) => {
                    out.push_str(family.name);
                    label_block(&family.label_names, &series.label_values, None, &mut out);
                    let _ = writeln!(out, " {v}");
                }
                ValueSnapshot::Histogram(h) => {
                    render_histogram_prometheus(family, series, h, &mut out)
                }
            }
        }
    }
    out
}

/// JSON string escaping (control characters, quote, backslash). Shared
/// with the span-record and metrics-history renderers.
pub(crate) fn escape_json(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn json_labels(names: &[&'static str], values: &[String], out: &mut String) {
    out.push('{');
    for (i, (name, value)) in names.iter().zip(values).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, out);
        out.push_str("\":\"");
        escape_json(value, out);
        out.push('"');
    }
    out.push('}');
}

/// Format an estimate with enough precision for dashboards without
/// drowning the payload in digits. Always a valid JSON number.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "0.0".to_string()
    }
}

/// Render the snapshot as compact JSON:
///
/// ```json
/// {"counters":[{"name":"...","labels":{...},"value":1}],
///  "gauges":[{"name":"...","labels":{...},"value":0}],
///  "histograms":[{"name":"...","labels":{...},"count":2,"sum":9,
///                 "max":8,"mean":4.5,"p50":...,"p90":...,"p99":...}]}
/// ```
pub fn render_json(snapshot: &Snapshot) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut histograms = String::new();
    for family in &snapshot.families {
        for series in &family.series {
            let (out, body): (&mut String, String) = match &series.value {
                ValueSnapshot::Counter(v) => (&mut counters, format!("\"value\":{v}")),
                ValueSnapshot::Gauge(v) => (&mut gauges, format!("\"value\":{v}")),
                ValueSnapshot::Histogram(h) => (
                    &mut histograms,
                    format!(
                        "\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                        h.count(),
                        h.sum,
                        h.max,
                        json_f64(h.mean()),
                        json_f64(h.quantile(0.50)),
                        json_f64(h.quantile(0.90)),
                        json_f64(h.quantile(0.99)),
                    ),
                ),
            };
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json(family.name, out);
            out.push_str("\",\"labels\":");
            json_labels(&family.label_names, &series.label_values, out);
            out.push(',');
            out.push_str(&body);
            out.push('}');
        }
    }
    format!("{{\"counters\":[{counters}],\"gauges\":[{gauges}],\"histograms\":[{histograms}]}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn prometheus_counter_and_gauge_lines() {
        let reg = MetricsRegistry::new();
        reg.counter("req_total", "Requests.", &[("endpoint", "predict")])
            .add(3);
        reg.gauge("in_flight", "In flight.", &[]).set(2);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# HELP req_total Requests.\n"));
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{endpoint=\"predict\"} 3\n"));
        assert!(text.contains("# TYPE in_flight gauge\n"));
        assert!(text.contains("in_flight 2\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", "Latency.", &[]);
        h.record(1); // bucket 1 (le 1)
        h.record(3); // bucket 2 (le 3)
        h.record(3);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum 7\n"));
        assert!(text.contains("lat_ns_count 3\n"));
        // Buckets are cumulative and non-decreasing.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", "C.", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains(r#"c_total{path="a\\b\"c\nd"} 1"#), "{text}");
        let json = render_json(&reg.snapshot());
        assert!(json.contains(r#""path":"a\\b\"c\nd""#), "{json}");
    }

    #[test]
    fn json_renders_quantiles_and_parses_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("n_total", "N.", &[("k", "v")]).add(9);
        let h = reg.histogram("d_ns", "D.", &[("k", "v")]);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let json = render_json(&reg.snapshot());
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("\"name\":\"n_total\""));
        assert!(json.contains("\"value\":9"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"sum\":60"));
        assert!(json.contains("\"max\":30"));
        assert!(json.contains("\"p99\":"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in this dependency-free crate (the serve e2e tests
        // parse the real endpoint with serde_json).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_renders_empty_documents() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(render_prometheus(&snap), "");
        assert_eq!(
            render_json(&snap),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        );
    }
}
