//! Request tracing: decompose one request into named, timed phases.
//!
//! A [`PhaseSet`] interns one histogram per phase name up front (off the
//! hot path); a [`SpanTimer`] then walks a request through its phases,
//! recording the elapsed nanoseconds of each into its histogram, and —
//! when the set was built with a total histogram — records the whole
//! span RAII-style on drop, so early-return error paths are still
//! accounted.
//!
//! When recording is disabled ([`crate::enabled`] is false at span
//! start), the timer takes no clock readings at all and every `mark` is
//! a no-op.

use crate::metrics::Histogram;
use crate::registry::MetricsRegistry;
use std::sync::Arc;
use std::time::Instant;

/// Interned per-phase histograms for one endpoint (or any traced
/// operation). Build once, store in a `static`/field, and start a
/// [`SpanTimer`] per request.
pub struct PhaseSet {
    phases: Vec<(&'static str, Arc<Histogram>)>,
    total: Option<Arc<Histogram>>,
}

impl PhaseSet {
    /// Intern `metric{…fixed_labels, phase="<p>"}` histograms for every
    /// phase name, in `registry`.
    pub fn register(
        registry: &MetricsRegistry,
        metric: &'static str,
        help: &'static str,
        fixed_labels: &[(&'static str, &str)],
        phases: &[&'static str],
    ) -> Self {
        let phases = phases
            .iter()
            .map(|&phase| {
                let mut labels: Vec<(&'static str, &str)> = fixed_labels.to_vec();
                labels.push(("phase", phase));
                (phase, registry.histogram(metric, help, &labels))
            })
            .collect();
        Self {
            phases,
            total: None,
        }
    }

    /// Also record every span's total duration into `metric{fixed_labels}`
    /// when the timer drops.
    pub fn with_total(
        mut self,
        registry: &MetricsRegistry,
        metric: &'static str,
        help: &'static str,
        fixed_labels: &[(&'static str, &str)],
    ) -> Self {
        self.total = Some(registry.histogram(metric, help, fixed_labels));
        self
    }

    /// Begin timing one request. Reads the clock only when recording is
    /// enabled.
    pub fn start(&self) -> SpanTimer<'_> {
        let now = crate::enabled().then(Instant::now);
        SpanTimer {
            set: self,
            started: now,
            last: now,
        }
    }
}

/// One in-flight request walking through its phases; see [`PhaseSet`].
pub struct SpanTimer<'a> {
    set: &'a PhaseSet,
    started: Option<Instant>,
    last: Option<Instant>,
}

impl SpanTimer<'_> {
    /// Close the current phase under `phase`'s histogram and open the
    /// next. Unknown phase names are ignored (a misspelling must never
    /// panic a request handler); no-op when recording is disabled.
    pub fn mark(&mut self, phase: &'static str) {
        let Some(last) = self.last else { return };
        let now = Instant::now();
        if let Some((_, hist)) = self.set.phases.iter().find(|(name, _)| *name == phase) {
            hist.record((now - last).as_nanos() as u64);
        }
        self.last = Some(now);
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let (Some(started), Some(total)) = (self.started, &self.set.total) {
            total.record(started.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ValueSnapshot;

    fn hist_count(reg: &MetricsRegistry, name: &str) -> u64 {
        reg.snapshot()
            .families
            .iter()
            .filter(|f| f.name == name)
            .flat_map(|f| &f.series)
            .map(|s| match &s.value {
                ValueSnapshot::Histogram(h) => h.count(),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn phases_and_total_are_recorded() {
        let reg = MetricsRegistry::new();
        let set = PhaseSet::register(
            &reg,
            "phase_ns",
            "Phase duration.",
            &[("endpoint", "predict")],
            &["parse", "predict", "serialize"],
        )
        .with_total(
            &reg,
            "req_ns",
            "Request duration.",
            &[("endpoint", "predict")],
        );
        {
            let mut span = set.start();
            span.mark("parse");
            span.mark("predict");
            span.mark("serialize");
        } // drop records the total
        assert_eq!(hist_count(&reg, "phase_ns"), 3);
        assert_eq!(hist_count(&reg, "req_ns"), 1);
    }

    #[test]
    fn early_return_still_records_total() {
        let reg = MetricsRegistry::new();
        let set = PhaseSet::register(&reg, "p_ns", "P.", &[], &["parse", "predict"]).with_total(
            &reg,
            "t_ns",
            "T.",
            &[],
        );
        {
            let mut span = set.start();
            span.mark("parse");
            // error path: predict never runs
        }
        assert_eq!(hist_count(&reg, "p_ns"), 1);
        assert_eq!(hist_count(&reg, "t_ns"), 1);
    }

    #[test]
    fn unknown_phase_is_ignored() {
        let reg = MetricsRegistry::new();
        let set = PhaseSet::register(&reg, "p2_ns", "P.", &[], &["parse"]);
        let mut span = set.start();
        span.mark("not-a-phase");
        span.mark("parse");
        drop(span);
        assert_eq!(hist_count(&reg, "p2_ns"), 1);
    }
}
