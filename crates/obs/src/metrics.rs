//! The instruments: [`Counter`], [`Gauge`], and the lock-free
//! log2-bucketed [`Histogram`].
//!
//! All three record with relaxed atomics only — no locks, no allocation,
//! no clock reads. Reads (snapshots, quantiles) pay the derivation cost
//! instead, which is the right trade for a serving hot path scraped a few
//! times a minute.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. requests in flight).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one and return an RAII guard that decrements on drop
    /// — the in-flight-requests idiom, panic-safe by construction.
    pub fn track(&self) -> GaugeGuard<'_> {
        self.add(1);
        GaugeGuard { gauge: self }
    }

    /// Set the gauge to an absolute value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Decrements its gauge when dropped; see [`Gauge::track`].
pub struct GaugeGuard<'a> {
    gauge: &'a Gauge,
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.gauge.add(-1);
    }
}

/// Bucket count of a [`Histogram`]: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`, and the last bucket absorbs
/// everything above `2^62 - 1`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index a value lands in (public so exposition and tests agree
/// with the recorder by construction).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket,
/// which also absorbs the overflow range).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A lock-free log2-bucketed histogram over `u64` samples (typically
/// nanoseconds or row counts).
///
/// `record` is three relaxed atomic ops — one bucket `fetch_add`, one sum
/// `fetch_add`, one `fetch_max` — so concurrent recorders never contend
/// on a lock and totals stay exact: the bucket sum always equals the
/// number of `record` calls, no matter the interleaving (asserted by the
/// concurrency stress test).
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy for exposition. Buckets, sum,
    /// and max are read independently with relaxed loads; a snapshot taken
    /// while recorders run may be off by in-flight samples, never by more.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state; quantiles are derived here,
/// on the read side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): find the bucket holding the
    /// target rank, interpolate linearly inside it, and clamp to the
    /// observed max (the true value is within one power of two). Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let lo = bucket_lower_bound(i) as f64;
                let hi = bucket_upper_bound(i).min(self.max) as f64;
                let frac = (target - cum) as f64 / n as f64;
                return (lo + frac * (hi - lo)).min(self.max as f64);
            }
            cum += n;
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.add(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        {
            let _in_flight = g.track();
            assert_eq!(g.get(), 3);
        }
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's bounds bracket the values that land in it.
        for v in [0u64, 1, 2, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v >= super::bucket_lower_bound(i) || v == 0);
            assert!(v <= bucket_upper_bound(i));
        }
    }

    #[test]
    fn histogram_counts_sum_and_max_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1107);
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[bucket_index(1)], 2);
        assert_eq!(s.buckets[bucket_index(0)], 1);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        // Log2 buckets are coarse: the estimate must land within the
        // bucket containing the true quantile (one power of two).
        assert!((256.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!((512.0..=1000.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        assert_eq!(s.quantile(1.0), 1000.0);
        assert!(s.quantile(0.0) > 0.0);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_sample_quantile_is_exact() {
        let h = Histogram::new();
        h.record(777);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(s.quantile(q) <= 777.0);
            assert!(s.quantile(q) >= 512.0);
        }
        assert_eq!(s.quantile(1.0), 777.0);
    }
}
