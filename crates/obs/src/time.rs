//! Wall-clock formatting without chrono: RFC 3339 UTC timestamps from a
//! `SystemTime`/unix-seconds value, for the `/healthz` `started_at`
//! field.

use std::time::{SystemTime, UNIX_EPOCH};

/// Proleptic-Gregorian date from days since 1970-01-01 (Howard Hinnant's
/// `civil_from_days` algorithm, exact over the whole `i64` day range we
/// can encounter).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // year of era
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // day of year [0, 365]
    let mp = (5 * doy + 2) / 153; // month offset from March
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Format unix seconds as RFC 3339 UTC, e.g. `2026-08-07T09:30:00Z`.
pub fn rfc3339_from_unix(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let rem = unix_secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem / 60) % 60,
        rem % 60
    )
}

/// RFC 3339 UTC rendering of a `SystemTime` (times before the epoch
/// clamp to it — they cannot occur on a sane clock).
pub fn rfc3339(t: SystemTime) -> String {
    rfc3339_from_unix(
        t.duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_timestamps_format_exactly() {
        assert_eq!(rfc3339_from_unix(0), "1970-01-01T00:00:00Z");
        assert_eq!(rfc3339_from_unix(86_399), "1970-01-01T23:59:59Z");
        assert_eq!(rfc3339_from_unix(86_400), "1970-01-02T00:00:00Z");
        // Leap day 2000 (divisible-by-400 century leap year).
        assert_eq!(rfc3339_from_unix(951_782_400), "2000-02-29T00:00:00Z");
        // Day after a Feb 28 in a non-leap year.
        assert_eq!(rfc3339_from_unix(1_109_548_800), "2005-02-28T00:00:00Z");
        assert_eq!(rfc3339_from_unix(1_109_635_200), "2005-03-01T00:00:00Z");
        // Recent dates with a time-of-day component (cross-checked
        // against GNU `date -u`).
        assert_eq!(rfc3339_from_unix(1_754_560_922), "2025-08-07T10:02:02Z");
        assert_eq!(rfc3339_from_unix(1_786_094_522), "2026-08-07T09:22:02Z");
    }

    #[test]
    fn round_trips_day_arithmetic() {
        // Every day boundary over several leap cycles formats to a date
        // whose day-of-month never exceeds its month's length.
        for day in 0..(366 * 12) {
            let s = rfc3339_from_unix(day as u64 * 86_400);
            let month: u32 = s[5..7].parse().unwrap();
            let dom: u32 = s[8..10].parse().unwrap();
            assert!((1..=12).contains(&month), "{s}");
            assert!((1..=31).contains(&dom), "{s}");
        }
    }

    #[test]
    fn system_time_now_is_parseable_shape() {
        let s = rfc3339(SystemTime::now());
        assert_eq!(s.len(), 20);
        assert_eq!(&s[4..5], "-");
        assert_eq!(&s[10..11], "T");
        assert!(s.ends_with('Z'));
    }
}
