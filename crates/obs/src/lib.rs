//! # lam-obs
//!
//! Zero-dependency in-process observability for the serving, tuning, and
//! registry hot paths. The paper's premise is that you cannot tune what
//! you cannot measure; this crate applies that to the serving stack
//! itself.
//!
//! * [`metrics`] — the instruments: an atomic [`Counter`], a signed
//!   [`Gauge`], and a lock-free log2-bucketed [`Histogram`] that records
//!   in a handful of relaxed `fetch_add`s and derives p50/p90/p99/max on
//!   read;
//! * [`registry`] — a labeled [`MetricsRegistry`] (process-global behind
//!   `OnceLock`) interning `(name, labels)` → instrument so hot paths
//!   hold pre-resolved `Arc` handles and never touch a lock per event;
//! * [`span`] — [`SpanTimer`], an RAII tracer decomposing one request
//!   into named phases (parse → validate → … → serialize), each feeding a
//!   phase histogram;
//! * [`expose`] — Prometheus text exposition and a compact JSON
//!   rendering of a registry [`Snapshot`];
//! * [`trace`] — the distributed-tracing context: 128-bit trace id +
//!   span id + flags, carried between processes in the `x-lam-trace`
//!   header, with deterministic child-span derivation;
//! * [`recorder`] — the flight recorder: a wait-free ring of completed
//!   [`SpanRecord`]s with tail-based sampling (errors/sheds/slow/forced
//!   always kept, bulk traffic sampled by trace id);
//! * [`history`] — a ring of timestamped registry delta frames behind
//!   `GET /metrics/history`;
//! * [`time`] — an RFC 3339 formatter for wall-clock timestamps (no
//!   chrono in this container).
//!
//! ## Overhead contract
//!
//! Instrumented call sites gate on [`enabled`] (one relaxed atomic load)
//! and skip every clock read and atomic update when recording is off.
//! `results/BENCH_obs.json` records the measured cost of the instrumented
//! cached-predict path against the disabled baseline; the budget is <2%
//! at batch 256.
//!
//! ```
//! use lam_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let hits = reg.counter("cache_hits_total", "Cache hits.", &[("scope", "demo")]);
//! hits.inc();
//! let lat = reg.histogram("latency_ns", "Latency.", &[("scope", "demo")]);
//! lat.record(1500);
//! let text = lam_obs::expose::render_prometheus(&reg.snapshot());
//! assert!(text.contains("cache_hits_total{scope=\"demo\"} 1"));
//! ```

pub mod expose;
pub mod history;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod time;
pub mod trace;

pub use metrics::{Counter, Gauge, GaugeGuard, Histogram, HistogramSnapshot};
pub use recorder::{FlightRecorder, SpanRecord, SpanStatus};
pub use registry::{
    FamilySnapshot, MetricKind, MetricsRegistry, SeriesSnapshot, Snapshot, ValueSnapshot,
};
pub use span::{PhaseSet, SpanTimer};
pub use trace::TraceContext;

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide recording switch, on by default. Call sites that would
/// pay for a clock read or an atomic update check this first, so turning
/// it off reduces instrumentation to one relaxed load per site — the
/// baseline the overhead bench compares against.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric recording on?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off process-wide (used by the overhead
/// bench; servers leave it on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global metrics registry every subsystem records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}
