//! Trace context: the identifiers that stitch one request's path across
//! processes.
//!
//! A context is a 128-bit trace id (one per end-to-end request), a
//! 64-bit span id (one per operation within the trace), and a flags
//! byte. It rides between processes in the `x-lam-trace` header as
//! `<32 hex trace id>-<16 hex span id>-<2 hex flags>`; the receiving
//! side parses it and derives child spans deterministically, so the
//! whole tree shares one trace id and every parent link is consistent
//! without any coordination.
//!
//! Child ids come from a splitmix64 mix of the parent span id and a
//! per-parent sequence number: sibling spans (scatter legs) get distinct
//! ids, retries of the same derivation get the same id, and no global
//! counter is shared across threads. Root ids are minted from the
//! wall clock, the pid, and a process-local counter — unique enough for
//! a flight recorder without a CSPRNG dependency.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The header that carries a [`TraceContext`] between processes.
pub const HEADER: &str = "x-lam-trace";

/// Flag bit: always retain this trace in the flight recorder,
/// bypassing tail sampling. Set by callers that intend to fetch the
/// trace afterwards (tests, smoke scripts, ad-hoc debugging).
pub const FLAG_FORCE: u8 = 0x01;

/// One request's position in its trace: which trace, which span, and
/// the propagated flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit id shared by every span of one end-to-end request.
    pub trace_id: u128,
    /// 64-bit id of the current span (never 0; 0 means "no parent").
    pub span_id: u64,
    /// Propagated flag bits; see [`FLAG_FORCE`].
    pub flags: u8,
}

/// The splitmix64 finalizer: a cheap, high-quality bijective mixer.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A span id is never 0 (0 marks "root, no parent" in records).
#[inline]
fn nonzero(id: u64) -> u64 {
    if id == 0 {
        1
    } else {
        id
    }
}

impl TraceContext {
    /// Mint a fresh root context: a new trace id and a new root span id,
    /// flags clear. Uniqueness comes from wall clock ⊕ pid ⊕ a
    /// process-local counter, each pushed through splitmix64.
    pub fn root() -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seed =
            nanos ^ (u64::from(std::process::id()) << 32) ^ SEQ.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(seed);
        let lo = splitmix64(seed ^ 0xa076_1d64_78bd_642f);
        Self {
            trace_id: (u128::from(hi) << 64) | u128::from(lo),
            span_id: nonzero(splitmix64(hi ^ lo)),
            flags: 0,
        }
    }

    /// Derive the `seq`-th child span of this span: same trace id and
    /// flags, a new span id that is a pure function of (parent span,
    /// seq) — scatter legs pass their leg index and get stable sibling
    /// ids.
    pub fn child(&self, seq: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: nonzero(splitmix64(self.span_id ^ splitmix64(seq))),
            flags: self.flags,
        }
    }

    /// Is the force-retain flag set?
    pub fn forced(&self) -> bool {
        self.flags & FLAG_FORCE != 0
    }

    /// This context with the force-retain flag set.
    pub fn with_force(mut self) -> Self {
        self.flags |= FLAG_FORCE;
        self
    }

    /// Render the `x-lam-trace` header value:
    /// `{trace_id:032x}-{span_id:016x}-{flags:02x}`.
    pub fn header_value(&self) -> String {
        format!(
            "{:032x}-{:016x}-{:02x}",
            self.trace_id, self.span_id, self.flags
        )
    }

    /// Parse a header value produced by [`TraceContext::header_value`].
    /// Returns `None` on any malformed input (wrong field count, wrong
    /// width, non-hex, zero trace or span id) — a bad header is treated
    /// as no header.
    pub fn parse(value: &str) -> Option<Self> {
        let mut parts = value.trim().split('-');
        let (t, s, f) = (parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() || t.len() != 32 || s.len() != 16 || f.len() != 2 {
            return None;
        }
        let trace_id = u128::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(s, 16).ok()?;
        let flags = u8::from_str_radix(f, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(Self {
            trace_id,
            span_id,
            flags,
        })
    }
}

/// Parse a bare 32-hex-digit trace id (the `/traces/{id}` path segment).
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok().filter(|&id| id != 0)
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The current thread's active trace context, if a request handler set
/// one. Lets deep call sites (registry resolution, batch internals)
/// attach spans to the request that caused them without threading the
/// context through every signature.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Set (or clear) the current thread's trace context, returning the
/// previous value. Prefer [`set_scoped`] in handler code.
pub fn set_current(ctx: Option<TraceContext>) -> Option<TraceContext> {
    CURRENT.with(|c| c.replace(ctx))
}

/// Set the current context for a lexical scope; the previous value is
/// restored when the guard drops (panic-safe).
pub fn set_scoped(ctx: TraceContext) -> CurrentGuard {
    CurrentGuard {
        prev: set_current(Some(ctx)),
    }
}

/// Restores the previous thread-local context on drop; see
/// [`set_scoped`].
pub struct CurrentGuard {
    prev: Option<TraceContext>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        set_current(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
            span_id: 0xfedc_ba98_7654_3210,
            flags: FLAG_FORCE,
        };
        let value = ctx.header_value();
        assert_eq!(
            value,
            "0123456789abcdef0123456789abcdef-fedcba9876543210-01"
        );
        assert_eq!(TraceContext::parse(&value), Some(ctx));
    }

    #[test]
    fn malformed_headers_parse_to_none() {
        for bad in [
            "",
            "nonsense",
            "0123456789abcdef0123456789abcdef-fedcba9876543210", // 2 fields
            "0123456789abcdef-fedcba9876543210-01",              // short trace
            "0123456789abcdef0123456789abcdef-fedcba98765432-01", // short span
            "0123456789abcdef0123456789abcdef-fedcba9876543210-1", // short flags
            "0123456789abcdef0123456789abcdef-fedcba9876543210-01-00", // 4 fields
            "zzzz456789abcdef0123456789abcdef-fedcba9876543210-01", // non-hex
            "00000000000000000000000000000000-fedcba9876543210-01", // zero trace
            "0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn roots_are_distinct_and_children_deterministic() {
        let a = TraceContext::root();
        let b = TraceContext::root();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert_eq!(a.flags, 0);

        let c0 = a.child(0);
        let c1 = a.child(1);
        assert_eq!(c0, a.child(0), "child derivation must be deterministic");
        assert_ne!(c0.span_id, c1.span_id, "siblings need distinct ids");
        assert_ne!(c0.span_id, a.span_id);
        assert_eq!(c0.trace_id, a.trace_id);
        assert_eq!(c0.flags, a.flags);
    }

    #[test]
    fn force_flag_propagates_to_children() {
        let root = TraceContext::root().with_force();
        assert!(root.forced());
        assert!(root.child(3).forced());
        assert!(!TraceContext::root().forced());
    }

    #[test]
    fn trace_id_segment_parses() {
        let ctx = TraceContext::root();
        let hex = format!("{:032x}", ctx.trace_id);
        assert_eq!(parse_trace_id(&hex), Some(ctx.trace_id));
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id(&"0".repeat(32)), None);
    }

    #[test]
    fn scoped_context_restores_on_drop() {
        assert_eq!(current(), None);
        let outer = TraceContext::root();
        let _g = set_scoped(outer);
        assert_eq!(current(), Some(outer));
        {
            let inner = outer.child(1);
            let _g2 = set_scoped(inner);
            assert_eq!(current(), Some(inner));
        }
        assert_eq!(current(), Some(outer));
        drop(_g);
        assert_eq!(current(), None);
    }
}
