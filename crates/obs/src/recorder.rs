//! The flight recorder: a fixed-capacity, wait-free ring of completed
//! span records with tail-based sampling.
//!
//! Writers never block and never wait: recording claims a slot with one
//! `fetch_add`, swaps the slot's state word, and either writes (slot
//! free) or drops the record and counts it (slot momentarily owned by a
//! reader or another writer — a collision on a ring thousands of slots
//! deep, so vanishingly rare). Readers scan the ring with
//! `compare_exchange`, clone what they can, and skip what they cannot;
//! they never make a writer wait.
//!
//! ## Tail sampling
//!
//! Keeping every span of every request would evict the interesting
//! traces in milliseconds under load, so retention is decided per
//! completed span, biased toward what an operator will actually look
//! for:
//!
//! * **errors and sheds** — always kept;
//! * **slow spans** (duration ≥ the slow threshold) — always kept;
//! * **force-flagged traces** ([`crate::trace::FLAG_FORCE`]) — always
//!   kept (tests and smoke scripts use this for determinism);
//! * **everything else** — kept iff `hash(trace_id) % sample_every == 0`.
//!
//! The bulk-sampling decision hashes the *trace id*, not the span, so
//! every process in a cluster independently keeps or drops the *same*
//! traces — a sampled-in trace is complete across the gateway and all
//! backends, never a torn fragment.
//!
//! Knobs (read once when the global recorder is first touched):
//! `LAM_TRACE_CAPACITY` (slots, default 4096), `LAM_TRACE_SAMPLE`
//! (keep 1 in N bulk traces, default 64; ≤ 1 keeps all), and
//! `LAM_TRACE_SLOW_MS` (slow-trace threshold, default 50ms).

use crate::trace::{splitmix64, TraceContext, FLAG_FORCE};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default ring capacity, in span records.
pub const DEFAULT_CAPACITY: usize = 4096;
/// Default bulk sampling rate: keep 1 in this many unflagged ok-status
/// traces.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;
/// Default slow-trace threshold in nanoseconds (50ms).
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 50_000_000;

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// Completed normally.
    Ok,
    /// Failed (5xx, upstream error, exhausted failover).
    Error,
    /// Load-shed (503 from a full queue or a dead cluster).
    Shed,
}

impl SpanStatus {
    /// Stable wire name (`ok` / `error` / `shed`).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Error => "error",
            SpanStatus::Shed => "shed",
        }
    }
}

/// One completed span: an operation's identity, timing, outcome, and
/// low-cardinality annotations (shard address, row count, batch
/// occupancy, resolution path, …).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// This span's id (never 0).
    pub span_id: u64,
    /// Parent span id; 0 for a root span.
    pub parent_id: u64,
    /// Operation name, e.g. `gateway.request` or `serve.queue`.
    pub name: &'static str,
    /// Which process recorded it (`serve` unless overridden by
    /// [`set_service`]).
    pub service: &'static str,
    /// Wall-clock start, nanoseconds since the unix epoch.
    pub start_unix_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Outcome.
    pub status: SpanStatus,
    /// Propagated trace flags (drives force-retention).
    pub flags: u8,
    /// `(key, value)` annotations, in insertion order.
    pub annotations: Vec<(&'static str, String)>,
}

/// Nanoseconds since the unix epoch, now.
pub fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

impl SpanRecord {
    /// Build a completed span for `ctx` from its monotonic start
    /// instant: duration is `started.elapsed()`, the wall-clock start is
    /// back-derived from one `SystemTime` read taken now.
    pub fn finish(
        ctx: &TraceContext,
        parent_id: u64,
        name: &'static str,
        started: Instant,
        status: SpanStatus,
    ) -> Self {
        let duration_ns = started.elapsed().as_nanos() as u64;
        Self {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id,
            name,
            service: service(),
            start_unix_ns: unix_now_ns().saturating_sub(duration_ns),
            duration_ns,
            status,
            flags: ctx.flags,
            annotations: Vec::new(),
        }
    }

    /// Append one annotation (builder-style).
    pub fn annotate(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.annotations.push((key, value.into()));
        self
    }

    /// Render this span as a JSON object (ids in fixed-width hex,
    /// annotations as a string map).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "{{\"trace_id\":\"{:032x}\",\"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\",",
                self.trace_id, self.span_id, self.parent_id
            ),
        );
        out.push_str("\"name\":\"");
        crate::expose::escape_json(self.name, &mut out);
        out.push_str("\",\"service\":\"");
        crate::expose::escape_json(self.service, &mut out);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "\",\"start_unix_ns\":{},\"duration_ns\":{},\"status\":\"{}\",\"annotations\":{{",
                self.start_unix_ns,
                self.duration_ns,
                self.status.as_str()
            ),
        );
        for (i, (key, value)) in self.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::expose::escape_json(key, &mut out);
            out.push_str("\":\"");
            crate::expose::escape_json(value, &mut out);
            out.push('"');
        }
        out.push_str("}}");
        out
    }
}

const EMPTY: u8 = 0;
const READY: u8 = 1;
const BUSY: u8 = 2;

/// One ring slot: a state word mediating exclusive access to the record
/// behind it.
struct Slot {
    state: AtomicU8,
    data: UnsafeCell<Option<SpanRecord>>,
}

// Access to `data` is mediated by `state`: only the thread that moved
// the slot into BUSY touches the cell, and the READY/EMPTY transitions
// publish/acquire it.
unsafe impl Sync for Slot {}

/// The wait-free span ring; see the module docs. Use [`global`] for the
/// process-wide instance.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicUsize,
    sample_every: AtomicU64,
    slow_threshold_ns: AtomicU64,
    recorded: AtomicU64,
    sampled_out: AtomicU64,
    dropped: AtomicU64,
}

/// Would a bulk (ok-status, unflagged, fast) span of `trace_id` be kept
/// at sampling rate `sample_every`? Public so tests can predict the
/// exact retained set.
pub fn sampled(trace_id: u128, sample_every: u64) -> bool {
    if sample_every <= 1 {
        return true;
    }
    splitmix64((trace_id as u64) ^ ((trace_id >> 64) as u64)).is_multiple_of(sample_every)
}

impl FlightRecorder {
    /// A recorder with `capacity` slots (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    state: AtomicU8::new(EMPTY),
                    data: UnsafeCell::new(None),
                })
                .collect(),
            head: AtomicUsize::new(0),
            sample_every: AtomicU64::new(DEFAULT_SAMPLE_EVERY),
            slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS),
            recorded: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Keep 1 in `n` bulk traces (≤ 1 keeps all).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// Current bulk sampling rate.
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Spans at least this long are always retained.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// `(recorded, sampled_out, dropped)` counters: spans written to the
    /// ring, spans tail-sampling discarded, spans lost to a slot
    /// collision.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.recorded.load(Ordering::Relaxed),
            self.sampled_out.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }

    /// Does the tail-sampling policy keep this span?
    fn retains(&self, rec: &SpanRecord) -> bool {
        rec.flags & FLAG_FORCE != 0
            || rec.status != SpanStatus::Ok
            || rec.duration_ns >= self.slow_threshold_ns.load(Ordering::Relaxed)
            || sampled(rec.trace_id, self.sample_every.load(Ordering::Relaxed))
    }

    /// Record one completed span (wait-free; see the module docs).
    pub fn record(&self, rec: SpanRecord) {
        if !self.retains(&rec) {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let slot = &self.slots[idx];
        if slot.state.swap(BUSY, Ordering::Acquire) == BUSY {
            // A reader (or a writer that lapped the whole ring) holds
            // this slot right now. Waiting would make the writer block
            // on the reader; dropping one record is the wait-free trade.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { *slot.data.get() = Some(rec) };
        slot.state.store(READY, Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Clone every readable record (unordered). Slots mid-write are
    /// skipped, never waited on.
    pub fn iter_records(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            if slot
                .state
                .compare_exchange(READY, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let rec = unsafe { (*slot.data.get()).clone() };
                slot.state.store(READY, Ordering::Release);
                out.extend(rec);
            }
        }
        out
    }

    /// Every retained span of `trace_id`, ordered by start time then
    /// span id.
    pub fn find_trace(&self, trace_id: u128) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .iter_records()
            .into_iter()
            .filter(|r| r.trace_id == trace_id)
            .collect();
        spans.sort_by_key(|r| (r.start_unix_ns, r.span_id));
        spans.dedup_by_key(|r| r.span_id);
        spans
    }
}

/// Render a `/traces/{id}` body: the trace id and its span objects
/// (already-serialized JSON objects in `span_json`).
pub fn render_trace_json(trace_id: u128, span_json: &[String]) -> String {
    format!(
        "{{\"trace_id\":\"{:032x}\",\"spans\":[{}]}}",
        trace_id,
        span_json.join(",")
    )
}

/// Render a `/traces` body: per-trace summaries of `records`, newest
/// first, at most `limit` traces. Each summary carries the trace id,
/// span count, the root span's name/service/status/duration when the
/// root is retained (the longest span otherwise), and the earliest
/// start.
pub fn render_recent_json(records: &[SpanRecord], limit: usize) -> String {
    // Group by trace id: (earliest start, representative span index,
    // span count, worst status).
    let mut traces: Vec<(u128, u64, usize, usize, SpanStatus)> = Vec::new();
    for (idx, rec) in records.iter().enumerate() {
        match traces.iter_mut().find(|t| t.0 == rec.trace_id) {
            Some(t) => {
                t.1 = t.1.min(rec.start_unix_ns);
                let best = &records[t.2];
                let better_root = (rec.parent_id == 0 && best.parent_id != 0)
                    || (rec.parent_id == 0) == (best.parent_id == 0)
                        && rec.duration_ns > best.duration_ns;
                if better_root {
                    t.2 = idx;
                }
                t.3 += 1;
                if rec.status != SpanStatus::Ok {
                    t.4 = rec.status;
                }
            }
            None => traces.push((rec.trace_id, rec.start_unix_ns, idx, 1, rec.status)),
        }
    }
    traces.sort_by_key(|t| std::cmp::Reverse(t.1));
    traces.truncate(limit);
    let entries: Vec<String> = traces
        .iter()
        .map(|&(trace_id, start, idx, count, status)| {
            let root = &records[idx];
            let mut out = String::with_capacity(128);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("{{\"trace_id\":\"{trace_id:032x}\",\"spans\":{count},\"root\":\""),
            );
            crate::expose::escape_json(root.name, &mut out);
            out.push_str("\",\"service\":\"");
            crate::expose::escape_json(root.service, &mut out);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "\",\"status\":\"{}\",\"start_unix_ns\":{start},\"duration_ns\":{}}}",
                    status.as_str(),
                    root.duration_ns
                ),
            );
            out
        })
        .collect();
    format!("{{\"traces\":[{}]}}", entries.join(","))
}

static SERVICE: OnceLock<&'static str> = OnceLock::new();

/// Name this process in every subsequent span record (first caller
/// wins; the gateway calls this with `"gateway"` at startup). Defaults
/// to `"serve"`.
pub fn set_service(name: &'static str) {
    let _ = SERVICE.set(name);
}

/// The current process's service name for span records.
pub fn service() -> &'static str {
    SERVICE.get().copied().unwrap_or("serve")
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The process-global flight recorder. First touch reads the
/// `LAM_TRACE_CAPACITY` / `LAM_TRACE_SAMPLE` / `LAM_TRACE_SLOW_MS`
/// environment knobs.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = env_u64("LAM_TRACE_CAPACITY")
            .map(|n| n as usize)
            .unwrap_or(DEFAULT_CAPACITY);
        let recorder = FlightRecorder::with_capacity(capacity);
        if let Some(n) = env_u64("LAM_TRACE_SAMPLE") {
            recorder.set_sample_every(n);
        }
        if let Some(ms) = env_u64("LAM_TRACE_SLOW_MS") {
            recorder.set_slow_threshold_ns(ms.saturating_mul(1_000_000));
        }
        recorder
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_span(trace_id: u128, span_id: u64) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_id: 0,
            name: "test.op",
            service: "serve",
            start_unix_ns: span_id,
            duration_ns: 10,
            status: SpanStatus::Ok,
            flags: 0,
            annotations: Vec::new(),
        }
    }

    #[test]
    fn errors_sheds_slow_and_forced_bypass_sampling() {
        let rec = FlightRecorder::with_capacity(64);
        rec.set_sample_every(u64::MAX); // bulk sampling keeps ~nothing
        rec.set_slow_threshold_ns(1_000);

        let mut shed = ok_span(7, 1);
        shed.status = SpanStatus::Shed;
        let mut error = ok_span(7, 2);
        error.status = SpanStatus::Error;
        let mut slow = ok_span(7, 3);
        slow.duration_ns = 5_000;
        let mut forced = ok_span(7, 4);
        forced.flags = FLAG_FORCE;
        let bulk = ok_span(7, 5);

        for r in [shed, error, slow, forced, bulk] {
            rec.record(r);
        }
        let kept: Vec<u64> = rec.find_trace(7).iter().map(|r| r.span_id).collect();
        assert_eq!(kept, vec![1, 2, 3, 4], "bulk span 5 must be sampled out");
        let (recorded, sampled_out, dropped) = rec.stats();
        assert_eq!((recorded, sampled_out, dropped), (4, 1, 0));
    }

    #[test]
    fn bulk_sampling_is_deterministic_on_the_trace_id() {
        let rec = FlightRecorder::with_capacity(4096);
        rec.set_sample_every(16);
        rec.set_slow_threshold_ns(u64::MAX);
        let n = 1000u128;
        for id in 1..=n {
            rec.record(ok_span(id, 1));
        }
        let kept: Vec<u128> = (1..=n)
            .filter(|&id| !rec.find_trace(id).is_empty())
            .collect();
        let expected: Vec<u128> = (1..=n).filter(|&id| sampled(id, 16)).collect();
        assert_eq!(kept, expected, "retention must match the predicate");
        // The rate is in the right ballpark (not all, not none).
        assert!(kept.len() > 20 && kept.len() < 200, "{}", kept.len());
    }

    #[test]
    fn ring_overwrites_oldest_without_growing() {
        let rec = FlightRecorder::with_capacity(8);
        rec.set_sample_every(1); // keep everything
        for span_id in 1..=20u64 {
            rec.record(ok_span(1, span_id));
        }
        let spans = rec.find_trace(1);
        assert_eq!(spans.len(), 8, "capacity bounds retention");
        // The survivors are exactly the 8 newest.
        assert!(spans.iter().all(|r| r.span_id > 12), "{spans:?}");
        let (recorded, _, dropped) = rec.stats();
        assert_eq!(recorded, 20);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn concurrent_writers_and_readers_stay_consistent() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(128));
        rec.set_sample_every(1);
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        rec.record(ok_span(u128::from(w + 1), i + 1));
                    }
                })
            })
            .collect();
        let reader = {
            let rec = std::sync::Arc::clone(&rec);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for r in rec.iter_records() {
                        assert!(r.span_id >= 1 && r.span_id <= 2_000, "torn record");
                        assert!(r.trace_id >= 1 && r.trace_id <= 4);
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        let (recorded, sampled_out, dropped) = rec.stats();
        assert_eq!(recorded + dropped, 8_000);
        assert_eq!(sampled_out, 0);
        assert_eq!(rec.iter_records().len(), 128);
    }

    #[test]
    fn span_json_shape_and_escaping() {
        let span = SpanRecord {
            trace_id: 0xabc,
            span_id: 0x12,
            parent_id: 0,
            name: "gateway.request",
            service: "gateway",
            start_unix_ns: 1_000,
            duration_ns: 2_000,
            status: SpanStatus::Shed,
            flags: 0,
            annotations: vec![("backend", "127.0.0.1:9\"000".to_string())],
        };
        let json = span.to_json();
        assert!(json.contains("\"trace_id\":\"00000000000000000000000000000abc\""));
        assert!(json.contains("\"span_id\":\"0000000000000012\""));
        assert!(json.contains("\"parent_id\":\"0000000000000000\""));
        assert!(json.contains("\"status\":\"shed\""));
        assert!(json.contains(r#""backend":"127.0.0.1:9\"000""#), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let doc = render_trace_json(0xabc, &[json.clone(), json]);
        assert!(doc.starts_with("{\"trace_id\":\"00000000000000000000000000000abc\",\"spans\":["));
        assert_eq!(doc.matches("gateway.request").count(), 2);
    }

    #[test]
    fn recent_summaries_group_by_trace_newest_first() {
        let mut old_root = ok_span(1, 1);
        old_root.start_unix_ns = 100;
        old_root.duration_ns = 50;
        let mut old_child = ok_span(1, 2);
        old_child.parent_id = 1;
        old_child.start_unix_ns = 110;
        let mut new_root = ok_span(2, 3);
        new_root.start_unix_ns = 900;
        new_root.status = SpanStatus::Error;
        let json = render_recent_json(&[old_root, old_child, new_root], 10);
        let first = json.find("00000000000000000000000000000002").unwrap();
        let second = json.find("00000000000000000000000000000001").unwrap();
        assert!(first < second, "newest trace must lead: {json}");
        assert!(json.contains("\"spans\":2"), "{json}");
        assert!(json.contains("\"status\":\"error\""), "{json}");
    }
}
