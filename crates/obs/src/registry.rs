//! The labeled metrics registry: `(metric name, label values)` →
//! interned instrument.
//!
//! Interning happens under an `RwLock` and is meant to run **off** the
//! hot path: a subsystem resolves its `Arc<Counter>`/`Arc<Histogram>`
//! handles once (at construction, at model load, at first request for a
//! label set) and then records through the handle with no registry
//! involvement at all. Scrapes take one read lock to snapshot.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// What a metric family measures, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Signed instantaneous value.
    Gauge,
    /// Log2-bucketed sample distribution.
    Histogram,
}

impl MetricKind {
    /// The exposition-format type name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One instrument behind its family's label values.
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All series of one metric name, sharing help text, kind, and label
/// schema.
struct Family {
    help: &'static str,
    kind: MetricKind,
    label_names: Vec<&'static str>,
    series: BTreeMap<Vec<String>, Series>,
}

/// A labeled metrics registry; see the module docs for the interning
/// contract. Use [`crate::global`] for the process-wide instance.
#[derive(Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<&'static str, Family>>,
}

/// `true` iff `name` is a valid exposition metric or label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`; we don't use the colon namespace).
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl MetricsRegistry {
    /// An empty registry (unit tests; production code records into
    /// [`crate::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern the counter `name{labels}`, registering the family on first
    /// use. Panics if `name` is already registered as a different kind or
    /// with a different label schema — that is a programming error, not a
    /// runtime condition.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.intern(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(Counter::new()))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in intern"),
        }
    }

    /// Intern the gauge `name{labels}`; see [`MetricsRegistry::counter`].
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.intern(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Arc::new(Gauge::new()))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in intern"),
        }
    }

    /// Intern the histogram `name{labels}`; see
    /// [`MetricsRegistry::counter`].
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        match self.intern(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(Histogram::new()))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in intern"),
        }
    }

    fn intern(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let values: Vec<String> = labels.iter().map(|(_, v)| v.to_string()).collect();
        // Fast path: family and series already exist.
        {
            let families = self.families.read().expect("metrics registry poisoned");
            if let Some(family) = families.get(name) {
                Self::check_schema(name, family, kind, labels);
                if let Some(series) = family.series.get(&values) {
                    return clone_series(series);
                }
            }
        }
        // Slow path (first sighting of this series): take the write lock.
        let mut families = self.families.write().expect("metrics registry poisoned");
        let family = families.entry(name).or_insert_with(|| {
            assert!(valid_name(name), "invalid metric name `{name}`");
            for (label, _) in labels {
                assert!(
                    valid_name(label),
                    "invalid label name `{label}` on `{name}`"
                );
            }
            Family {
                help,
                kind,
                label_names: labels.iter().map(|(n, _)| *n).collect(),
                series: BTreeMap::new(),
            }
        });
        Self::check_schema(name, family, kind, labels);
        clone_series(family.series.entry(values).or_insert_with(make))
    }

    fn check_schema(
        name: &str,
        family: &Family,
        kind: MetricKind,
        labels: &[(&'static str, &str)],
    ) {
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {} but requested as {}",
            family.kind.name(),
            kind.name()
        );
        assert!(
            family.label_names.len() == labels.len()
                && family
                    .label_names
                    .iter()
                    .zip(labels)
                    .all(|(have, (want, _))| have == want),
            "metric `{name}` label schema mismatch: registered {:?}, requested {:?}",
            family.label_names,
            labels.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
    }

    /// Sum of a counter family across every label set (0 when the family
    /// does not exist) — the `/healthz` totals query.
    pub fn counter_total(&self, name: &str) -> u64 {
        let families = self.families.read().expect("metrics registry poisoned");
        families.get(name).map_or(0, |family| {
            family
                .series
                .values()
                .map(|s| match s {
                    Series::Counter(c) => c.get(),
                    _ => 0,
                })
                .sum()
        })
    }

    /// Point-in-time copy of every family for exposition, sorted by
    /// metric name (BTreeMap order), series sorted by label values.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.read().expect("metrics registry poisoned");
        Snapshot {
            families: families
                .iter()
                .map(|(&name, family)| FamilySnapshot {
                    name,
                    help: family.help,
                    kind: family.kind,
                    label_names: family.label_names.clone(),
                    series: family
                        .series
                        .iter()
                        .map(|(values, series)| SeriesSnapshot {
                            label_values: values.clone(),
                            value: match series {
                                Series::Counter(c) => ValueSnapshot::Counter(c.get()),
                                Series::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                                Series::Histogram(h) => {
                                    ValueSnapshot::Histogram(Box::new(h.snapshot()))
                                }
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn clone_series(series: &Series) -> Series {
    match series {
        Series::Counter(c) => Series::Counter(Arc::clone(c)),
        Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
        Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
    }
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Families sorted by metric name.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// Keep only families whose name starts with `prefix` (the
    /// `?prefix=` filter on the metrics endpoints). Filtering happens on
    /// the snapshot, *before* rendering, so an unfiltered render is
    /// byte-identical with or without this method in the pipeline — the
    /// empty prefix keeps everything.
    pub fn retain_prefix(mut self, prefix: &str) -> Self {
        if !prefix.is_empty() {
            self.families.retain(|f| f.name.starts_with(prefix));
        }
        self
    }
}

/// Snapshot of one metric family.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Help text for the `# HELP` line.
    pub help: &'static str,
    /// Family kind.
    pub kind: MetricKind,
    /// Label schema shared by every series.
    pub label_names: Vec<&'static str>,
    /// Series sorted by label values.
    pub series: Vec<SeriesSnapshot>,
}

/// Snapshot of one series within a family.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Label values, aligned with the family's `label_names`.
    pub label_values: Vec<String>,
    /// The instrument's state.
    pub value: ValueSnapshot,
}

/// Snapshot of one instrument.
#[derive(Debug, Clone)]
pub enum ValueSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: the bucket array dwarfs the scalar
    /// variants, and snapshots are read-path-only values).
    Histogram(Box<HistogramSnapshot>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", "Requests.", &[("endpoint", "predict")]);
        let b = reg.counter("requests_total", "Requests.", &[("endpoint", "predict")]);
        a.inc();
        b.add(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(), 3);
        // A different label value is a different series.
        let c = reg.counter("requests_total", "Requests.", &[("endpoint", "tune")]);
        assert_eq!(c.get(), 0);
        assert_eq!(reg.counter_total("requests_total"), 3);
    }

    #[test]
    fn counter_total_sums_across_label_sets() {
        let reg = MetricsRegistry::new();
        reg.counter("hits_total", "Hits.", &[("scope", "a")]).add(5);
        reg.counter("hits_total", "Hits.", &[("scope", "b")]).add(7);
        assert_eq!(reg.counter_total("hits_total"), 12);
        assert_eq!(reg.counter_total("no_such_metric"), 0);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "x.", &[]);
        reg.gauge("m", "x.", &[]);
    }

    #[test]
    #[should_panic(expected = "label schema mismatch")]
    fn label_schema_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "x.", &[("a", "1")]);
        reg.counter("m", "x.", &[("b", "1")]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_metric_name_panics() {
        MetricsRegistry::new().counter("bad name", "x.", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", "B.", &[]).inc();
        reg.gauge("a_gauge", "A.", &[]).set(-4);
        reg.histogram("c_ns", "C.", &[("phase", "parse")]).record(9);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["a_gauge", "b_total", "c_ns"]);
        match &snap.families[2].series[0].value {
            ValueSnapshot::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = crate::global().counter("obs_selftest_total", "Self test.", &[]);
        crate::global()
            .counter("obs_selftest_total", "Self test.", &[])
            .inc();
        assert!(a.get() >= 1);
    }
}
