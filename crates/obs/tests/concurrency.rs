//! Concurrency stress tests: the histogram and counters are lock-free
//! and must stay *exact* under contention — N threads × M records must
//! yield totals and per-bucket counts identical to the sequential sum,
//! no matter the interleaving.

use lam_obs::metrics::{bucket_index, HISTOGRAM_BUCKETS};
use lam_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

const THREADS: usize = 8;
const RECORDS_PER_THREAD: usize = 50_000;

/// Deterministic per-thread value stream covering zeros, small values,
/// bucket boundaries, and huge values.
fn value(thread: usize, i: usize) -> u64 {
    match i % 5 {
        0 => 0,
        1 => (i as u64) % 7,
        2 => 1u64 << (i % 40),
        3 => (1u64 << (i % 40)).wrapping_sub(1),
        _ => (thread as u64 + 1) * 1_000_003 + i as u64,
    }
}

#[test]
fn histogram_is_exact_under_contention() {
    let hist = Arc::new(Histogram::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    hist.record(value(t, i));
                }
            });
        }
    });

    // Sequential reference tally.
    let mut expect_buckets = [0u64; HISTOGRAM_BUCKETS];
    let mut expect_sum = 0u128;
    let mut expect_max = 0u64;
    for t in 0..THREADS {
        for i in 0..RECORDS_PER_THREAD {
            let v = value(t, i);
            expect_buckets[bucket_index(v)] += 1;
            expect_sum += u128::from(v);
            expect_max = expect_max.max(v);
        }
    }

    let snap = hist.snapshot();
    assert_eq!(snap.count(), (THREADS * RECORDS_PER_THREAD) as u64);
    assert_eq!(snap.buckets, expect_buckets, "per-bucket counts exact");
    // The sum wraps mod 2^64 by construction of fetch_add; the reference
    // must wrap identically.
    assert_eq!(snap.sum, expect_sum as u64, "sum exact (mod 2^64)");
    assert_eq!(snap.max, expect_max, "max exact");
}

#[test]
fn counters_and_gauges_are_exact_under_contention() {
    let counter = Arc::new(Counter::new());
    let gauge = Arc::new(Gauge::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    counter.add(1 + (i as u64 % 3));
                    let _guard = gauge.track();
                }
            });
        }
    });
    let expect: u64 = (0..RECORDS_PER_THREAD as u64).map(|i| 1 + (i % 3)).sum();
    assert_eq!(counter.get(), expect * THREADS as u64);
    // Every RAII guard dropped: the in-flight gauge is back to zero.
    assert_eq!(gauge.get(), 0);
}

#[test]
fn interning_races_resolve_to_one_series() {
    let reg = Arc::new(MetricsRegistry::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                for i in 0..1_000 {
                    // All threads hammer the same (name, labels): every
                    // clone must alias one underlying counter.
                    reg.counter("race_total", "Race.", &[("shard", "a")]).inc();
                    if i % 100 == 0 {
                        reg.histogram("race_ns", "Race.", &[("shard", "a")])
                            .record(i as u64);
                    }
                }
            });
        }
    });
    assert_eq!(reg.counter_total("race_total"), (THREADS * 1_000) as u64);
    // Scrape while idle: snapshot sees exactly one series per family.
    let snap = reg.snapshot();
    for family in &snap.families {
        assert_eq!(family.series.len(), 1, "family {}", family.name);
    }
}

#[test]
fn snapshot_during_recording_never_tears_totals_backwards() {
    // A scrape racing recorders may miss in-flight samples but must never
    // read a bucket total larger than the records issued so far.
    let hist = Arc::new(Histogram::new());
    let total = (THREADS * 10_000) as u64;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..10_000 {
                    hist.record(value(t, i));
                }
            });
        }
        let hist = Arc::clone(&hist);
        scope.spawn(move || {
            let mut last = 0u64;
            for _ in 0..1_000 {
                let n = hist.snapshot().count();
                assert!(n <= total, "count {n} beyond records issued {total}");
                assert!(n >= last, "count went backwards: {last} -> {n}");
                last = n;
            }
        });
    });
    assert_eq!(hist.count(), total);
}
