//! Exposition-format golden test: the exact `/metrics` text for a fixed
//! registry state is pinned here. Metric names, HELP/TYPE lines, label
//! order, escaping, and histogram bucket layout are a public contract —
//! dashboards and the CI smoke step grep for these strings — so any
//! change to the renderer must consciously update this golden.

use lam_obs::expose::{render_json, render_prometheus, PROMETHEUS_CONTENT_TYPE};
use lam_obs::MetricsRegistry;

fn fixed_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    reg.counter(
        "lam_requests_total",
        "HTTP requests handled, by endpoint and status class.",
        &[("endpoint", "predict"), ("status", "2xx")],
    )
    .add(7);
    reg.counter(
        "lam_requests_total",
        "HTTP requests handled, by endpoint and status class.",
        &[("endpoint", "predict"), ("status", "4xx")],
    )
    .add(2);
    reg.gauge(
        "lam_requests_in_flight",
        "Requests currently being handled.",
        &[],
    )
    .set(1);
    let h = reg.histogram(
        "lam_request_duration_ns",
        "Request handling time, nanoseconds.",
        &[("endpoint", "predict")],
    );
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(6);
    reg.counter(
        "lam_cache_hits_total",
        "Prediction-cache hits.",
        &[("scope", "fmm-small/hybrid")],
    )
    .add(640);
    reg
}

const GOLDEN: &str = "\
# HELP lam_cache_hits_total Prediction-cache hits.
# TYPE lam_cache_hits_total counter
lam_cache_hits_total{scope=\"fmm-small/hybrid\"} 640
# HELP lam_request_duration_ns Request handling time, nanoseconds.
# TYPE lam_request_duration_ns histogram
lam_request_duration_ns_bucket{endpoint=\"predict\",le=\"0\"} 1
lam_request_duration_ns_bucket{endpoint=\"predict\",le=\"1\"} 2
lam_request_duration_ns_bucket{endpoint=\"predict\",le=\"3\"} 3
lam_request_duration_ns_bucket{endpoint=\"predict\",le=\"7\"} 4
lam_request_duration_ns_bucket{endpoint=\"predict\",le=\"15\"} 4
lam_request_duration_ns_bucket{endpoint=\"predict\",le=\"+Inf\"} 4
lam_request_duration_ns_sum{endpoint=\"predict\"} 10
lam_request_duration_ns_count{endpoint=\"predict\"} 4
# HELP lam_requests_in_flight Requests currently being handled.
# TYPE lam_requests_in_flight gauge
lam_requests_in_flight 1
# HELP lam_requests_total HTTP requests handled, by endpoint and status class.
# TYPE lam_requests_total counter
lam_requests_total{endpoint=\"predict\",status=\"2xx\"} 7
lam_requests_total{endpoint=\"predict\",status=\"4xx\"} 2
";

#[test]
fn prometheus_text_matches_golden() {
    assert_eq!(render_prometheus(&fixed_registry().snapshot()), GOLDEN);
}

#[test]
fn content_type_is_the_text_exposition_one() {
    assert_eq!(PROMETHEUS_CONTENT_TYPE, "text/plain; version=0.0.4");
}

#[test]
fn json_matches_golden() {
    let json = render_json(&fixed_registry().snapshot());
    let golden = concat!(
        "{\"counters\":[",
        "{\"name\":\"lam_cache_hits_total\",\"labels\":{\"scope\":\"fmm-small/hybrid\"},\"value\":640},",
        "{\"name\":\"lam_requests_total\",\"labels\":{\"endpoint\":\"predict\",\"status\":\"2xx\"},\"value\":7},",
        "{\"name\":\"lam_requests_total\",\"labels\":{\"endpoint\":\"predict\",\"status\":\"4xx\"},\"value\":2}",
        "],\"gauges\":[",
        "{\"name\":\"lam_requests_in_flight\",\"labels\":{},\"value\":1}",
        "],\"histograms\":[",
        "{\"name\":\"lam_request_duration_ns\",\"labels\":{\"endpoint\":\"predict\"},",
        "\"count\":4,\"sum\":10,\"max\":6,\"mean\":2.5,\"p50\":1.0,\"p90\":6.0,\"p99\":6.0}",
        "]}"
    );
    assert_eq!(json, golden);
}

#[test]
fn empty_prefix_filter_is_byte_identical() {
    // `?prefix=` (or no query at all) must not perturb the exposition
    // in any way: the filtered snapshot renders the exact golden bytes.
    let snap = fixed_registry().snapshot().retain_prefix("");
    assert_eq!(render_prometheus(&snap), GOLDEN);
}

#[test]
fn prefix_filter_keeps_exactly_the_matching_families() {
    let snap = fixed_registry().snapshot().retain_prefix("lam_requests");
    let text = render_prometheus(&snap);
    // Retained families render exactly as in the unfiltered golden.
    assert!(text.contains("lam_requests_total{endpoint=\"predict\",status=\"2xx\"} 7"));
    assert!(text.contains("lam_requests_in_flight 1"));
    // Everything else is gone, from text and JSON alike.
    assert!(!text.contains("lam_cache_hits_total"), "{text}");
    assert!(!text.contains("lam_request_duration_ns"), "{text}");
    let json = render_json(&snap);
    assert!(!json.contains("lam_cache_hits_total"), "{json}");
    assert!(json.contains("\"histograms\":[]"), "{json}");
}

#[test]
fn label_escaping_survives_exposition() {
    let reg = MetricsRegistry::new();
    reg.counter(
        "lam_escape_total",
        "Escaping.",
        &[("path", "C:\\tmp\"x\"\nend")],
    )
    .inc();
    let text = render_prometheus(&reg.snapshot());
    assert!(
        text.contains("lam_escape_total{path=\"C:\\\\tmp\\\"x\\\"\\nend\"} 1"),
        "{text}"
    );
    // The rendered text stays one logical series line: the raw newline
    // must never split the line.
    let series_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("lam_escape_total{"))
        .collect();
    assert_eq!(series_lines.len(), 1);
}
