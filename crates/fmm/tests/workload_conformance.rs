//! The shared `lam-core` Workload conformance suite, run against the FMM
//! configuration spaces.

use lam_core::workload::conformance;
use lam_fmm::config::{space_paper, space_small, FmmSpace};
use lam_fmm::workload::FmmWorkload;
use lam_machine::arch::MachineDescription;

fn check(space: fn() -> FmmSpace) {
    let machine = MachineDescription::blue_waters_xe6();
    let make = || FmmWorkload::new(machine.clone(), space(), 42);
    let noise_free = make().without_noise();
    conformance::assert_workload_conformance(make, &noise_free);
}

#[test]
fn small_space_conforms() {
    check(space_small);
}

#[test]
fn paper_space_conforms() {
    check(space_paper);
}
