//! Property-based tests for the FMM substrate: octree invariants,
//! expansion algebra, interaction-list geometry, and end-to-end accuracy.

use lam_fmm::config::FmmConfig;
use lam_fmm::expansion::{taylor_tensor, MultiIndexSet};
use lam_fmm::kernels::{self, KernelCtx};
use lam_fmm::lists;
use lam_fmm::octree::{morton_decode, morton_encode, CellId, Octree};
use lam_fmm::oracle::FmmOracle;
use lam_fmm::particle::{random_cube, Particle};
use lam_machine::arch::MachineDescription;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Morton encode/decode are inverse bijections on the cube grid.
    #[test]
    fn morton_bijection(x in 0usize..1024, y in 0usize..1024, z in 0usize..1024) {
        prop_assert_eq!(morton_decode(morton_encode([x, y, z])), [x, y, z]);
    }

    /// Octree construction partitions the particle set: counts conserve
    /// and every particle lands in the cell containing its position.
    #[test]
    fn octree_partition_invariant(n in 1usize..600, q in 1usize..128, seed in 0u64..50) {
        let ps = random_cube(n, seed);
        let tree = Octree::build(&ps, q);
        let total: usize = (0..tree.n_leaves()).map(|m| tree.leaf_particles(m).len()).sum();
        prop_assert_eq!(total, n);
        // Population target: N / 8^L ≤ q.
        prop_assert!(n <= q * tree.n_leaves());
        for m in 0..tree.n_leaves() {
            let cell = CellId { level: tree.levels, index: m };
            let c = cell.center();
            let h = cell.half_width() + 1e-12;
            for p in tree.leaf_particles(m) {
                for (pd, cd) in p.pos.iter().zip(&c) {
                    prop_assert!((pd - cd).abs() <= h);
                }
            }
        }
    }

    /// Neighbour lists are symmetric: `a ∈ N(b)` ⇔ `b ∈ N(a)`.
    #[test]
    fn neighbor_symmetry(level in 1usize..4, ix in 0usize..8, iy in 0usize..8, iz in 0usize..8) {
        let side = 1usize << level;
        prop_assume!(ix < side && iy < side && iz < side);
        let a = CellId::from_coords(level, [ix, iy, iz]);
        for b in lists::neighbors(a) {
            prop_assert!(lists::neighbors(b).contains(&a));
        }
    }

    /// Well-separated lists never include adjacent cells, and sizes are
    /// bounded by the interior maximum of 189.
    #[test]
    fn well_separated_bounds(level in 2usize..4, ix in 0usize..8, iy in 0usize..8, iz in 0usize..8) {
        let side = 1usize << level;
        prop_assume!(ix < side && iy < side && iz < side);
        let cell = CellId::from_coords(level, [ix, iy, iz]);
        let ws = lists::well_separated(cell);
        prop_assert!(ws.len() <= 189);
        for w in &ws {
            prop_assert!(lists::is_well_separated(cell, *w));
        }
    }

    /// The derivative tensor is invariant under coordinate reflection with
    /// matching multi-index parity: T_a(-r) = (-1)^|a| T_a(r).
    #[test]
    fn tensor_reflection_parity(x in 0.2f64..2.0, y in -2.0f64..2.0, z in -2.0f64..2.0) {
        let set = MultiIndexSet::new(5);
        let t_pos = taylor_tensor(&set, [x, y, z]);
        let t_neg = taylor_tensor(&set, [-x, -y, -z]);
        for (i, a) in set.indices().iter().enumerate() {
            let parity = if (a[0] + a[1] + a[2]) % 2 == 1 { -1.0 } else { 1.0 };
            prop_assert!((t_pos[i] - parity * t_neg[i]).abs() < 1e-10 * (1.0 + t_pos[i].abs()));
        }
    }

    /// P2M moments are linear in charges.
    #[test]
    fn p2m_linear_in_charge(seed in 0u64..100, scale in 0.1f64..10.0) {
        let ctx = KernelCtx::new(4);
        let ps = random_cube(20, seed);
        let scaled: Vec<Particle> = ps.iter().map(|p| Particle { charge: p.charge * scale, ..*p }).collect();
        let mut m1 = vec![0.0; ctx.n_terms()];
        let mut m2 = vec![0.0; ctx.n_terms()];
        kernels::p2m(&ctx, &ps, [0.5; 3], &mut m1);
        kernels::p2m(&ctx, &scaled, [0.5; 3], &mut m2);
        for (a, b) in m1.iter().zip(&m2) {
            prop_assert!((a * scale - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// The oracle behaves like a time: positive, finite, deterministic.
    #[test]
    fn fmm_oracle_well_behaved(t in 1usize..=16, n in 1000usize..20000, qi in 0usize..4, k in 2usize..=12) {
        let q = [32usize, 64, 128, 256][qi];
        prop_assume!(q <= n);
        let oracle = FmmOracle::new(MachineDescription::blue_waters_xe6(), 9);
        let cfg = FmmConfig { t, n, q, k };
        let time = oracle.execution_time(&cfg);
        prop_assert!(time.is_finite() && time > 0.0);
        prop_assert_eq!(time, oracle.execution_time(&cfg));
    }

    /// Noise-free oracle is monotone in the expansion order.
    #[test]
    fn fmm_oracle_monotone_in_k(n in 4000usize..20000, qi in 0usize..4, k in 2usize..12) {
        let q = [32usize, 64, 128, 256][qi];
        prop_assume!(q <= n);
        let oracle = FmmOracle::new(MachineDescription::blue_waters_xe6(), 9).without_noise();
        let lo = oracle.execution_time(&FmmConfig { t: 1, n, q, k });
        let hi = oracle.execution_time(&FmmConfig { t: 1, n, q, k: k + 1 });
        prop_assert!(hi >= lo);
    }
}

/// End-to-end FMM accuracy on random inputs (not a proptest: expensive).
#[test]
fn fmm_accuracy_random_configs() {
    use lam_fmm::accuracy::{direct_potentials, relative_l2_error};
    use lam_fmm::exec::Fmm;
    for (n, q, k, seed) in [
        (256usize, 8usize, 5usize, 1u64),
        (512, 16, 6, 2),
        (700, 10, 6, 3),
    ] {
        let ps = random_cube(n, seed);
        let err = relative_l2_error(&Fmm::new(k, q, 1).potentials(&ps), &direct_potentials(&ps));
        assert!(err < 5e-3, "N={n} q={q} k={k}: err {err}");
    }
}
