//! Simulated-execution oracle for the FMM: reproducible ground-truth
//! execution times over a [`MachineDescription`].
//!
//! Mirrors the structure of the paper's §IV-B analytical models (P2P and
//! M2L dominate) but adds everything they ignore: the other four kernels,
//! tree construction, boundary-corrected interaction-list sizes (the
//! analytical model assumes the interior values 26/189 everywhere),
//! realistic per-interaction flop counts (`sqrt`/`div` are not one flop),
//! cache residency of leaf blocks and expansion tables, load imbalance,
//! per-level synchronization, and measurement noise.

use crate::config::{FmmConfig, FmmSpace};
use lam_data::Dataset;
use lam_machine::arch::MachineDescription;
use lam_machine::contention::ThreadModel;
use lam_machine::noise::NoiseModel;

/// Flops charged per particle-pair interaction (3 subs, 3 mults + 2 adds
/// for `r²`, `rsqrt` ≈ 8, multiply-accumulate ≈ 2).
pub const FLOPS_PER_PAIR: f64 = 19.0;

/// FMM ground-truth time model.
#[derive(Debug, Clone)]
pub struct FmmOracle {
    machine: MachineDescription,
    thread_model: ThreadModel,
    noise: NoiseModel,
}

impl FmmOracle {
    /// Oracle on a machine with 4% measurement noise (FMM timings jitter
    /// more than stencil sweeps: irregular access, allocation).
    pub fn new(machine: MachineDescription, noise_seed: u64) -> Self {
        Self {
            machine,
            thread_model: ThreadModel {
                serial_fraction: 0.03,
                sync_overhead_s: 8e-6,
                bandwidth_saturation_threads: 6.0,
            },
            noise: NoiseModel::new(0.04, noise_seed),
        }
    }

    /// Disable noise (model-validation tests).
    pub fn without_noise(mut self) -> Self {
        self.noise = NoiseModel::none();
        self
    }

    /// The simulated machine.
    pub fn machine(&self) -> &MachineDescription {
        &self.machine
    }

    /// Mean neighbour-list size (including self) at tree side `s`,
    /// accounting for boundary cells — the paper's model assumes 27.
    fn avg_neighbors(side: usize) -> f64 {
        let s = side as f64;
        ((3.0 * s - 2.0) / s).powi(3)
    }

    /// Mean well-separated-list size at a level with side `s` (s ≥ 4):
    /// all children of parent neighbours minus own neighbours.
    fn avg_well_separated(side: usize) -> f64 {
        let sp = (side / 2) as f64;
        let candidates = 8.0 * ((3.0 * sp - 2.0) / sp).powi(3);
        candidates - Self::avg_neighbors(side)
    }

    /// Deterministic "measured" execution time in seconds for one
    /// configuration.
    pub fn execution_time(&self, cfg: &FmmConfig) -> f64 {
        assert!(cfg.is_valid(), "invalid FMM configuration {cfg:?}");
        let m = &self.machine;
        let n = cfg.n as f64;
        let levels = cfg.tree_levels();
        let terms = cfg.n_terms() as f64;
        let tc = m.time_per_flop();

        if levels < 2 {
            // Degenerate: all-pairs.
            let flops = n * n * FLOPS_PER_PAIR;
            let t = flops * tc + n * 32.0 * 1e-9; // token traffic
            return self.noise.apply(t, cfg.hash64());
        }

        let leaves = cfg.n_leaves() as f64;
        let q_eff = n / leaves;
        let side = 1usize << levels;

        // --- P2P: leaves × avg-neighbour × q_eff² pair interactions.
        // The inner loop vectorizes well; charge 85% flop efficiency.
        let pairs = leaves * Self::avg_neighbors(side) * q_eff * q_eff;
        let flops_p2p = pairs * FLOPS_PER_PAIR / 0.85;
        // Memory: per target leaf, gather 4 streams (x,y,z,w) of each
        // neighbour's particles. Residency: the 27-leaf working set.
        let leaf_bytes = q_eff * 4.0 * m.element_bytes as f64;
        let working_set = 27.0 * leaf_bytes;
        let elems_p2p = leaves * Self::avg_neighbors(side) * q_eff * 4.0;
        let beta_p2p = self.effective_beta(working_set, 0.7);
        let t_p2p = (flops_p2p * tc).max(elems_p2p * beta_p2p);

        // --- M2L: cells at levels 2..=L, boundary-corrected list sizes.
        let mut t_m2l = 0.0;
        let mut m2l_pairs_total = 0.0;
        for level in 2..=levels {
            let s = 1usize << level;
            let cells = (s * s * s) as f64;
            let list = Self::avg_well_separated(s);
            m2l_pairs_total += cells * list;
        }
        {
            // Per pair: ExaFMM's own operation count for the Cartesian
            // M2L is k⁶ per cell pair (the paper's 189·k⁶ per target cell),
            // plus the derivative-tensor build (~10 flops per entry of the
            // extended multi-index set). The translation kernel is an
            // irregular triple loop that runs far from peak — charge 45%
            // flop efficiency.
            let terms2 = {
                let k2 = 2 * cfg.k - 1;
                (k2 * (k2 + 1) * (k2 + 2) / 6) as f64
            };
            let k6 = (cfg.k as f64).powi(6);
            let flops_m2l = m2l_pairs_total * (k6 + 10.0 * terms2) / 0.45;
            // Memory: read source multipole (terms elements) per pair; the
            // per-level multipole table is `cells × terms` elements.
            let elems_m2l = m2l_pairs_total * terms;
            let table_bytes = leaves * terms * m.element_bytes as f64;
            let beta_m2l = self.effective_beta(table_bytes, 0.85);
            t_m2l += (flops_m2l * tc).max(elems_m2l * beta_m2l);
        }

        // --- P2M + L2P: N × terms each, ~6 flops per term (power ladder +
        // multiply-accumulate).
        let flops_pl = 2.0 * n * terms * 6.0;
        let t_pl = flops_pl * tc;

        // --- M2M + L2L: interior cells × terms² translations, 4 flops each
        // (binomial × power × moment, accumulate), both passes.
        let total_cells: f64 = (1..=levels).map(|l| (1u64 << (3 * l)) as f64).sum();
        let flops_mmll = 2.0 * total_cells * terms * terms * 4.0;
        let t_mmll = flops_mmll * tc;

        // --- Tree construction: counting sort + Morton, ~(40 + 12·L)
        // cycles per particle.
        let t_tree = n * (40.0 + 12.0 * levels as f64) * m.cycle_seconds();

        let serial = t_p2p + t_m2l + t_pl + t_mmll + t_tree;

        // Memory-bound share of the whole run (drives thread scaling).
        let mem_share = {
            let mem_fraction_p2p = 0.35; // gathers under compute
            let mem_fraction_m2l = 0.45;
            ((t_p2p * mem_fraction_p2p + t_m2l * mem_fraction_m2l) / serial).clamp(0.05, 0.9)
        };

        // --- Threads: scale, then add load imbalance (few leaves per
        // worker → idle tails) and per-level barriers.
        let t_threads = cfg.t;
        let mut t_par = self
            .thread_model
            .scale_time(serial, t_threads, mem_share, m);
        if t_threads > 1 {
            let slabs = leaves / t_threads as f64;
            let imbalance = 1.0 + 0.35 / slabs.max(1.0).sqrt();
            t_par *= imbalance;
            t_par += levels as f64 * 2.0 * self.thread_model.sync_overhead_s;
        }

        self.noise.apply(t_par, cfg.hash64())
    }

    /// Effective seconds-per-element for a working set of `bytes`,
    /// interpolating between cache and memory bandwidth; `locality` scales
    /// the cache-hit share (1.0 = perfectly streamed).
    fn effective_beta(&self, bytes: f64, locality: f64) -> f64 {
        let m = &self.machine;
        let mut beta = m.beta_mem();
        // Walk levels from largest to smallest; if the working set fits,
        // traffic is mostly served there.
        for (i, level) in m.caches.iter().enumerate().rev() {
            if bytes <= 0.75 * level.size_bytes as f64 {
                beta = m.beta_cache(i) * locality + m.beta_mem() * (1.0 - locality);
            }
        }
        beta
    }
}

/// Convenience wrapper mirroring `lam_stencil::oracle::generate_dataset`:
/// wraps the machine and space in an
/// [`FmmWorkload`](crate::workload::FmmWorkload) and generates its dataset
/// (rayon-parallel, deterministic for a fixed seed).
pub fn generate_dataset(
    machine: &MachineDescription,
    space: &FmmSpace,
    noise_seed: u64,
) -> Dataset {
    use lam_core::workload::Workload as _;
    crate::workload::FmmWorkload::new(machine.clone(), space.clone(), noise_seed).generate_dataset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::space_small;

    fn oracle() -> FmmOracle {
        FmmOracle::new(MachineDescription::blue_waters_xe6(), 11)
    }

    fn cfg(t: usize, n: usize, q: usize, k: usize) -> FmmConfig {
        FmmConfig { t, n, q, k }
    }

    #[test]
    fn deterministic_and_positive() {
        let o = oracle();
        let c = cfg(4, 8192, 64, 6);
        let t = o.execution_time(&c);
        assert!(t > 0.0);
        assert_eq!(t, o.execution_time(&c));
    }

    #[test]
    fn higher_order_costs_more() {
        let o = oracle().without_noise();
        let t_lo = o.execution_time(&cfg(1, 8192, 64, 3));
        let t_hi = o.execution_time(&cfg(1, 8192, 64, 12));
        assert!(t_hi > t_lo * 10.0, "k=3: {t_lo}, k=12: {t_hi}");
    }

    #[test]
    fn more_particles_cost_more() {
        let o = oracle().without_noise();
        let t_small = o.execution_time(&cfg(1, 4096, 64, 6));
        let t_large = o.execution_time(&cfg(1, 16384, 64, 6));
        assert!(t_large > t_small * 2.0);
    }

    #[test]
    fn q_trades_p2p_against_m2l() {
        // Small q → more leaves → M2L dominates for large k;
        // large q → P2P dominates for small k.
        let o = oracle().without_noise();
        let t_small_q = o.execution_time(&cfg(1, 16384, 32, 12));
        let t_large_q = o.execution_time(&cfg(1, 16384, 256, 12));
        // With k=12 the expansion work dwarfs P2P, so fewer cells wins.
        assert!(
            t_large_q < t_small_q,
            "large q {t_large_q} small q {t_small_q}"
        );
        let t_small_q2 = o.execution_time(&cfg(1, 16384, 32, 2));
        let t_large_q2 = o.execution_time(&cfg(1, 16384, 256, 2));
        // With k=2 the P2P quadratic term wins instead.
        assert!(
            t_small_q2 < t_large_q2,
            "small q {t_small_q2} large q {t_large_q2}"
        );
    }

    #[test]
    fn threads_help_but_sublinearly() {
        let o = oracle().without_noise();
        let t1 = o.execution_time(&cfg(1, 16384, 64, 8));
        let t8 = o.execution_time(&cfg(8, 16384, 64, 8));
        assert!(t8 < t1 / 2.0, "t1 {t1} t8 {t8}");
        assert!(t8 > t1 / 8.0, "superlinear: t1 {t1} t8 {t8}");
    }

    #[test]
    fn degenerate_tree_uses_direct_sum() {
        let o = oracle().without_noise();
        let c = cfg(1, 64, 64, 4); // q = N → 0 levels
        let t = o.execution_time(&c);
        let expect = 64.0 * 64.0 * FLOPS_PER_PAIR * o.machine().time_per_flop();
        assert!((t - expect).abs() / expect < 0.5, "t {t} expect {expect}");
    }

    #[test]
    fn free_generate_dataset_covers_space() {
        let machine = MachineDescription::blue_waters_xe6();
        let s = space_small();
        let d = generate_dataset(&machine, &s, 11);
        assert_eq!(d.len(), s.len());
        assert_eq!(d.n_features(), 4);
        assert_eq!(generate_dataset(&machine, &s, 11), d);
    }

    #[test]
    fn boundary_corrected_lists_below_interior_values() {
        assert!(FmmOracle::avg_neighbors(4) < 27.0);
        assert!(FmmOracle::avg_well_separated(4) < 189.0);
        // Large trees approach the interior values.
        assert!(FmmOracle::avg_neighbors(64) > 25.0);
        assert!(FmmOracle::avg_well_separated(64) > 160.0);
    }

    #[test]
    #[should_panic(expected = "invalid FMM configuration")]
    fn invalid_config_panics() {
        oracle().execution_time(&cfg(0, 10, 1, 2));
    }
}
