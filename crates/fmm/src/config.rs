//! FMM configurations and the paper's dataset space
//! `X = (t, N, q, k)`: threads `t = 1…16`, particles
//! `N ∈ {4096, 8192, 16384}`, particles per leaf `q`, expansion order
//! `k = 2…12`.

use lam_data::Dataset;
use serde::{Deserialize, Serialize};

/// One FMM run configuration (the paper's modeling vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FmmConfig {
    /// Worker threads (`t`).
    pub t: usize,
    /// Total particles (`N`).
    pub n: usize,
    /// Particles per leaf cell (`q`).
    pub q: usize,
    /// Expansion order (`k`).
    pub k: usize,
}

impl FmmConfig {
    /// Feature names of the modeling vector.
    pub fn feature_names() -> Vec<String> {
        vec!["t".into(), "N".into(), "q".into(), "k".into()]
    }

    /// Feature vector `(t, N, q, k)` as `f64`.
    pub fn features(&self) -> Vec<f64> {
        vec![self.t as f64, self.n as f64, self.q as f64, self.k as f64]
    }

    /// Validity: everything positive, `k ≥ 1`, `q ≤ N`.
    pub fn is_valid(&self) -> bool {
        self.t >= 1 && self.n >= 1 && self.q >= 1 && self.k >= 1 && self.q <= self.n
    }

    /// Expansion terms `k(k+1)(k+2)/6` (Cartesian Taylor).
    pub fn n_terms(&self) -> usize {
        self.k * (self.k + 1) * (self.k + 2) / 6
    }

    /// Leaf level of the (complete) octree this configuration builds.
    pub fn tree_levels(&self) -> usize {
        let mut levels = 0usize;
        while self.n > self.q * (1usize << (3 * levels)) {
            levels += 1;
        }
        levels
    }

    /// Number of leaf cells.
    pub fn n_leaves(&self) -> usize {
        1usize << (3 * self.tree_levels())
    }

    /// Stable configuration hash for the noise model.
    pub fn hash64(&self) -> u64 {
        lam_machine::noise::hash_config(&[
            self.t as u64,
            self.n as u64,
            self.q as u64,
            self.k as u64,
        ])
    }
}

/// An enumerable FMM configuration space.
#[derive(Debug, Clone)]
pub struct FmmSpace {
    /// Label for reports.
    pub name: &'static str,
    configs: Vec<FmmConfig>,
}

impl FmmSpace {
    /// All configurations.
    pub fn configs(&self) -> &[FmmConfig] {
        &self.configs
    }

    /// Size of the space.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Build a dataset skeleton (features only) — responses come from the
    /// oracle or real measurement.
    pub fn dataset_with<F: Fn(&FmmConfig) -> f64>(&self, response: F) -> Dataset {
        let mut d = Dataset::empty(FmmConfig::feature_names());
        for c in &self.configs {
            d.push(&c.features(), response(c));
        }
        d
    }
}

/// The paper's FMM space (Fig 3B / Fig 8): `t = 1…16`,
/// `N ∈ {4096, 8192, 16384}`, `q ∈ {32, 64, 128, 256}`, `k = 2…12`.
pub fn space_paper() -> FmmSpace {
    let mut configs = Vec::new();
    for t in 1..=16usize {
        for &n in &[4096usize, 8192, 16384] {
            for &q in &[32usize, 64, 128, 256] {
                for k in 2..=12usize {
                    let c = FmmConfig { t, n, q, k };
                    debug_assert!(c.is_valid());
                    configs.push(c);
                }
            }
        }
    }
    FmmSpace {
        name: "fmm-tnqk",
        configs,
    }
}

/// A reduced space for quick tests and examples (`t ≤ 4`, `k ≤ 6`,
/// `N ≤ 8192`).
pub fn space_small() -> FmmSpace {
    let mut configs = Vec::new();
    for t in 1..=4usize {
        for &n in &[4096usize, 8192] {
            for &q in &[32usize, 64, 128] {
                for k in 2..=6usize {
                    configs.push(FmmConfig { t, n, q, k });
                }
            }
        }
    }
    FmmSpace {
        name: "fmm-small",
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_size() {
        let s = space_paper();
        assert_eq!(s.len(), 16 * 3 * 4 * 11);
        assert!(s.configs().iter().all(|c| c.is_valid()));
    }

    #[test]
    fn features_round_trip() {
        let c = FmmConfig {
            t: 4,
            n: 8192,
            q: 64,
            k: 6,
        };
        assert_eq!(c.features(), vec![4.0, 8192.0, 64.0, 6.0]);
        assert_eq!(FmmConfig::feature_names().len(), 4);
    }

    #[test]
    fn terms_formula() {
        let c = FmmConfig {
            t: 1,
            n: 1,
            q: 1,
            k: 4,
        };
        assert_eq!(c.n_terms(), 20);
    }

    #[test]
    fn tree_levels_consistent() {
        let c = FmmConfig {
            t: 1,
            n: 4096,
            q: 64,
            k: 4,
        };
        assert_eq!(c.tree_levels(), 2);
        assert_eq!(c.n_leaves(), 64);
        let c = FmmConfig {
            t: 1,
            n: 16384,
            q: 32,
            k: 4,
        };
        assert_eq!(c.tree_levels(), 3);
    }

    #[test]
    fn invalid_configs_detected() {
        assert!(!FmmConfig {
            t: 0,
            n: 10,
            q: 1,
            k: 2
        }
        .is_valid());
        assert!(!FmmConfig {
            t: 1,
            n: 10,
            q: 20,
            k: 2
        }
        .is_valid());
    }

    #[test]
    fn dataset_with_response() {
        let s = space_small();
        let d = s.dataset_with(|c| (c.n * c.k) as f64);
        assert_eq!(d.len(), s.len());
        assert_eq!(
            d.response()[0],
            (s.configs()[0].n * s.configs()[0].k) as f64
        );
    }

    #[test]
    fn hash_distinguishes() {
        let a = FmmConfig {
            t: 1,
            n: 4096,
            q: 64,
            k: 4,
        };
        let b = FmmConfig { k: 5, ..a };
        assert_ne!(a.hash64(), b.hash64());
    }
}
