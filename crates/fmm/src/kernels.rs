//! The six FMM kernels for the 3-D Laplace potential with Cartesian Taylor
//! expansions.
//!
//! Conventions (see [`crate::expansion`] for the derivative recurrence):
//!
//! * multipole moments: `M_a = Σ_i q_i (x_i − c)^a`, `|a| < k`;
//! * a multipole at `c` evaluates as `φ(y) = Σ_a M_a T_a(c − y)`;
//! * local coefficients: `φ(y) = Σ_b L_b (y − c_l)^b`, `|b| < k`.

use crate::expansion::{factorials, multi_binomial, taylor_tensor, MultiIndexSet};
use crate::particle::Particle;

/// Precomputed context shared by all expansion kernels of one FMM run.
#[derive(Debug, Clone)]
pub struct KernelCtx {
    /// Expansion order `k`.
    pub order: usize,
    /// Multi-indices of the expansions (`|a| < k`).
    pub set: MultiIndexSet,
    /// Extended set for M2L tensors (`|a| < 2k − 1`).
    pub set2: MultiIndexSet,
    /// Factorial table up to `2k`.
    pub fact: Vec<f64>,
    /// For every `(b, a)` pair of expansion indices: the position of `a+b`
    /// in `set2` and the binomial `C(a+b, b)` with alternating sign
    /// `(−1)^|b|` folded in. Flattened `b`-major.
    m2l_table: Vec<(u32, f64)>,
}

impl KernelCtx {
    /// Build the context for expansion order `k ≥ 1`.
    pub fn new(order: usize) -> Self {
        let set = MultiIndexSet::new(order);
        let set2 = MultiIndexSet::new(2 * order - 1);
        let fact = factorials(2 * order);
        let n = set.len();
        let mut m2l_table = Vec::with_capacity(n * n);
        for b in set.indices() {
            let sign = if (b[0] + b[1] + b[2]) % 2 == 1 {
                -1.0
            } else {
                1.0
            };
            for a in set.indices() {
                let ab = [a[0] + b[0], a[1] + b[1], a[2] + b[2]];
                let pos = set2
                    .position(ab[0] as usize, ab[1] as usize, ab[2] as usize)
                    .expect("a+b within extended set");
                let coef = sign * multi_binomial(&fact, ab, *b);
                m2l_table.push((pos as u32, coef));
            }
        }
        Self {
            order,
            set,
            set2,
            fact,
            m2l_table,
        }
    }

    /// Terms per expansion.
    pub fn n_terms(&self) -> usize {
        self.set.len()
    }
}

/// P2P: direct pairwise interaction. Adds the potential induced by
/// `sources` to `potentials[i]` for each target. Skips the self-interaction
/// when source and target slices alias (detected by identical positions).
pub fn p2p(targets: &[Particle], sources: &[Particle], potentials: &mut [f64]) {
    debug_assert_eq!(targets.len(), potentials.len());
    for (t, phi) in targets.iter().zip(potentials.iter_mut()) {
        let mut acc = 0.0;
        for s in sources {
            let d2 = t.dist2(s);
            if d2 > 0.0 {
                acc += s.charge / d2.sqrt();
            }
        }
        *phi += acc;
    }
}

/// P2M: accumulate the multipole moments of `sources` about `center`.
pub fn p2m(ctx: &KernelCtx, sources: &[Particle], center: [f64; 3], moments: &mut [f64]) {
    debug_assert_eq!(moments.len(), ctx.n_terms());
    for s in sources {
        let dx = [
            s.pos[0] - center[0],
            s.pos[1] - center[1],
            s.pos[2] - center[2],
        ];
        let pw = ctx.set.powers(dx);
        for (m, p) in moments.iter_mut().zip(&pw) {
            *m += s.charge * p;
        }
    }
}

/// M2M: translate child moments about `child_center` into parent moments
/// about `parent_center` (accumulating).
pub fn m2m(
    ctx: &KernelCtx,
    child: &[f64],
    child_center: [f64; 3],
    parent_center: [f64; 3],
    parent: &mut [f64],
) {
    let shift = [
        child_center[0] - parent_center[0],
        child_center[1] - parent_center[1],
        child_center[2] - parent_center[2],
    ];
    let pw = ctx.set.powers(shift);
    // M'_a = Σ_{b ≤ a} C(a, b) shift^{a−b} M_b
    for (ia, a) in ctx.set.indices().iter().enumerate() {
        let mut acc = 0.0;
        for (ib, b) in ctx.set.indices().iter().enumerate() {
            if b[0] <= a[0] && b[1] <= a[1] && b[2] <= a[2] {
                let diff = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
                let idiff = ctx
                    .set
                    .position(diff[0] as usize, diff[1] as usize, diff[2] as usize)
                    .expect("difference within set");
                acc += multi_binomial(&ctx.fact, *a, *b) * pw[idiff] * child[ib];
            }
        }
        parent[ia] += acc;
    }
}

/// M2L: convert a source multipole about `source_center` into local
/// coefficients about `target_center` (accumulating). The two cells must be
/// well separated.
pub fn m2l(
    ctx: &KernelCtx,
    moments: &[f64],
    source_center: [f64; 3],
    target_center: [f64; 3],
    local: &mut [f64],
) {
    let r = [
        source_center[0] - target_center[0],
        source_center[1] - target_center[1],
        source_center[2] - target_center[2],
    ];
    let t = taylor_tensor(&ctx.set2, r);
    let n = ctx.n_terms();
    // L_b = (−1)^|b| Σ_a M_a C(a+b, b) T_{a+b}(R)
    for (ib, l) in local.iter_mut().enumerate().take(n) {
        let row = &ctx.m2l_table[ib * n..(ib + 1) * n];
        let mut acc = 0.0;
        for (ia, &(pos, coef)) in row.iter().enumerate() {
            acc += moments[ia] * coef * t[pos as usize];
        }
        *l += acc;
    }
}

/// L2L: translate parent local coefficients about `parent_center` to a
/// child expansion about `child_center` (accumulating).
pub fn l2l(
    ctx: &KernelCtx,
    parent: &[f64],
    parent_center: [f64; 3],
    child_center: [f64; 3],
    child: &mut [f64],
) {
    let shift = [
        child_center[0] - parent_center[0],
        child_center[1] - parent_center[1],
        child_center[2] - parent_center[2],
    ];
    let pw = ctx.set.powers(shift);
    // L'_c = Σ_{b ≥ c} C(b, c) L_b shift^{b−c}
    for (ic, c) in ctx.set.indices().iter().enumerate() {
        let mut acc = 0.0;
        for (ib, b) in ctx.set.indices().iter().enumerate() {
            if c[0] <= b[0] && c[1] <= b[1] && c[2] <= b[2] {
                let diff = [b[0] - c[0], b[1] - c[1], b[2] - c[2]];
                let idiff = ctx
                    .set
                    .position(diff[0] as usize, diff[1] as usize, diff[2] as usize)
                    .expect("difference within set");
                acc += multi_binomial(&ctx.fact, *b, *c) * pw[idiff] * parent[ib];
            }
        }
        child[ic] += acc;
    }
}

/// L2P: evaluate a local expansion at each target, adding to `potentials`.
pub fn l2p(
    ctx: &KernelCtx,
    local: &[f64],
    center: [f64; 3],
    targets: &[Particle],
    potentials: &mut [f64],
) {
    debug_assert_eq!(targets.len(), potentials.len());
    for (t, phi) in targets.iter().zip(potentials.iter_mut()) {
        let dx = [
            t.pos[0] - center[0],
            t.pos[1] - center[1],
            t.pos[2] - center[2],
        ];
        let pw = ctx.set.powers(dx);
        *phi += local.iter().zip(&pw).map(|(l, p)| l * p).sum::<f64>();
    }
}

/// M2P: evaluate a multipole directly at a target (used in tests to verify
/// P2M/M2M independently of the local-expansion path).
pub fn m2p(ctx: &KernelCtx, moments: &[f64], center: [f64; 3], target: [f64; 3]) -> f64 {
    let r = [
        center[0] - target[0],
        center[1] - target[1],
        center[2] - target[2],
    ];
    let t = taylor_tensor(&ctx.set, r);
    moments.iter().zip(&t).map(|(m, tt)| m * tt).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::random_cube;

    fn direct_potential(target: [f64; 3], sources: &[Particle]) -> f64 {
        sources
            .iter()
            .map(|s| {
                let dx = target[0] - s.pos[0];
                let dy = target[1] - s.pos[1];
                let dz = target[2] - s.pos[2];
                s.charge / (dx * dx + dy * dy + dz * dz).sqrt()
            })
            .sum()
    }

    /// Sources in a small box at origin-corner, target far away.
    fn cluster_and_far_target() -> (Vec<Particle>, [f64; 3]) {
        let mut sources = random_cube(40, 11);
        for s in &mut sources {
            for d in 0..3 {
                s.pos[d] *= 0.1; // shrink into [0, 0.1)³
            }
        }
        (sources, [0.9, 0.85, 0.95])
    }

    #[test]
    fn p2m_m2p_converges_with_order() {
        let (sources, target) = cluster_and_far_target();
        let exact = direct_potential(target, &sources);
        let center = [0.05, 0.05, 0.05];
        let mut prev_err = f64::INFINITY;
        for k in [2usize, 4, 6, 8] {
            let ctx = KernelCtx::new(k);
            let mut m = vec![0.0; ctx.n_terms()];
            p2m(&ctx, &sources, center, &mut m);
            let approx = m2p(&ctx, &m, center, target);
            let err = (approx - exact).abs() / exact.abs();
            assert!(err < prev_err * 1.2, "order {k}: err {err} prev {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-6, "order-8 relative error {prev_err}");
    }

    #[test]
    fn m2m_preserves_far_field() {
        let (sources, target) = cluster_and_far_target();
        let ctx = KernelCtx::new(6);
        // Two half-clusters with their own centers.
        let (lo, hi): (Vec<Particle>, Vec<Particle>) =
            sources.iter().partition(|s| s.pos[0] < 0.05);
        let c_lo = [0.025, 0.05, 0.05];
        let c_hi = [0.075, 0.05, 0.05];
        let parent_c = [0.05, 0.05, 0.05];
        let mut m_lo = vec![0.0; ctx.n_terms()];
        let mut m_hi = vec![0.0; ctx.n_terms()];
        p2m(&ctx, &lo, c_lo, &mut m_lo);
        p2m(&ctx, &hi, c_hi, &mut m_hi);
        let mut parent = vec![0.0; ctx.n_terms()];
        m2m(&ctx, &m_lo, c_lo, parent_c, &mut parent);
        m2m(&ctx, &m_hi, c_hi, parent_c, &mut parent);
        // Compare against a direct P2M to the parent center.
        let mut direct_m = vec![0.0; ctx.n_terms()];
        p2m(&ctx, &sources, parent_c, &mut direct_m);
        let via_children = m2p(&ctx, &parent, parent_c, target);
        let via_direct = m2p(&ctx, &direct_m, parent_c, target);
        assert!(
            (via_children - via_direct).abs() < 1e-10,
            "{via_children} vs {via_direct}"
        );
    }

    #[test]
    fn m2l_l2p_approximates_direct() {
        let (sources, _) = cluster_and_far_target();
        let source_c = [0.05, 0.05, 0.05];
        let target_c = [0.85, 0.85, 0.85];
        // Targets near the local center.
        let targets: Vec<Particle> = (0..5)
            .map(|i| Particle {
                pos: [0.82 + 0.012 * i as f64, 0.86, 0.84],
                charge: 0.0,
            })
            .collect();
        let ctx = KernelCtx::new(8);
        let mut m = vec![0.0; ctx.n_terms()];
        p2m(&ctx, &sources, source_c, &mut m);
        let mut local = vec![0.0; ctx.n_terms()];
        m2l(&ctx, &m, source_c, target_c, &mut local);
        let mut phi = vec![0.0; targets.len()];
        l2p(&ctx, &local, target_c, &targets, &mut phi);
        for (t, &p) in targets.iter().zip(&phi) {
            let exact = direct_potential(t.pos, &sources);
            let err = (p - exact).abs() / exact.abs();
            assert!(err < 1e-4, "target {:?}: err {err}", t.pos);
        }
    }

    #[test]
    fn l2l_preserves_evaluation() {
        let (sources, _) = cluster_and_far_target();
        let source_c = [0.05, 0.05, 0.05];
        let parent_c = [0.75, 0.75, 0.75];
        let child_c = [0.8, 0.7, 0.8];
        let eval_at = Particle {
            pos: [0.81, 0.69, 0.79],
            charge: 0.0,
        };
        let ctx = KernelCtx::new(8);
        let mut m = vec![0.0; ctx.n_terms()];
        p2m(&ctx, &sources, source_c, &mut m);
        let mut parent_l = vec![0.0; ctx.n_terms()];
        m2l(&ctx, &m, source_c, parent_c, &mut parent_l);
        let mut child_l = vec![0.0; ctx.n_terms()];
        l2l(&ctx, &parent_l, parent_c, child_c, &mut child_l);
        let mut via_parent = vec![0.0];
        l2p(
            &ctx,
            &parent_l,
            parent_c,
            std::slice::from_ref(&eval_at),
            &mut via_parent,
        );
        let mut via_child = vec![0.0];
        l2p(
            &ctx,
            &child_l,
            child_c,
            std::slice::from_ref(&eval_at),
            &mut via_child,
        );
        // L2L is exact on the truncated polynomial.
        assert!(
            (via_parent[0] - via_child[0]).abs() < 1e-10,
            "{} vs {}",
            via_parent[0],
            via_child[0]
        );
    }

    #[test]
    fn p2p_matches_direct_and_skips_self() {
        let ps = random_cube(20, 4);
        let mut phi = vec![0.0; ps.len()];
        p2p(&ps, &ps, &mut phi);
        for (i, p) in ps.iter().enumerate() {
            let mut exact = 0.0;
            for (j, s) in ps.iter().enumerate() {
                if i != j {
                    exact += s.charge / p.dist2(s).sqrt();
                }
            }
            assert!((phi[i] - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn p2m_empty_sources_is_zero() {
        let ctx = KernelCtx::new(4);
        let mut m = vec![0.0; ctx.n_terms()];
        p2m(&ctx, &[], [0.5; 3], &mut m);
        assert!(m.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn monopole_term_is_total_charge() {
        let ps = random_cube(50, 8);
        let ctx = KernelCtx::new(3);
        let mut m = vec![0.0; ctx.n_terms()];
        p2m(&ctx, &ps, [0.5; 3], &mut m);
        let total: f64 = ps.iter().map(|p| p.charge).sum();
        assert!((m[0] - total).abs() < 1e-12);
    }
}
