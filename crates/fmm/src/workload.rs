//! [`Workload`] implementation for the FMM application: one value ties
//! together a configuration space, the simulated-measurement oracle, and
//! the paper's §IV-B analytical model.

use crate::config::{FmmConfig, FmmSpace};
use crate::oracle::FmmOracle;
use lam_analytical::fmm::FmmAnalyticalModel;
use lam_analytical::traits::AnalyticalModel;
use lam_core::catalog::{CatalogError, WorkloadCatalog, SERVE_NOISE_SEED};
use lam_core::hybrid::HybridConfig;
use lam_core::workload::Workload;
use lam_machine::arch::MachineDescription;

/// The FMM scenario: an [`FmmSpace`] evaluated by an [`FmmOracle`] on one
/// machine.
#[derive(Debug, Clone)]
pub struct FmmWorkload {
    oracle: FmmOracle,
    space: FmmSpace,
}

impl FmmWorkload {
    /// Build the scenario on a machine with the given noise seed.
    pub fn new(machine: MachineDescription, space: FmmSpace, noise_seed: u64) -> Self {
        Self {
            oracle: FmmOracle::new(machine, noise_seed),
            space,
        }
    }

    /// Disable measurement noise (model validation, conformance tests).
    pub fn without_noise(mut self) -> Self {
        self.oracle = self.oracle.without_noise();
        self
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &FmmOracle {
        &self.oracle
    }

    /// The configuration space.
    pub fn space(&self) -> &FmmSpace {
        &self.space
    }
}

impl Workload for FmmWorkload {
    type Config = FmmConfig;

    fn name(&self) -> &str {
        self.space.name
    }

    fn feature_names(&self) -> Vec<String> {
        FmmConfig::feature_names()
    }

    fn param_space(&self) -> &[FmmConfig] {
        self.space.configs()
    }

    fn features(&self, cfg: &FmmConfig) -> Vec<f64> {
        cfg.features()
    }

    fn execution_time(&self, cfg: &FmmConfig) -> f64 {
        self.oracle.execution_time(cfg)
    }

    fn problem_size(&self, cfg: &FmmConfig) -> f64 {
        cfg.n as f64
    }

    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        Box::new(FmmAnalyticalModel::new(self.oracle.machine().clone()))
    }

    /// FMM runtimes span decades across the `(t, N, q, k)` space, so the
    /// hybrid stacks `ln(am)`.
    fn hybrid_config(&self) -> HybridConfig {
        HybridConfig {
            log_feature: true,
            ..HybridConfig::default()
        }
    }
}

/// Register the FMM scenarios' servable descriptors: the paper's full
/// `(t, N, q, k)` space as `fmm` and the reduced quick-test space as
/// `fmm-small`, both on the Blue Waters description with the shared
/// [`SERVE_NOISE_SEED`] — so "same name" always means "same dataset,
/// same analytical model".
pub fn register_servable(catalog: &WorkloadCatalog) -> Result<(), CatalogError> {
    for (name, space) in [
        ("fmm", crate::config::space_paper()),
        ("fmm-small", crate::config::space_small()),
    ] {
        match catalog.register_workload(
            name,
            FmmWorkload::new(
                MachineDescription::blue_waters_xe6(),
                space,
                SERVE_NOISE_SEED,
            ),
        ) {
            // Idempotent per name: an earlier registration (a repeat call,
            // or a user claiming one name first) wins; the *other* names
            // still register.
            Ok(_) | Err(CatalogError::Duplicate(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{space_paper, space_small};

    fn workload(space: FmmSpace) -> FmmWorkload {
        FmmWorkload::new(MachineDescription::blue_waters_xe6(), space, 11)
    }

    #[test]
    fn dataset_matches_space() {
        let w = workload(space_small());
        let d = w.generate_dataset();
        assert_eq!(d.len(), w.space().len());
        assert_eq!(d.n_features(), 4);
        assert_eq!(w.generate_dataset(), d);
    }

    #[test]
    fn response_spans_orders_of_magnitude() {
        let w = workload(space_paper());
        let d = w.generate_dataset();
        let min = d.response().iter().cloned().fold(f64::INFINITY, f64::min);
        let max = d.response().iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 100.0, "dynamic range too small: {min} .. {max}");
        d.validate_finite().unwrap();
    }

    #[test]
    fn analytical_model_predicts_on_features() {
        let w = workload(space_small());
        let am = w.analytical_model();
        let x = w.features(&w.param_space()[0]);
        assert!(am.predict(&x) > 0.0);
    }

    #[test]
    fn problem_size_is_particle_count() {
        let w = workload(space_small());
        let c = FmmConfig {
            t: 2,
            n: 8192,
            q: 64,
            k: 4,
        };
        assert_eq!(w.problem_size(&c), 8192.0);
    }
}
