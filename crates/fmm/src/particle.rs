//! Particles and the paper's source distribution (uniform random in a
//! cube).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A point source/target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// Position in the unit cube `[0, 1)³`.
    pub pos: [f64; 3],
    /// Charge / mass / weight `w_i`.
    pub charge: f64,
}

impl Particle {
    /// Squared distance to another particle.
    #[inline]
    pub fn dist2(&self, other: &Particle) -> f64 {
        let dx = self.pos[0] - other.pos[0];
        let dy = self.pos[1] - other.pos[1];
        let dz = self.pos[2] - other.pos[2];
        dx * dx + dy * dy + dz * dz
    }
}

/// Generate `n` particles uniformly random in the unit cube with charges in
/// `[-1, 1)` (seeded, reproducible).
pub fn random_cube(n: usize, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Particle {
            pos: [
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ],
            charge: rng.random::<f64>() * 2.0 - 1.0,
        })
        .collect()
}

/// Generate `n` particles with unit positive charge (useful in tests where
/// cancellation would hide errors).
pub fn random_cube_unit_charge(n: usize, seed: u64) -> Vec<Particle> {
    let mut ps = random_cube(n, seed);
    for p in &mut ps {
        p.charge = 1.0 / n as f64;
    }
    ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        assert_eq!(random_cube(100, 5), random_cube(100, 5));
        assert_ne!(random_cube(100, 5), random_cube(100, 6));
    }

    #[test]
    fn inside_unit_cube() {
        for p in random_cube(1000, 1) {
            for d in 0..3 {
                assert!((0.0..1.0).contains(&p.pos[d]));
            }
            assert!((-1.0..1.0).contains(&p.charge));
        }
    }

    #[test]
    fn dist2_symmetric() {
        let ps = random_cube(10, 2);
        assert_eq!(ps[0].dist2(&ps[1]), ps[1].dist2(&ps[0]));
        assert_eq!(ps[3].dist2(&ps[3]), 0.0);
    }

    #[test]
    fn unit_charges_sum_to_one() {
        let ps = random_cube_unit_charge(64, 3);
        let total: f64 = ps.iter().map(|p| p.charge).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
