//! The FMM driver: upward pass (P2M, M2M), horizontal pass (M2L), downward
//! pass (L2L, L2P) and near-field P2P, parallelized over cells with a
//! Rayon pool sized by the configuration's thread count.

use crate::config::FmmConfig;
use crate::kernels::{self, KernelCtx};
use crate::lists;
use crate::octree::{CellId, Octree};
use crate::particle::Particle;
use rayon::prelude::*;

/// A configured FMM solver.
#[derive(Debug, Clone)]
pub struct Fmm {
    ctx: KernelCtx,
    /// Particles per leaf target used for tree construction.
    pub q: usize,
    /// Worker threads.
    pub threads: usize,
}

impl Fmm {
    /// Build a solver for expansion order `k`, leaf population `q`, and
    /// `threads` workers.
    pub fn new(k: usize, q: usize, threads: usize) -> Self {
        assert!(k >= 1, "expansion order must be >= 1");
        assert!(q >= 1, "leaf population must be >= 1");
        Self {
            ctx: KernelCtx::new(k),
            q,
            threads: threads.max(1),
        }
    }

    /// Build from a configuration vector.
    pub fn from_config(cfg: &FmmConfig) -> Self {
        Self::new(cfg.k, cfg.q, cfg.t)
    }

    /// Compute the potential at every particle (sources = targets, the
    /// paper's setting). Returns potentials in the *input* particle order.
    pub fn potentials(&self, particles: &[Particle]) -> Vec<f64> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("rayon pool");
        pool.install(|| self.potentials_inner(particles))
    }

    fn potentials_inner(&self, particles: &[Particle]) -> Vec<f64> {
        let n = particles.len();
        if n == 0 {
            return Vec::new();
        }
        let tree = Octree::build(particles, self.q);
        let levels = tree.levels;
        let n_terms = self.ctx.n_terms();

        // Degenerate shallow trees (< 2 levels) have no well-separated
        // cells: everything is near field.
        if levels < 2 {
            let mut phi = vec![0.0; n];
            kernels::p2p(particles, particles, &mut phi);
            return phi;
        }

        // --- Upward: P2M at leaves.
        let n_leaves = tree.n_leaves();
        let mut multipoles: Vec<Vec<f64>> = (0..=levels)
            .map(|l| vec![0.0; Octree::n_cells(l) * n_terms])
            .collect();
        {
            let leaf_m: Vec<Vec<f64>> = (0..n_leaves)
                .into_par_iter()
                .map(|m| {
                    let cell = CellId {
                        level: levels,
                        index: m,
                    };
                    let mut mom = vec![0.0; n_terms];
                    kernels::p2m(&self.ctx, tree.leaf_particles(m), cell.center(), &mut mom);
                    mom
                })
                .collect();
            let lvl = &mut multipoles[levels];
            for (m, mom) in leaf_m.into_iter().enumerate() {
                lvl[m * n_terms..(m + 1) * n_terms].copy_from_slice(&mom);
            }
        }

        // --- Upward: M2M to coarser levels.
        for level in (1..=levels).rev() {
            let (coarse, fine) = {
                let (a, b) = multipoles.split_at_mut(level);
                (&mut a[level - 1], &b[0])
            };
            let parent_cells = Octree::n_cells(level - 1);
            let updates: Vec<Vec<f64>> = (0..parent_cells)
                .into_par_iter()
                .map(|pi| {
                    let parent = CellId {
                        level: level - 1,
                        index: pi,
                    };
                    let mut acc = vec![0.0; n_terms];
                    for child in parent.children() {
                        let cm = &fine[child.index * n_terms..(child.index + 1) * n_terms];
                        kernels::m2m(&self.ctx, cm, child.center(), parent.center(), &mut acc);
                    }
                    acc
                })
                .collect();
            for (pi, acc) in updates.into_iter().enumerate() {
                coarse[pi * n_terms..(pi + 1) * n_terms].copy_from_slice(&acc);
            }
        }

        // --- Horizontal + downward: locals per level.
        let mut locals: Vec<Vec<f64>> = (0..=levels)
            .map(|l| vec![0.0; Octree::n_cells(l) * n_terms])
            .collect();
        for level in 2..=levels {
            let source_m = &multipoles[level];
            let parent_locals = if level > 2 {
                Some(locals[level - 1].clone())
            } else {
                None
            };
            let updated: Vec<Vec<f64>> = (0..Octree::n_cells(level))
                .into_par_iter()
                .map(|ci| {
                    let cell = CellId { level, index: ci };
                    let center = cell.center();
                    let mut local = vec![0.0; n_terms];
                    // M2L from the well-separated list.
                    for src in lists::well_separated(cell) {
                        let mom = &source_m[src.index * n_terms..(src.index + 1) * n_terms];
                        kernels::m2l(&self.ctx, mom, src.center(), center, &mut local);
                    }
                    // L2L from the parent.
                    if let Some(pl) = &parent_locals {
                        let parent = cell.parent();
                        let p = &pl[parent.index * n_terms..(parent.index + 1) * n_terms];
                        kernels::l2l(&self.ctx, p, parent.center(), center, &mut local);
                    }
                    local
                })
                .collect();
            let lvl = &mut locals[level];
            for (ci, local) in updated.into_iter().enumerate() {
                lvl[ci * n_terms..(ci + 1) * n_terms].copy_from_slice(&local);
            }
        }

        // --- Leaves: L2P + near-field P2P, producing potentials in tree
        // (Morton-sorted) particle order.
        let leaf_locals = &locals[levels];
        let leaf_phis: Vec<Vec<f64>> = (0..n_leaves)
            .into_par_iter()
            .map(|m| {
                let cell = CellId {
                    level: levels,
                    index: m,
                };
                let targets = tree.leaf_particles(m);
                let mut phi = vec![0.0; targets.len()];
                let local = &leaf_locals[m * n_terms..(m + 1) * n_terms];
                kernels::l2p(&self.ctx, local, cell.center(), targets, &mut phi);
                for nb in lists::neighbors(cell) {
                    kernels::p2p(targets, tree.leaf_particles(nb.index), &mut phi);
                }
                phi
            })
            .collect();
        let mut sorted_phi = Vec::with_capacity(n);
        for phi in leaf_phis {
            sorted_phi.extend(phi);
        }

        // Map back to input order: reconstruct the permutation by rebuilding
        // leaf assignment on the original order.
        unsort(&tree, particles, &sorted_phi)
    }

    /// Expansion order.
    pub fn order(&self) -> usize {
        self.ctx.order
    }
}

/// Map potentials computed in tree order back to the original particle
/// order (the counting sort in `Octree::build` is stable, so re-running the
/// count reproduces the permutation).
fn unsort(tree: &Octree, original: &[Particle], sorted_phi: &[f64]) -> Vec<f64> {
    let side = 1usize << tree.levels;
    let leaf_of = |p: &Particle| -> usize {
        let gx = ((p.pos[0] * side as f64) as usize).min(side - 1);
        let gy = ((p.pos[1] * side as f64) as usize).min(side - 1);
        let gz = ((p.pos[2] * side as f64) as usize).min(side - 1);
        crate::octree::morton_encode([gx, gy, gz])
    };
    let mut cursor: Vec<usize> = tree.leaf_offsets[..tree.n_leaves()].to_vec();
    let mut out = vec![0.0; original.len()];
    for (i, p) in original.iter().enumerate() {
        let m = leaf_of(p);
        out[i] = sorted_phi[cursor[m]];
        cursor[m] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{direct_potentials, relative_l2_error};
    use crate::particle::random_cube;

    #[test]
    fn fmm_matches_direct_small() {
        let ps = random_cube(512, 42);
        let fmm = Fmm::new(6, 16, 1);
        let phi = fmm.potentials(&ps);
        let exact = direct_potentials(&ps);
        let err = relative_l2_error(&phi, &exact);
        assert!(err < 1e-3, "relative L2 error {err}");
    }

    #[test]
    fn accuracy_improves_with_order() {
        let ps = random_cube(512, 7);
        let exact = direct_potentials(&ps);
        let err_lo = relative_l2_error(&Fmm::new(2, 16, 1).potentials(&ps), &exact);
        let err_hi = relative_l2_error(&Fmm::new(7, 16, 1).potentials(&ps), &exact);
        assert!(
            err_hi < err_lo / 10.0,
            "order 2: {err_lo}, order 7: {err_hi}"
        );
    }

    #[test]
    fn threaded_matches_serial() {
        let ps = random_cube(512, 3);
        let serial = Fmm::new(4, 16, 1).potentials(&ps);
        let threaded = Fmm::new(4, 16, 4).potentials(&ps);
        for (a, b) in serial.iter().zip(&threaded) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn shallow_tree_falls_back_to_direct() {
        let ps = random_cube(32, 5);
        let fmm = Fmm::new(4, 64, 1); // q=64 > 32 → 0 levels
        let phi = fmm.potentials(&ps);
        let exact = direct_potentials(&ps);
        assert!(relative_l2_error(&phi, &exact) < 1e-14);
    }

    #[test]
    fn empty_input() {
        assert!(Fmm::new(3, 8, 1).potentials(&[]).is_empty());
    }

    #[test]
    fn output_order_matches_input_order() {
        let ps = random_cube(256, 13);
        let fmm = Fmm::new(6, 8, 1);
        let phi = fmm.potentials(&ps);
        let exact = direct_potentials(&ps);
        // Check a few individual particles (not just the norm) to catch
        // permutation bugs. Scale by the typical potential magnitude, not
        // the pointwise one — random ±charges make some potentials nearly
        // cancel, which would make a pointwise relative error meaningless.
        let scale = exact.iter().map(|e| e.abs()).sum::<f64>() / exact.len() as f64;
        for i in [0usize, 17, 100, 255] {
            let rel = (phi[i] - exact[i]).abs() / scale;
            assert!(rel < 1e-2, "particle {i}: {} vs {}", phi[i], exact[i]);
        }
    }
}
