//! Cartesian Taylor expansions for the 3-D Laplace kernel `1/r`.
//!
//! Multipole moments are unnormalized power sums
//! `M_a = Σ_i q_i (x_i - c)^a` over multi-indices `a = (ax, ay, az)` with
//! total degree `|a| < p` (order-`p` expansion). The derivative tensor
//! `T_a = ∂^a (1/r) / a!` is evaluated with the Visscher–Apalkov recurrence
//!
//! ```text
//! |a| r² T_a = -(2|a| - 1) Σ_d x_d T_{a - e_d}  -  (|a| - 1) Σ_d T_{a - 2 e_d}
//! ```
//!
//! which is exact and numerically stable for the orders used here
//! (`k = 2 … 12`, so tensors up to total degree 2k‑2 ≤ 22).

use serde::{Deserialize, Serialize};

/// Enumerates the multi-indices of total degree `< order`, with O(1)
/// index lookup. Shared by all expansion operations of one FMM run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiIndexSet {
    order: usize,
    indices: Vec<[u8; 3]>,
    /// lookup[ax][ay][az] → position in `indices` (usize::MAX when absent).
    lookup: Vec<usize>,
}

impl MultiIndexSet {
    /// Multi-indices with `ax + ay + az < order`. `order >= 1`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 1, "expansion order must be >= 1");
        assert!(order <= 32, "expansion order too large");
        let mut indices = Vec::new();
        for total in 0..order {
            for ax in (0..=total).rev() {
                for ay in (0..=(total - ax)).rev() {
                    let az = total - ax - ay;
                    indices.push([ax as u8, ay as u8, az as u8]);
                }
            }
        }
        let dim = order;
        let mut lookup = vec![usize::MAX; dim * dim * dim];
        for (i, a) in indices.iter().enumerate() {
            let (x, y, z) = (a[0] as usize, a[1] as usize, a[2] as usize);
            lookup[(x * dim + y) * dim + z] = i;
        }
        Self {
            order,
            indices,
            lookup,
        }
    }

    /// Expansion order `p` (degrees `0 … p-1` included).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of terms: `p (p+1) (p+2) / 6`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when empty (never: order ≥ 1 keeps the constant term).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The multi-indices in degree-major order.
    pub fn indices(&self) -> &[[u8; 3]] {
        &self.indices
    }

    /// Index of multi-index `(ax, ay, az)`, if within the set.
    #[inline]
    pub fn position(&self, ax: usize, ay: usize, az: usize) -> Option<usize> {
        let dim = self.order;
        if ax >= dim || ay >= dim || az >= dim {
            return None;
        }
        let v = self.lookup[(ax * dim + ay) * dim + az];
        (v != usize::MAX).then_some(v)
    }

    /// Powers `(x, y, z)^a` for all multi-indices, in set order.
    pub fn powers(&self, dx: [f64; 3]) -> Vec<f64> {
        // Precompute per-axis power ladders.
        let p = self.order;
        let mut px = vec![1.0; p];
        let mut py = vec![1.0; p];
        let mut pz = vec![1.0; p];
        for i in 1..p {
            px[i] = px[i - 1] * dx[0];
            py[i] = py[i - 1] * dx[1];
            pz[i] = pz[i - 1] * dx[2];
        }
        self.indices
            .iter()
            .map(|a| px[a[0] as usize] * py[a[1] as usize] * pz[a[2] as usize])
            .collect()
    }
}

/// Normalized derivative tensor `T_a = ∂^a (1/|r|) / a!` for all `|a| < order`,
/// in [`MultiIndexSet`] order, evaluated at `r` (must be nonzero).
pub fn taylor_tensor(set: &MultiIndexSet, r: [f64; 3]) -> Vec<f64> {
    let r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
    assert!(r2 > 0.0, "derivative tensor at the singularity");
    let inv_r2 = 1.0 / r2;
    let mut t = vec![0.0; set.len()];
    t[0] = inv_r2.sqrt(); // T_0 = 1/r
    for (i, a) in set.indices().iter().enumerate().skip(1) {
        let (ax, ay, az) = (a[0] as usize, a[1] as usize, a[2] as usize);
        let total = (ax + ay + az) as f64;
        let mut acc = 0.0;
        // -(2|a| - 1) Σ_d x_d T_{a - e_d}
        let c1 = -(2.0 * total - 1.0);
        if ax >= 1 {
            acc += c1 * r[0] * t[set.position(ax - 1, ay, az).expect("in set")];
        }
        if ay >= 1 {
            acc += c1 * r[1] * t[set.position(ax, ay - 1, az).expect("in set")];
        }
        if az >= 1 {
            acc += c1 * r[2] * t[set.position(ax, ay, az - 1).expect("in set")];
        }
        // -(|a| - 1) Σ_d T_{a - 2 e_d}
        let c2 = -(total - 1.0);
        if c2 != 0.0 {
            if ax >= 2 {
                acc += c2 * t[set.position(ax - 2, ay, az).expect("in set")];
            }
            if ay >= 2 {
                acc += c2 * t[set.position(ax, ay - 2, az).expect("in set")];
            }
            if az >= 2 {
                acc += c2 * t[set.position(ax, ay, az - 2).expect("in set")];
            }
        }
        t[i] = acc * inv_r2 / total;
    }
    t
}

/// Factorial table as `f64` (exact through 18!, adequately rounded beyond).
pub fn factorials(n: usize) -> Vec<f64> {
    let mut f = vec![1.0; n + 1];
    for i in 1..=n {
        f[i] = f[i - 1] * i as f64;
    }
    f
}

/// Multi-index factorial `a! = ax! ay! az!`.
#[inline]
pub fn multi_factorial(f: &[f64], a: [u8; 3]) -> f64 {
    f[a[0] as usize] * f[a[1] as usize] * f[a[2] as usize]
}

/// Generalized binomial `C(a, b) = Π_d C(a_d, b_d)` for `b ≤ a`
/// component-wise.
pub fn multi_binomial(f: &[f64], a: [u8; 3], b: [u8; 3]) -> f64 {
    let mut c = 1.0;
    for (an, bk) in a.iter().zip(&b) {
        let (n, k) = (*an as usize, *bk as usize);
        debug_assert!(k <= n);
        c *= f[n] / (f[k] * f[n - k]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_set_counts() {
        for p in 1..=12 {
            let s = MultiIndexSet::new(p);
            assert_eq!(s.len(), p * (p + 1) * (p + 2) / 6, "order {p}");
        }
    }

    #[test]
    fn index_lookup_consistent() {
        let s = MultiIndexSet::new(6);
        for (i, a) in s.indices().iter().enumerate() {
            assert_eq!(
                s.position(a[0] as usize, a[1] as usize, a[2] as usize),
                Some(i)
            );
        }
        assert_eq!(s.position(6, 0, 0), None);
        assert_eq!(s.position(3, 3, 0), None); // degree 6 ∉ order-6 set
    }

    #[test]
    fn powers_match_definition() {
        let s = MultiIndexSet::new(4);
        let dx = [2.0, -1.5, 0.5];
        let pw = s.powers(dx);
        for (i, a) in s.indices().iter().enumerate() {
            let expect =
                dx[0].powi(a[0] as i32) * dx[1].powi(a[1] as i32) * dx[2].powi(a[2] as i32);
            assert!((pw[i] - expect).abs() < 1e-12);
        }
    }

    /// Central-difference check of the derivative recurrence against
    /// numerically differentiated 1/r for low orders.
    #[test]
    fn taylor_tensor_matches_finite_differences() {
        let set = MultiIndexSet::new(4);
        let r = [0.9, -0.4, 0.7];
        let t = taylor_tensor(&set, r);
        let f = |x: [f64; 3]| 1.0 / (x[0] * x[0] + x[1] * x[1] + x[2] * x[2]).sqrt();
        let h = 1e-4;

        // T_(1,0,0) = ∂x f
        let dx_num = (f([r[0] + h, r[1], r[2]]) - f([r[0] - h, r[1], r[2]])) / (2.0 * h);
        let i = set.position(1, 0, 0).unwrap();
        assert!((t[i] - dx_num).abs() < 1e-6, "{} vs {}", t[i], dx_num);

        // T_(0,2,0) = ∂y² f / 2
        let dyy_num =
            (f([r[0], r[1] + h, r[2]]) - 2.0 * f(r) + f([r[0], r[1] - h, r[2]])) / (h * h) / 2.0;
        let i = set.position(0, 2, 0).unwrap();
        assert!((t[i] - dyy_num).abs() < 1e-5, "{} vs {}", t[i], dyy_num);

        // T_(1,1,0) = ∂x∂y f
        let dxy_num = (f([r[0] + h, r[1] + h, r[2]])
            - f([r[0] + h, r[1] - h, r[2]])
            - f([r[0] - h, r[1] + h, r[2]])
            + f([r[0] - h, r[1] - h, r[2]]))
            / (4.0 * h * h);
        let i = set.position(1, 1, 0).unwrap();
        assert!((t[i] - dxy_num).abs() < 1e-5, "{} vs {}", t[i], dxy_num);
    }

    #[test]
    fn tensor_closed_forms() {
        let set = MultiIndexSet::new(3);
        let r = [1.0, 2.0, -2.0];
        let rr: f64 = 3.0; // |r| = 3
        let t = taylor_tensor(&set, r);
        assert!((t[0] - 1.0 / rr).abs() < 1e-12);
        // T_(1,0,0) = -x/r³
        let i = set.position(1, 0, 0).unwrap();
        assert!((t[i] + r[0] / rr.powi(3)).abs() < 1e-12);
        // T_(2,0,0) = (3x² - r²)/(2 r⁵)
        let i = set.position(2, 0, 0).unwrap();
        let expect = (3.0 * r[0] * r[0] - rr * rr) / (2.0 * rr.powi(5));
        assert!((t[i] - expect).abs() < 1e-12);
        // T_(1,1,0) = 3xy/r⁵... wait: x*y = 2 → 3*2/243
        let i = set.position(1, 1, 0).unwrap();
        let expect = 3.0 * r[0] * r[1] / rr.powi(5);
        assert!((t[i] - expect).abs() < 1e-12);
    }

    #[test]
    fn laplacian_of_tensor_vanishes() {
        // 1/r is harmonic: T_(2,0,0) + T_(0,2,0) + T_(0,0,2) scaled by a!
        // gives ∂xx + ∂yy + ∂zz = 0 (note T includes 1/a!, and a! = 2 for
        // each pure second derivative, so the *sum of T* also vanishes).
        let set = MultiIndexSet::new(5);
        let t = taylor_tensor(&set, [0.3, -1.1, 0.8]);
        let lap = t[set.position(2, 0, 0).unwrap()]
            + t[set.position(0, 2, 0).unwrap()]
            + t[set.position(0, 0, 2).unwrap()];
        assert!(lap.abs() < 1e-12, "laplacian {lap}");
    }

    #[test]
    #[should_panic(expected = "singularity")]
    fn tensor_at_origin_panics() {
        taylor_tensor(&MultiIndexSet::new(2), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn factorial_and_binomial() {
        let f = factorials(10);
        assert_eq!(f[5], 120.0);
        assert_eq!(multi_factorial(&f, [2, 1, 3]), 2.0 * 1.0 * 6.0);
        assert_eq!(multi_binomial(&f, [4, 2, 0], [2, 1, 0]), 6.0 * 2.0 * 1.0);
    }
}
