//! Interaction lists for the complete octree.
//!
//! * The **neighbour list** of a cell: cells at the same level within one
//!   cell of it in Chebyshev distance, including itself (≤ 27; exactly 27
//!   for interior cells — the paper's `b_P2P = 26` source neighbours plus
//!   the cell itself).
//! * The **well-separated (M2L) list**: children of the parent's neighbours
//!   that are not neighbours of the cell itself (≤ 189 for interior cells —
//!   the paper's `b_M2L = 189`).

use crate::octree::CellId;

/// Same-level neighbours of `cell` (including `cell` itself).
pub fn neighbors(cell: CellId) -> Vec<CellId> {
    let side = 1isize << cell.level;
    let c = cell.coords();
    let mut out = Vec::with_capacity(27);
    for dz in -1..=1isize {
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let nx = c[0] as isize + dx;
                let ny = c[1] as isize + dy;
                let nz = c[2] as isize + dz;
                if nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side {
                    continue;
                }
                out.push(CellId::from_coords(
                    cell.level,
                    [nx as usize, ny as usize, nz as usize],
                ));
            }
        }
    }
    out
}

/// Source neighbours only (the neighbour list without the cell itself).
pub fn source_neighbors(cell: CellId) -> Vec<CellId> {
    neighbors(cell).into_iter().filter(|&n| n != cell).collect()
}

/// The M2L / well-separated list of `cell`: children of the parent's
/// neighbours that are not adjacent to `cell`. Empty for levels < 2.
pub fn well_separated(cell: CellId) -> Vec<CellId> {
    if cell.level < 2 {
        return Vec::new();
    }
    let c = cell.coords();
    let mut out = Vec::with_capacity(189);
    for pn in neighbors(cell.parent()) {
        for child in pn.children() {
            let cc = child.coords();
            // Adjacent (Chebyshev ≤ 1) cells are handled by P2P/neighbour
            // interactions, not M2L.
            let adjacent = (0..3).all(|d| {
                let a = c[d] as isize;
                let b = cc[d] as isize;
                (a - b).abs() <= 1
            });
            if !adjacent {
                out.push(child);
            }
        }
    }
    out
}

/// `true` when two same-level cells are well separated (their centers are
/// at least two cell widths apart in some axis).
pub fn is_well_separated(a: CellId, b: CellId) -> bool {
    assert_eq!(a.level, b.level, "cells must share a level");
    let ca = a.coords();
    let cb = b.coords();
    (0..3).any(|d| (ca[d] as isize - cb[d] as isize).abs() > 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_cell_has_27_neighbors() {
        // Level 3 → side 8; cell (3,3,3) is interior.
        let cell = CellId::from_coords(3, [3, 3, 3]);
        assert_eq!(neighbors(cell).len(), 27);
        assert_eq!(source_neighbors(cell).len(), 26);
    }

    #[test]
    fn corner_cell_has_8_neighbors() {
        let cell = CellId::from_coords(2, [0, 0, 0]);
        assert_eq!(neighbors(cell).len(), 8);
    }

    #[test]
    fn interior_m2l_list_is_189() {
        // Level 3, a cell whose parent is interior at level 2 and which is
        // interior within the parent's 6³ candidate block: (3,3,3)'s parent
        // is (1,1,1), interior on the 4-wide level-2 grid.
        let cell = CellId::from_coords(3, [3, 3, 3]);
        assert_eq!(well_separated(cell).len(), 189);
    }

    #[test]
    fn m2l_list_members_are_well_separated_same_level() {
        let cell = CellId::from_coords(3, [2, 5, 4]);
        let ws = well_separated(cell);
        assert!(!ws.is_empty());
        for w in &ws {
            assert_eq!(w.level, cell.level);
            assert!(is_well_separated(cell, *w));
        }
    }

    #[test]
    fn m2l_and_neighbors_disjoint_cover_parent_neighborhood() {
        let cell = CellId::from_coords(2, [1, 2, 1]);
        let ws = well_separated(cell);
        let nb = neighbors(cell);
        for w in &ws {
            assert!(!nb.contains(w));
        }
        // Every child of every parent neighbour is either adjacent or in WS.
        let mut candidates = 0;
        for pn in neighbors(cell.parent()) {
            candidates += pn.children().len();
        }
        assert_eq!(candidates, ws.len() + nb.len());
    }

    #[test]
    fn no_m2l_below_level_2() {
        assert!(well_separated(CellId::root()).is_empty());
        assert!(well_separated(CellId::from_coords(1, [1, 0, 1])).is_empty());
    }

    #[test]
    fn boundary_cells_have_smaller_lists() {
        let corner = CellId::from_coords(3, [0, 0, 0]);
        assert!(well_separated(corner).len() < 189);
    }
}
