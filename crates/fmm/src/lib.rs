//! # lam-fmm
//!
//! The second application of the paper: a fast multipole method for the 3-D
//! Laplace kernel with Cartesian Taylor expansions (the expansion family
//! ExaFMM's Cartesian variant uses), random particles in a cube, and the
//! modeling vector `X = (t, N, q, k)` — threads, particles, particles per
//! leaf cell, and expansion order.
//!
//! The crate provides a *real, runnable* FMM — octree construction
//! ([`octree`]), the six kernels P2M / M2M / M2L / L2L / L2P / P2P
//! ([`kernels`]), interaction lists ([`lists`]), a threaded driver
//! ([`exec`]), and accuracy validation against the direct sum
//! ([`accuracy`]) — plus the simulated-execution oracle ([`oracle`]) used
//! as reproducible ground truth for the paper's figures.

pub mod accuracy;
pub mod config;
pub mod exec;
pub mod expansion;
pub mod kernels;
pub mod lists;
pub mod octree;
pub mod oracle;
pub mod particle;
pub mod workload;

pub use config::{FmmConfig, FmmSpace};
pub use exec::Fmm;
pub use oracle::FmmOracle;
pub use particle::Particle;
pub use workload::FmmWorkload;
