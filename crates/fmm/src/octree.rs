//! Complete octree over the unit cube.
//!
//! The paper assumes a nearly-uniform particle distribution and therefore a
//! *full* oct-tree: every cell at the leaf level exists. Cells are indexed
//! by Morton (Z-order) codes, which makes parent/child/coordinate
//! conversions pure bit-twiddling and keeps sibling data contiguous.

use crate::particle::Particle;

/// A cell address: refinement level and Morton index within that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Level (0 = root).
    pub level: usize,
    /// Morton index in `0 .. 8^level`.
    pub index: usize,
}

impl CellId {
    /// The root cell.
    pub fn root() -> Self {
        Self { level: 0, index: 0 }
    }

    /// Parent cell (panics at the root).
    pub fn parent(&self) -> CellId {
        assert!(self.level > 0, "root has no parent");
        CellId {
            level: self.level - 1,
            index: self.index >> 3,
        }
    }

    /// The eight children.
    pub fn children(&self) -> [CellId; 8] {
        std::array::from_fn(|o| CellId {
            level: self.level + 1,
            index: (self.index << 3) | o,
        })
    }

    /// Integer grid coordinates within the level (each `< 2^level`).
    pub fn coords(&self) -> [usize; 3] {
        morton_decode(self.index)
    }

    /// Build from grid coordinates.
    pub fn from_coords(level: usize, c: [usize; 3]) -> Self {
        debug_assert!(c.iter().all(|&v| v < (1 << level)));
        Self {
            level,
            index: morton_encode(c),
        }
    }

    /// Cell center in the unit cube.
    pub fn center(&self) -> [f64; 3] {
        let h = self.half_width();
        let c = self.coords();
        [
            (2.0 * c[0] as f64 + 1.0) * h,
            (2.0 * c[1] as f64 + 1.0) * h,
            (2.0 * c[2] as f64 + 1.0) * h,
        ]
    }

    /// Half the cell edge length.
    pub fn half_width(&self) -> f64 {
        0.5 / (1u64 << self.level) as f64
    }
}

/// Interleave the low 21 bits of each coordinate (x lowest).
pub fn morton_encode(c: [usize; 3]) -> usize {
    fn spread(mut v: u64) -> u64 {
        v &= 0x1F_FFFF;
        v = (v | (v << 32)) & 0x0000_1F00_0000_FFFF;
        v = (v | (v << 16)) & 0x001F_0000_FF00_00FF;
        v = (v | (v << 8)) & 0x100F_00F0_0F00_F00F;
        v = (v | (v << 4)) & 0x10C3_0C30_C30C_30C3;
        v = (v | (v << 2)) & 0x1249_2492_4924_9249;
        v
    }
    (spread(c[0] as u64) | (spread(c[1] as u64) << 1) | (spread(c[2] as u64) << 2)) as usize
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(m: usize) -> [usize; 3] {
    fn compact(mut v: u64) -> u64 {
        v &= 0x1249_2492_4924_9249;
        v = (v ^ (v >> 2)) & 0x10C3_0C30_C30C_30C3;
        v = (v ^ (v >> 4)) & 0x100F_00F0_0F00_F00F;
        v = (v ^ (v >> 8)) & 0x001F_0000_FF00_00FF;
        v = (v ^ (v >> 16)) & 0x0000_1F00_0000_FFFF;
        v = (v ^ (v >> 32)) & 0x1F_FFFF;
        v
    }
    let m = m as u64;
    [
        compact(m) as usize,
        compact(m >> 1) as usize,
        compact(m >> 2) as usize,
    ]
}

/// A complete octree with particles bucketed into Morton-ordered leaves.
#[derive(Debug, Clone)]
pub struct Octree {
    /// Leaf level `L`; leaves are the `8^L` cells at this level.
    pub levels: usize,
    /// Particles reordered so each leaf's particles are contiguous.
    pub particles: Vec<Particle>,
    /// `leaf_offsets[m] .. leaf_offsets[m+1]` = particle range of leaf with
    /// Morton index `m`. Length `8^L + 1`.
    pub leaf_offsets: Vec<usize>,
}

impl Octree {
    /// Build a complete octree whose leaf population targets `q` particles
    /// per leaf: the leaf level is the smallest `L` with `N / 8^L ≤ q`.
    pub fn build(particles: &[Particle], q: usize) -> Self {
        assert!(q >= 1, "q must be >= 1");
        let n = particles.len();
        let mut levels = 0usize;
        while n > q * (1usize << (3 * levels)) {
            levels += 1;
            assert!(levels <= 20, "tree too deep");
        }
        Self::build_with_levels(particles, levels)
    }

    /// Build with an explicit leaf level.
    pub fn build_with_levels(particles: &[Particle], levels: usize) -> Self {
        let n_leaves = 1usize << (3 * levels);
        let side = 1usize << levels;
        // Counting sort by leaf Morton index.
        let leaf_of = |p: &Particle| -> usize {
            let gx = ((p.pos[0] * side as f64) as usize).min(side - 1);
            let gy = ((p.pos[1] * side as f64) as usize).min(side - 1);
            let gz = ((p.pos[2] * side as f64) as usize).min(side - 1);
            morton_encode([gx, gy, gz])
        };
        let mut counts = vec![0usize; n_leaves + 1];
        for p in particles {
            counts[leaf_of(p) + 1] += 1;
        }
        for m in 0..n_leaves {
            counts[m + 1] += counts[m];
        }
        let leaf_offsets = counts.clone();
        let mut cursor = counts;
        let mut sorted = vec![
            Particle {
                pos: [0.0; 3],
                charge: 0.0
            };
            particles.len()
        ];
        for p in particles {
            let m = leaf_of(p);
            sorted[cursor[m]] = *p;
            cursor[m] += 1;
        }
        Self {
            levels,
            particles: sorted,
            leaf_offsets,
        }
    }

    /// Number of leaves (`8^L`).
    pub fn n_leaves(&self) -> usize {
        1usize << (3 * self.levels)
    }

    /// Particles of the leaf with Morton index `m`.
    pub fn leaf_particles(&self, m: usize) -> &[Particle] {
        &self.particles[self.leaf_offsets[m]..self.leaf_offsets[m + 1]]
    }

    /// Global index range of a leaf's particles in [`Octree::particles`].
    pub fn leaf_range(&self, m: usize) -> std::ops::Range<usize> {
        self.leaf_offsets[m]..self.leaf_offsets[m + 1]
    }

    /// Number of cells at `level`.
    pub fn n_cells(level: usize) -> usize {
        1usize << (3 * level)
    }

    /// Mean particles per leaf.
    pub fn mean_leaf_population(&self) -> f64 {
        self.particles.len() as f64 / self.n_leaves() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::random_cube;

    #[test]
    fn morton_round_trip() {
        for c in [
            [0, 0, 0],
            [1, 2, 3],
            [7, 7, 7],
            [100, 50, 25],
            [1023, 0, 512],
        ] {
            assert_eq!(morton_decode(morton_encode(c)), c);
        }
    }

    #[test]
    fn morton_locality_of_children() {
        let parent = CellId { level: 2, index: 5 };
        for (o, ch) in parent.children().iter().enumerate() {
            assert_eq!(ch.index, (5 << 3) | o);
            assert_eq!(ch.parent(), parent);
        }
    }

    #[test]
    fn cell_geometry() {
        let root = CellId::root();
        assert_eq!(root.center(), [0.5, 0.5, 0.5]);
        assert_eq!(root.half_width(), 0.5);
        let c = CellId::from_coords(1, [1, 0, 1]);
        assert_eq!(c.center(), [0.75, 0.25, 0.75]);
        assert_eq!(c.half_width(), 0.25);
    }

    #[test]
    fn build_partitions_all_particles() {
        let ps = random_cube(1000, 3);
        let tree = Octree::build(&ps, 32);
        assert_eq!(tree.particles.len(), 1000);
        let total: usize = (0..tree.n_leaves())
            .map(|m| tree.leaf_particles(m).len())
            .sum();
        assert_eq!(total, 1000);
        // 1000 / 8^1 = 125 > 32; 1000 / 8^2 = 15.6 ≤ 32 → 2 levels.
        assert_eq!(tree.levels, 2);
    }

    #[test]
    fn particles_land_in_their_leaf() {
        let ps = random_cube(500, 9);
        let tree = Octree::build(&ps, 16);
        let side = 1usize << tree.levels;
        for m in 0..tree.n_leaves() {
            let cell = CellId {
                level: tree.levels,
                index: m,
            };
            let center = cell.center();
            let h = cell.half_width();
            for p in tree.leaf_particles(m) {
                for (pd, cd) in p.pos.iter().zip(&center) {
                    assert!(
                        (pd - cd).abs() <= h + 1e-12,
                        "particle escaped its leaf (side {side})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_leaf_when_few_particles() {
        let ps = random_cube(10, 0);
        let tree = Octree::build(&ps, 64);
        assert_eq!(tree.levels, 0);
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.leaf_particles(0).len(), 10);
    }

    #[test]
    fn mean_population_near_q() {
        let ps = random_cube(4096, 5);
        let tree = Octree::build(&ps, 64);
        // 4096/8^2=64 → exactly 2 levels, mean 64.
        assert_eq!(tree.levels, 2);
        assert!((tree.mean_leaf_population() - 64.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "q must be")]
    fn zero_q_panics() {
        Octree::build(&random_cube(8, 0), 0);
    }
}
