//! Direct N-body reference and error norms for FMM validation.

use crate::particle::Particle;
use rayon::prelude::*;

/// O(N²) direct potential at every particle (self-interaction excluded).
pub fn direct_potentials(particles: &[Particle]) -> Vec<f64> {
    particles
        .par_iter()
        .enumerate()
        .map(|(i, t)| {
            let mut acc = 0.0;
            for (j, s) in particles.iter().enumerate() {
                if i != j {
                    acc += s.charge / t.dist2(s).sqrt();
                }
            }
            acc
        })
        .collect()
}

/// Relative L2 error `‖a − b‖₂ / ‖b‖₂`.
pub fn relative_l2_error(approx: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(approx.len(), exact.len(), "length mismatch");
    if exact.is_empty() {
        return 0.0;
    }
    let num: f64 = approx
        .iter()
        .zip(exact)
        .map(|(a, e)| (a - e) * (a - e))
        .sum();
    let den: f64 = exact.iter().map(|e| e * e).sum();
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// Maximum relative pointwise error (with an absolute floor to avoid
/// dividing by tiny potentials).
pub fn max_relative_error(approx: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(approx.len(), exact.len(), "length mismatch");
    approx
        .iter()
        .zip(exact)
        .map(|(a, e)| (a - e).abs() / e.abs().max(1e-12))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::random_cube;

    #[test]
    fn direct_is_symmetric_for_two_unit_charges() {
        let ps = vec![
            Particle {
                pos: [0.0, 0.0, 0.0],
                charge: 1.0,
            },
            Particle {
                pos: [1.0, 0.0, 0.0],
                charge: 1.0,
            },
        ];
        let phi = direct_potentials(&ps);
        assert_eq!(phi[0], 1.0);
        assert_eq!(phi[1], 1.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ps = random_cube(200, 1);
        let par = direct_potentials(&ps);
        // sequential reference
        let mut seq = vec![0.0; ps.len()];
        for (i, t) in ps.iter().enumerate() {
            for (j, s) in ps.iter().enumerate() {
                if i != j {
                    seq[i] += s.charge / t.dist2(s).sqrt();
                }
            }
        }
        for (a, b) in par.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn l2_error_basics() {
        assert_eq!(relative_l2_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = relative_l2_error(&[1.1, 2.0], &[1.0, 2.0]);
        assert!((e - 0.1 / 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(relative_l2_error(&[], &[]), 0.0);
        assert_eq!(relative_l2_error(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_l2_error(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn max_relative_error_finds_worst() {
        let e = max_relative_error(&[1.0, 2.2], &[1.0, 2.0]);
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        relative_l2_error(&[1.0], &[1.0, 2.0]);
    }
}
