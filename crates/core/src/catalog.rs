//! The dynamic workload catalog: an object-safe erasure of [`Workload`]
//! plus a process-wide registry of named scenario descriptors.
//!
//! The [`Workload`] trait is deliberately generic (`type Config`) so the
//! training pipeline stays monomorphized and fast — but a *serving* layer
//! cannot be generic over scenarios it learns about at runtime. This
//! module closes that gap:
//!
//! * [`DynWorkload`] erases `Workload::Config` behind an object-safe
//!   surface: everything the serving and persistence layers need (name,
//!   feature layout, dataset generation, analytical-model construction,
//!   feature-row projection) without ever naming a configuration type. A
//!   blanket adapter implements it for every `Workload`, so existing
//!   scenario impls are catalog-ready with zero extra code.
//! * [`WorkloadCatalog`] maps validated kebab-case names to registered
//!   descriptors. Registration is the *only* step a new scenario needs to
//!   become servable — the serving layer resolves names against the
//!   catalog instead of matching on a closed enum.
//! * [`WorkloadEntry`] memoizes the scenario dataset behind a `OnceLock`,
//!   so training every model family for one workload pays exactly one
//!   oracle sweep instead of one per family.
//!
//! Entries are never removed: a name handed out by the catalog stays
//! valid for the life of the process, which is what lets callers hold
//! `&'static str` handles (e.g. `lam-serve`'s `WorkloadId`) without
//! lifetime plumbing.

use crate::hybrid::HybridConfig;
use crate::workload::Workload;
use lam_analytical::traits::AnalyticalModel;
use lam_data::Dataset;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Noise seed every *servable* descriptor must construct its oracle with.
/// Matches the figure experiments, so a served model and a figure binary
/// agree on the ground truth.
pub const SERVE_NOISE_SEED: u64 = 20190520;

/// Object-safe view of one application scenario — [`Workload`] with the
/// associated `Config` type erased.
///
/// Every method is answerable without naming a configuration: feature
/// rows come pre-projected, datasets pre-swept. Implemented for free for
/// every [`Workload`] by a blanket adapter; hand-rolled impls (test
/// probes, scenarios without an enumerable config type) are equally
/// welcome in the catalog.
pub trait DynWorkload: Send + Sync {
    /// Short scenario label for reports and diagnostics.
    fn name(&self) -> &str;

    /// Feature-column names, in projection order.
    fn feature_names(&self) -> Vec<String>;

    /// Feature count of this scenario's rows — derived from the feature
    /// layout, never hand-maintained, so it cannot drift from
    /// [`DynWorkload::feature_names`].
    fn n_features(&self) -> usize {
        self.feature_names().len()
    }

    /// Number of configurations in the scenario's space.
    fn space_size(&self) -> usize;

    /// Feature rows of every configuration, in canonical space order,
    /// **without** running the oracle — identical to the feature side of
    /// [`DynWorkload::generate_dataset`] at a tiny fraction of the cost.
    fn feature_rows(&self) -> Vec<Vec<f64>>;

    /// Ground-truth execution time of configuration `index` (in canonical
    /// space order) — the oracle on one point. This is what autotuners
    /// "measure": a single-config evaluation whose cost the tuner budgets,
    /// as opposed to [`DynWorkload::generate_dataset`]'s full sweep.
    /// Agrees exactly with `generate_dataset().response()[index]`.
    ///
    /// # Panics
    /// Implementations may panic when `index >= space_size()`.
    fn measure(&self, index: usize) -> f64;

    /// Generate the full scenario dataset (runs the oracle over every
    /// configuration). Callers wanting the memoized copy go through
    /// [`WorkloadEntry::dataset`] instead.
    fn generate_dataset(&self) -> Dataset;

    /// The scenario's untuned analytical model (a fresh boxed instance;
    /// analytical models carry no trained state).
    fn analytical_model(&self) -> Box<dyn AnalyticalModel>;

    /// The hybrid configuration the experiments pair with this scenario.
    fn hybrid_config(&self) -> HybridConfig;
}

// The blanket adapter: every generic `Workload` is a `DynWorkload`.
// Method bodies name the `Workload` methods explicitly because both
// traits share spellings.
impl<W: Workload> DynWorkload for W {
    fn name(&self) -> &str {
        Workload::name(self)
    }

    fn feature_names(&self) -> Vec<String> {
        Workload::feature_names(self)
    }

    fn space_size(&self) -> usize {
        self.param_space().len()
    }

    fn feature_rows(&self) -> Vec<Vec<f64>> {
        self.param_space()
            .iter()
            .map(|c| self.features(c))
            .collect()
    }

    fn measure(&self, index: usize) -> f64 {
        self.execution_time(&self.param_space()[index])
    }

    fn generate_dataset(&self) -> Dataset {
        Workload::generate_dataset(self)
    }

    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        Workload::analytical_model(self)
    }

    fn hybrid_config(&self) -> HybridConfig {
        Workload::hybrid_config(self)
    }
}

/// Errors from catalog registration and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The name is not a valid catalog handle (see
    /// [`WorkloadCatalog::validate_name`]).
    InvalidName(String),
    /// The workload's configuration space is empty — it could never be
    /// sampled, trained, or served, so registration refuses it up front.
    EmptySpace(String),
    /// A descriptor is already registered under this name.
    Duplicate(String),
    /// No descriptor is registered under this name.
    Unknown(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::InvalidName(n) => write!(
                f,
                "invalid workload name `{n}`: use non-empty kebab-case \
                 ([a-z0-9] and interior dashes)"
            ),
            CatalogError::EmptySpace(n) => {
                write!(f, "workload `{n}` has an empty configuration space")
            }
            CatalogError::Duplicate(n) => write!(f, "workload `{n}` is already registered"),
            CatalogError::Unknown(n) => write!(f, "unknown workload `{n}`"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// One registered scenario: its interned name, the erased workload, and
/// the memoized dataset.
pub struct WorkloadEntry {
    name: &'static str,
    workload: Box<dyn DynWorkload>,
    n_features: usize,
    dataset: OnceLock<Arc<Dataset>>,
}

impl WorkloadEntry {
    /// The interned catalog name — stable for the life of the process.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The erased scenario.
    pub fn workload(&self) -> &dyn DynWorkload {
        &*self.workload
    }

    /// Feature arity, cached at registration so request-validation hot
    /// paths never materialize the feature-name strings just to count
    /// them.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The scenario dataset, generated on first call and memoized: no
    /// matter how many model families train against this entry, the
    /// oracle sweeps the configuration space exactly once per process.
    /// Concurrent first callers block on the single in-flight sweep.
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(
            self.dataset
                .get_or_init(|| Arc::new(self.workload.generate_dataset())),
        )
    }

    /// `true` once the memoized dataset has been generated.
    pub fn dataset_generated(&self) -> bool {
        self.dataset.get().is_some()
    }
}

impl fmt::Debug for WorkloadEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadEntry")
            .field("name", &self.name)
            .field("space_size", &self.workload.space_size())
            .field("dataset_generated", &self.dataset_generated())
            .finish()
    }
}

/// A registry of named workload descriptors, preserving registration
/// order. Most callers want the process-wide
/// [`WorkloadCatalog::global`]; independent instances exist for tests.
pub struct WorkloadCatalog {
    entries: RwLock<Vec<Arc<WorkloadEntry>>>,
}

impl WorkloadCatalog {
    /// An empty catalog.
    pub const fn new() -> Self {
        Self {
            entries: RwLock::new(Vec::new()),
        }
    }

    /// The process-wide catalog every serving-layer lookup resolves
    /// against. Registering here is the one call that makes a scenario
    /// servable.
    pub fn global() -> &'static WorkloadCatalog {
        static GLOBAL: WorkloadCatalog = WorkloadCatalog::new();
        &GLOBAL
    }

    /// Check that `name` is a usable catalog handle: non-empty
    /// kebab-case (`[a-z0-9]` and interior single dashes). This keeps
    /// every registered name safe for URLs, JSON, and the
    /// `{workload}__{kind}__v{n}.json` artifact-file grammar (which
    /// a `_` or `.` in a name would corrupt).
    pub fn validate_name(name: &str) -> Result<(), CatalogError> {
        let kebab = !name.is_empty()
            && !name.starts_with('-')
            && !name.ends_with('-')
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if kebab {
            Ok(())
        } else {
            Err(CatalogError::InvalidName(name.to_string()))
        }
    }

    /// Register an erased workload under `name`. Returns the interned
    /// name on success; rejects invalid names and duplicates (entries are
    /// never replaced or removed — handles must stay valid forever).
    pub fn register(
        &self,
        name: &str,
        workload: Box<dyn DynWorkload>,
    ) -> Result<&'static str, CatalogError> {
        Self::validate_name(name)?;
        // Interrogate the user-supplied workload *before* taking the
        // write lock: a delegating impl that consults this catalog must
        // not deadlock, and an unsampleable empty space must never enter
        // the catalog (samplers cycle rows with `i % len`).
        if workload.space_size() == 0 {
            return Err(CatalogError::EmptySpace(name.to_string()));
        }
        let n_features = workload.n_features();
        let mut entries = self.entries.write().expect("catalog poisoned");
        if entries.iter().any(|e| e.name == name) {
            return Err(CatalogError::Duplicate(name.to_string()));
        }
        // Interned only after validation + duplicate check, so leaks are
        // bounded by successful registrations.
        let interned: &'static str = Box::leak(name.to_string().into_boxed_str());
        entries.push(Arc::new(WorkloadEntry {
            name: interned,
            workload,
            n_features,
            dataset: OnceLock::new(),
        }));
        Ok(interned)
    }

    /// Register a generic [`Workload`] under `name` (boxes it through the
    /// blanket [`DynWorkload`] adapter).
    pub fn register_workload<W: Workload + 'static>(
        &self,
        name: &str,
        workload: W,
    ) -> Result<&'static str, CatalogError> {
        self.register(name, Box::new(workload))
    }

    /// Look up an entry by name.
    pub fn lookup(&self, name: &str) -> Option<Arc<WorkloadEntry>> {
        self.entries
            .read()
            .expect("catalog poisoned")
            .iter()
            .find(|e| e.name == name)
            .map(Arc::clone)
    }

    /// Look up an entry by name, with a typed error for the miss.
    pub fn resolve(&self, name: &str) -> Result<Arc<WorkloadEntry>, CatalogError> {
        self.lookup(name)
            .ok_or_else(|| CatalogError::Unknown(name.to_string()))
    }

    /// Every registered entry, in registration order.
    pub fn entries(&self) -> Vec<Arc<WorkloadEntry>> {
        self.entries.read().expect("catalog poisoned").clone()
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries
            .read()
            .expect("catalog poisoned")
            .iter()
            .map(|e| e.name)
            .collect()
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog poisoned").len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for WorkloadCatalog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_analytical::traits::ConstantModel;

    /// A tiny synthetic workload for catalog tests.
    struct Toy {
        configs: Vec<u64>,
    }

    impl Toy {
        fn new(n: u64) -> Self {
            Self {
                configs: (1..=n).collect(),
            }
        }
    }

    impl Workload for Toy {
        type Config = u64;
        fn name(&self) -> &str {
            "toy"
        }
        fn feature_names(&self) -> Vec<String> {
            vec!["n".to_string()]
        }
        fn param_space(&self) -> &[u64] {
            &self.configs
        }
        fn features(&self, cfg: &u64) -> Vec<f64> {
            vec![*cfg as f64]
        }
        fn execution_time(&self, cfg: &u64) -> f64 {
            *cfg as f64 * 1e-3
        }
        fn problem_size(&self, cfg: &u64) -> f64 {
            *cfg as f64
        }
        fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
            Box::new(ConstantModel(1.0))
        }
    }

    #[test]
    fn blanket_adapter_erases_a_generic_workload() {
        let erased: Box<dyn DynWorkload> = Box::new(Toy::new(12));
        assert_eq!(erased.name(), "toy");
        assert_eq!(erased.space_size(), 12);
        assert_eq!(erased.n_features(), erased.feature_names().len());
        let rows = erased.feature_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0], vec![1.0]);
        let data = erased.generate_dataset();
        assert_eq!(data.len(), 12);
        // The per-index oracle agrees bit for bit with the full sweep.
        for i in 0..data.len() {
            assert_eq!(erased.measure(i).to_bits(), data.response()[i].to_bits());
        }
        assert!(!erased.hybrid_config().log_feature);
        assert!(erased.analytical_model().predict(&rows[0]).is_finite());
    }

    #[test]
    fn register_lookup_and_order() {
        let catalog = WorkloadCatalog::new();
        assert!(catalog.is_empty());
        catalog.register_workload("toy-a", Toy::new(3)).unwrap();
        catalog.register_workload("toy-b", Toy::new(5)).unwrap();
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.names(), vec!["toy-a", "toy-b"]);
        assert_eq!(catalog.lookup("toy-b").unwrap().workload().space_size(), 5);
        assert!(catalog.lookup("toy-c").is_none());
        assert_eq!(
            catalog.resolve("toy-c").unwrap_err(),
            CatalogError::Unknown("toy-c".to_string())
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let catalog = WorkloadCatalog::new();
        catalog.register_workload("toy", Toy::new(3)).unwrap();
        assert_eq!(
            catalog.register_workload("toy", Toy::new(4)).unwrap_err(),
            CatalogError::Duplicate("toy".to_string())
        );
        // The original registration is untouched.
        assert_eq!(catalog.lookup("toy").unwrap().workload().space_size(), 3);
    }

    #[test]
    fn names_are_validated_kebab_case() {
        for good in ["a", "toy-2", "stencil-grid-blocking", "x9"] {
            assert!(WorkloadCatalog::validate_name(good).is_ok(), "{good}");
        }
        for bad in [
            "", "Toy", "toy_2", "-toy", "toy-", "toy.json", "a b", "a__b", "ün",
        ] {
            assert!(
                matches!(
                    WorkloadCatalog::validate_name(bad),
                    Err(CatalogError::InvalidName(_))
                ),
                "{bad}"
            );
            let catalog = WorkloadCatalog::new();
            assert!(catalog.register_workload(bad, Toy::new(1)).is_err());
        }
    }

    #[test]
    fn empty_space_rejected() {
        let catalog = WorkloadCatalog::new();
        assert_eq!(
            catalog
                .register_workload("toy", Toy { configs: vec![] })
                .unwrap_err(),
            CatalogError::EmptySpace("toy".to_string())
        );
        assert!(catalog.is_empty());
    }

    #[test]
    fn dataset_is_memoized_per_entry() {
        let catalog = WorkloadCatalog::new();
        catalog.register_workload("toy", Toy::new(8)).unwrap();
        let entry = catalog.lookup("toy").unwrap();
        assert!(!entry.dataset_generated());
        let a = entry.dataset();
        assert!(entry.dataset_generated());
        let b = entry.dataset();
        // Same Arc, not merely equal data: the sweep ran once.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn interned_names_outlive_the_lookup() {
        let catalog = WorkloadCatalog::new();
        let interned = catalog.register_workload("toy", Toy::new(2)).unwrap();
        let entry = catalog.lookup("toy").unwrap();
        assert_eq!(interned, entry.name());
        // &'static str: usable after every temporary is gone.
        drop(entry);
        assert_eq!(interned, "toy");
    }
}
