//! The hybrid analytical + machine-learning model (paper Fig 4).
//!
//! Training: predict every training row with the analytical model, append
//! the prediction as an extra feature column, and fit the ML regressor on
//! the augmented dataset (stacking). Prediction: augment the incoming
//! feature row the same way and evaluate the stacked model; optionally
//! aggregate the stacked and analytical predictions (bagging-style
//! averaging).

use lam_analytical::traits::AnalyticalModel;
use lam_data::Dataset;
use lam_ml::model::{FitError, Regressor};
use serde::{Deserialize, Serialize};

/// Name of the stacked feature column added to augmented datasets.
pub const AM_FEATURE: &str = "am_prediction";

/// Hybrid-model options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Aggregate the analytical and stacked predictions (Fig 4's optional
    /// "Results Aggregation" stage). Weight below applies to the stacked
    /// model; the analytical model gets `1 − weight`.
    pub aggregate: bool,
    /// Stacked-model weight used when `aggregate` is on. The paper's plain
    /// bagging average corresponds to `0.5`.
    pub stacked_weight: f64,
    /// Stack on `ln(am_prediction)` instead of the raw value — useful when
    /// responses span decades (FMM). The ML model still predicts raw
    /// seconds; only the stacked *feature* is transformed.
    pub log_feature: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            aggregate: false,
            stacked_weight: 0.5,
            log_feature: false,
        }
    }
}

impl HybridConfig {
    /// The paper's full pipeline with aggregation enabled.
    pub fn with_aggregation() -> Self {
        Self {
            aggregate: true,
            ..Self::default()
        }
    }

    /// The stacked-feature value for an analytical prediction under this
    /// configuration. Public so persistence layers can rebuild augmented
    /// feature rows identically to [`HybridModel`].
    pub fn stacked_feature(&self, am_pred: f64) -> f64 {
        if self.log_feature {
            am_pred.max(f64::MIN_POSITIVE).ln()
        } else {
            am_pred
        }
    }
}

/// A hybrid model: analytical model + ML regressor, stacked (and optionally
/// aggregated).
pub struct HybridModel {
    am: Box<dyn AnalyticalModel>,
    ml: Box<dyn Regressor>,
    config: HybridConfig,
    fitted: bool,
}

impl HybridModel {
    /// Build from an analytical model and an (unfitted) ML regressor.
    pub fn new(am: Box<dyn AnalyticalModel>, ml: Box<dyn Regressor>, config: HybridConfig) -> Self {
        Self {
            am,
            ml,
            config,
            fitted: false,
        }
    }

    /// Reassemble a hybrid whose ML component is *already fitted* on an
    /// augmented dataset (e.g. loaded from disk). The returned model is
    /// immediately ready to predict; no refit happens.
    ///
    /// The caller is responsible for `ml` having been trained on rows
    /// augmented exactly as [`HybridModel::augment`] does for `config` —
    /// model persistence stores the configuration alongside the fitted
    /// regressor so this invariant survives a save/load cycle.
    pub fn from_fitted_parts(
        am: Box<dyn AnalyticalModel>,
        ml: Box<dyn Regressor>,
        config: HybridConfig,
    ) -> Self {
        Self {
            am,
            ml,
            config,
            fitted: true,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Analytical prediction for a raw feature row (before stacking).
    pub fn analytical_prediction(&self, x: &[f64]) -> f64 {
        self.am.predict(x)
    }

    fn stacked_feature(&self, am_pred: f64) -> f64 {
        self.config.stacked_feature(am_pred)
    }

    /// Augment a dataset with the analytical-model feature column.
    pub fn augment(&self, data: &Dataset) -> Dataset {
        let preds: Vec<f64> = (0..data.len())
            .map(|i| self.stacked_feature(self.am.predict(data.row(i))))
            .collect();
        data.with_column(AM_FEATURE, &preds)
            .expect("augmentation length matches dataset")
    }
}

/// A read-only, batch-capable hybrid predictor assembled from *fitted*
/// parts: the workload's analytical model, any stacked predictor (for the
/// serving path, the stacked forest arena-compiled via
/// [`lam_ml::compile`]), and the [`HybridConfig`] the stacked model was
/// trained under.
///
/// Per-row arithmetic is exactly [`HybridModel::predict_row`]'s (augment,
/// stacked predict, optional aggregation), so predictions are
/// bit-identical to the training-time hybrid when the stacked predictor
/// is bit-identical to the training-time regressor — which the compiled
/// arena guarantees. Unlike [`HybridModel`], batch prediction augments
/// the whole batch first and scores it through the stacked model's own
/// `predict_rows`, so compiled stacked models evaluate block-wise.
pub struct HybridPredictor {
    am: Box<dyn AnalyticalModel>,
    stacked: Box<dyn crate::predict::PredictRow>,
    config: HybridConfig,
}

impl HybridPredictor {
    /// Assemble from fitted parts; ready to predict immediately.
    pub fn new(
        am: Box<dyn AnalyticalModel>,
        stacked: Box<dyn crate::predict::PredictRow>,
        config: HybridConfig,
    ) -> Self {
        Self {
            am,
            stacked,
            config,
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    #[inline]
    fn augment_row(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let am_pred = self.am.predict(x);
        let mut row = Vec::with_capacity(x.len() + 1);
        row.extend_from_slice(x);
        row.push(self.config.stacked_feature(am_pred));
        (row, am_pred)
    }

    #[inline]
    fn finish(&self, stacked: f64, am_pred: f64) -> f64 {
        if self.config.aggregate {
            let w = self.config.stacked_weight;
            w * stacked + (1.0 - w) * am_pred
        } else {
            stacked
        }
    }

    fn predict_augmented<'a>(&self, rows: impl Iterator<Item = &'a [f64]>) -> Vec<f64> {
        let (augmented, am_preds): (Vec<Vec<f64>>, Vec<f64>) =
            rows.map(|r| self.augment_row(r)).unzip();
        let stacked = self.stacked.predict_rows(&augmented);
        stacked
            .into_iter()
            .zip(am_preds)
            .map(|(s, am)| self.finish(s, am))
            .collect()
    }
}

impl crate::predict::PredictRow for HybridPredictor {
    fn predict_row(&self, x: &[f64]) -> f64 {
        let (row, am_pred) = self.augment_row(x);
        self.finish(self.stacked.predict_row(&row), am_pred)
    }

    fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.predict_augmented(rows.iter().map(Vec::as_slice))
    }

    fn predict_rows_by_ref(&self, rows: &[&[f64]]) -> Vec<f64> {
        self.predict_augmented(rows.iter().copied())
    }
}

impl Regressor for HybridModel {
    fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        if !(0.0..=1.0).contains(&self.config.stacked_weight) {
            return Err(FitError::Invalid(format!(
                "stacked_weight {} outside [0, 1]",
                self.config.stacked_weight
            )));
        }
        let augmented = self.augment(data);
        self.ml.fit(&augmented)?;
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        assert!(self.fitted, "HybridModel used before fit");
        let am_pred = self.am.predict(x);
        let mut row = Vec::with_capacity(x.len() + 1);
        row.extend_from_slice(x);
        row.push(self.stacked_feature(am_pred));
        let stacked = self.ml.predict_row(&row);
        if self.config.aggregate {
            let w = self.config.stacked_weight;
            w * stacked + (1.0 - w) * am_pred
        } else {
            stacked
        }
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_analytical::traits::ConstantModel;
    use lam_ml::forest::ExtraTreesRegressor;
    use lam_ml::metrics::mape;
    use lam_ml::sampling::train_test_split_fraction;
    use lam_ml::tree::TreeParams;

    /// An analytical model that is correlated with the truth but off by a
    /// structured error — the regime the hybrid should exploit.
    struct RoughModel;
    impl AnalyticalModel for RoughModel {
        fn predict(&self, x: &[f64]) -> f64 {
            // truth below is x0² + 5 x1; the AM knows only 0.6·x0².
            0.6 * x[0] * x[0]
        }
    }

    fn synthetic() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..24 {
            for b in 0..24 {
                let x0 = a as f64 / 2.0;
                let x1 = b as f64 / 2.0;
                rows.push(vec![x0, x1]);
                ys.push(x0 * x0 + 5.0 * x1 + 1.0);
            }
        }
        Dataset::from_rows(vec!["x0".into(), "x1".into()], &rows, ys).unwrap()
    }

    fn extra_trees(seed: u64) -> Box<dyn Regressor> {
        Box::new(ExtraTreesRegressor::with_params(
            60,
            TreeParams::default(),
            seed,
        ))
    }

    #[test]
    fn hybrid_beats_pure_ml_on_small_training_sets() {
        let data = synthetic();
        let (train, test) = train_test_split_fraction(&data, 0.05, 9);

        let mut pure = extra_trees(1);
        pure.fit(&train).unwrap();
        let pure_mape = mape(test.response(), &pure.predict(&test)).unwrap();

        let mut hybrid = HybridModel::new(
            Box::new(RoughModel),
            extra_trees(1),
            HybridConfig::default(),
        );
        hybrid.fit(&train).unwrap();
        let hybrid_mape = mape(test.response(), &hybrid.predict(&test)).unwrap();

        assert!(
            hybrid_mape < pure_mape,
            "hybrid {hybrid_mape} vs pure {pure_mape}"
        );
    }

    #[test]
    fn augment_appends_am_column() {
        let data = synthetic();
        let h = HybridModel::new(
            Box::new(ConstantModel(2.0)),
            extra_trees(0),
            HybridConfig::default(),
        );
        let aug = h.augment(&data);
        assert_eq!(aug.n_features(), 3);
        assert_eq!(aug.feature_names()[2], AM_FEATURE);
        assert_eq!(aug.row(5)[2], 2.0);
    }

    #[test]
    fn log_feature_transforms_column() {
        let data = synthetic();
        let h = HybridModel::new(
            Box::new(ConstantModel(std::f64::consts::E)),
            extra_trees(0),
            HybridConfig {
                log_feature: true,
                ..HybridConfig::default()
            },
        );
        let aug = h.augment(&data);
        assert!((aug.row(0)[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_mixes_predictions() {
        let data = synthetic();
        // AM constant 100; stacked model fits truth well. With weight 0 the
        // hybrid must return the AM exactly.
        let mut h = HybridModel::new(
            Box::new(ConstantModel(100.0)),
            extra_trees(3),
            HybridConfig {
                aggregate: true,
                stacked_weight: 0.0,
                log_feature: false,
            },
        );
        h.fit(&data).unwrap();
        assert_eq!(h.predict_row(data.row(0)), 100.0);

        let mut h = HybridModel::new(
            Box::new(ConstantModel(100.0)),
            extra_trees(3),
            HybridConfig {
                aggregate: true,
                stacked_weight: 1.0,
                log_feature: false,
            },
        );
        h.fit(&data).unwrap();
        // weight 1 → pure stacked prediction (close to truth, not 100)
        let p = h.predict_row(data.row(0));
        assert!((p - data.response()[0]).abs() < 20.0);
    }

    #[test]
    fn invalid_weight_rejected() {
        let data = synthetic();
        let mut h = HybridModel::new(
            Box::new(ConstantModel(1.0)),
            extra_trees(0),
            HybridConfig {
                aggregate: true,
                stacked_weight: 1.5,
                log_feature: false,
            },
        );
        assert!(matches!(h.fit(&data), Err(FitError::Invalid(_))));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn unfitted_panics() {
        let h = HybridModel::new(
            Box::new(ConstantModel(1.0)),
            extra_trees(0),
            HybridConfig::default(),
        );
        h.predict_row(&[1.0, 2.0]);
    }

    #[test]
    fn from_fitted_parts_matches_original() {
        let data = synthetic();
        let config = HybridConfig::with_aggregation();
        let mut original = HybridModel::new(Box::new(RoughModel), extra_trees(5), config);
        original.fit(&data).unwrap();

        // Refit an identical inner model on the augmented dataset, then
        // reassemble without calling `fit` on the hybrid.
        let mut ml = extra_trees(5);
        ml.fit(&original.augment(&data)).unwrap();
        let rebuilt = HybridModel::from_fitted_parts(Box::new(RoughModel), ml, config);
        for i in 0..data.len() {
            assert_eq!(
                original.predict_row(data.row(i)),
                rebuilt.predict_row(data.row(i))
            );
        }
    }

    #[test]
    fn config_stacked_feature_matches_model() {
        let log = HybridConfig {
            log_feature: true,
            ..HybridConfig::default()
        };
        assert_eq!(log.stacked_feature(std::f64::consts::E), 1.0);
        assert_eq!(log.stacked_feature(-4.0), f64::MIN_POSITIVE.ln());
        let raw = HybridConfig::default();
        assert_eq!(raw.stacked_feature(3.25), 3.25);
    }

    #[test]
    fn hybrid_config_serde_round_trip() {
        let cfg = HybridConfig {
            aggregate: true,
            stacked_weight: 0.25,
            log_feature: true,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: HybridConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn uninformative_am_does_not_destroy_model() {
        // Stacking a constant feature should leave tree performance roughly
        // unchanged (trees simply never split on it).
        let data = synthetic();
        let (train, test) = train_test_split_fraction(&data, 0.3, 4);
        let mut pure = extra_trees(7);
        pure.fit(&train).unwrap();
        let pure_mape = mape(test.response(), &pure.predict(&test)).unwrap();
        let mut h = HybridModel::new(
            Box::new(ConstantModel(42.0)),
            extra_trees(7),
            HybridConfig::default(),
        );
        h.fit(&train).unwrap();
        let h_mape = mape(test.response(), &h.predict(&test)).unwrap();
        assert!(
            h_mape < pure_mape * 1.5 + 2.0,
            "constant AM hurt badly: {h_mape} vs {pure_mape}"
        );
    }
}
