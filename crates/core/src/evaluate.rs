//! The §VII experiment protocol: for each training-window size, uniformly
//! sample a training set, fit a model, score MAPE on the held-out
//! remainder, and repeat over independent trials (the paper's figures show
//! the score distribution per window size).

use crate::workload::Workload;
use lam_data::{Dataset, Summary};
use lam_ml::metrics::mape;
use lam_ml::model::Regressor;
use lam_ml::rng::derive_seeds;
use lam_ml::sampling::train_test_split_fraction;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Protocol parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// Training-window sizes as fractions of the full dataset (the paper's
    /// x-axes, e.g. `[0.01, 0.02, 0.04]`).
    pub train_fractions: Vec<f64>,
    /// Independent resampling trials per window size.
    pub trials: usize,
    /// Base seed; trial `i` of fraction `j` gets an independent derived
    /// seed.
    pub seed: u64,
}

impl EvaluationConfig {
    /// Standard protocol: given fractions, 10 trials.
    pub fn new(train_fractions: Vec<f64>, trials: usize, seed: u64) -> Self {
        Self {
            train_fractions,
            trials,
            seed,
        }
    }
}

/// One (window size, trial) outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Training fraction used.
    pub fraction: f64,
    /// Trial index.
    pub trial: usize,
    /// Training rows.
    pub train_size: usize,
    /// MAPE (%) on the held-out remainder.
    pub mape: f64,
}

/// Aggregated outcomes for one window size (one x position of a paper
/// figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Training fraction.
    pub fraction: f64,
    /// Per-trial MAPE scores.
    pub scores: Vec<f64>,
    /// Summary statistics of `scores`.
    pub summary: Summary,
}

impl SeriesPoint {
    fn from_scores(fraction: f64, scores: Vec<f64>) -> Self {
        let summary = Summary::of(&scores).expect("at least one trial");
        Self {
            fraction,
            scores,
            summary,
        }
    }
}

/// Evaluate a model family over the protocol. `factory(seed)` must return
/// a fresh unfitted model for each trial; trials resample the training
/// window with independent seeds.
///
/// All `(fraction, trial)` cells run in parallel over the available cores
/// (each cell fits its own model on its own resample). Seeds are derived
/// up front from `config.seed`, so results are identical to a sequential
/// run of the same configuration.
///
/// Returns one [`SeriesPoint`] per training fraction (in input order).
pub fn evaluate_model<F>(data: &Dataset, config: &EvaluationConfig, factory: F) -> Vec<SeriesPoint>
where
    F: Fn(u64) -> Box<dyn Regressor> + Sync,
{
    assert!(config.trials >= 1, "need at least one trial");
    assert!(
        !config.train_fractions.is_empty(),
        "need at least one training fraction"
    );
    let all_seeds = derive_seeds(config.seed, config.trials * config.train_fractions.len());
    let cells: Vec<(usize, usize)> = (0..config.train_fractions.len())
        .flat_map(|fi| (0..config.trials).map(move |trial| (fi, trial)))
        .collect();
    let scores: Vec<f64> = cells
        .par_iter()
        .map(|&(fi, trial)| {
            let fraction = config.train_fractions[fi];
            let seed = all_seeds[fi * config.trials + trial];
            let (train, test) = train_test_split_fraction(data, fraction, seed);
            let mut model = factory(seed);
            model.fit(&train).expect("training data validated upstream");
            let preds = model.predict(&test);
            mape(test.response(), &preds).expect("positive responses")
        })
        .collect();
    config
        .train_fractions
        .iter()
        .enumerate()
        .map(|(fi, &fraction)| {
            let cell_scores = scores[fi * config.trials..(fi + 1) * config.trials].to_vec();
            SeriesPoint::from_scores(fraction, cell_scores)
        })
        .collect()
}

/// [`evaluate_model`] over a [`Workload`]: generates the scenario dataset
/// and runs the protocol on it.
pub fn evaluate_workload<W, F>(
    workload: &W,
    config: &EvaluationConfig,
    factory: F,
) -> Vec<SeriesPoint>
where
    W: Workload,
    F: Fn(u64) -> Box<dyn Regressor> + Sync,
{
    evaluate_model(&workload.generate_dataset(), config, factory)
}

/// All trial outcomes (flat), for detailed logging.
pub fn evaluate_model_trials<F>(
    data: &Dataset,
    config: &EvaluationConfig,
    factory: F,
) -> Vec<TrialOutcome>
where
    F: Fn(u64) -> Box<dyn Regressor> + Sync,
{
    let series = evaluate_model(data, config, factory);
    let mut out = Vec::new();
    for p in series {
        let n = data.len();
        for (trial, &score) in p.scores.iter().enumerate() {
            let train_size = (((n as f64) * p.fraction).round() as usize).clamp(1, n - 1);
            out.push(TrialOutcome {
                fraction: p.fraction,
                trial,
                train_size,
                mape: score,
            });
        }
    }
    out
}

/// MAPE of an analytical model alone on a full dataset (the paper quotes
/// these as the untuned-model baselines: 42 % and 84.5 %).
pub fn analytical_mape(data: &Dataset, am: &dyn lam_analytical::traits::AnalyticalModel) -> f64 {
    let preds: Vec<f64> = (0..data.len()).map(|i| am.predict(data.row(i))).collect();
    mape(data.response(), &preds).expect("positive responses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_analytical::traits::ConstantModel;
    use lam_ml::forest::ExtraTreesRegressor;
    use lam_ml::tree::TreeParams;

    fn dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for a in 0..20 {
            for b in 0..20 {
                rows.push(vec![a as f64, b as f64]);
                ys.push(1.0 + a as f64 * 2.0 + b as f64);
            }
        }
        Dataset::from_rows(vec!["a".into(), "b".into()], &rows, ys).unwrap()
    }

    fn et_factory(seed: u64) -> Box<dyn Regressor> {
        Box::new(ExtraTreesRegressor::with_params(
            20,
            TreeParams::default(),
            seed,
        ))
    }

    #[test]
    fn series_structure() {
        let d = dataset();
        let cfg = EvaluationConfig::new(vec![0.1, 0.3], 4, 1);
        let series = evaluate_model(&d, &cfg, et_factory);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].scores.len(), 4);
        assert!(series.iter().all(|p| p.scores.iter().all(|&s| s >= 0.0)));
    }

    #[test]
    fn more_data_less_error() {
        let d = dataset();
        let cfg = EvaluationConfig::new(vec![0.02, 0.5], 6, 3);
        let series = evaluate_model(&d, &cfg, et_factory);
        assert!(
            series[1].summary.mean < series[0].summary.mean,
            "2%: {} vs 50%: {}",
            series[0].summary.mean,
            series[1].summary.mean
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let cfg = EvaluationConfig::new(vec![0.1], 3, 9);
        let a = evaluate_model(&d, &cfg, et_factory);
        let b = evaluate_model(&d, &cfg, et_factory);
        assert_eq!(a[0].scores, b[0].scores);
    }

    #[test]
    fn trial_outcomes_flatten() {
        let d = dataset();
        let cfg = EvaluationConfig::new(vec![0.1, 0.2], 3, 2);
        let trials = evaluate_model_trials(&d, &cfg, et_factory);
        assert_eq!(trials.len(), 6);
        assert!(trials.iter().all(|t| t.train_size >= 1));
    }

    #[test]
    fn analytical_mape_computes() {
        let d = dataset();
        let mean_y = d.response().iter().sum::<f64>() / d.len() as f64;
        let m = analytical_mape(&d, &ConstantModel(mean_y));
        assert!(m > 0.0 && m < 200.0);
        // Perfect "analytical model": zero error.
        struct Exact;
        impl lam_analytical::traits::AnalyticalModel for Exact {
            fn predict(&self, x: &[f64]) -> f64 {
                1.0 + x[0] * 2.0 + x[1]
            }
        }
        assert!(analytical_mape(&d, &Exact) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let d = dataset();
        let cfg = EvaluationConfig::new(vec![0.1], 0, 0);
        evaluate_model(&d, &cfg, et_factory);
    }
}
