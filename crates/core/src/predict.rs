//! The [`PredictRow`] surface: a minimal, object-safe, read-only view of a
//! fitted model.
//!
//! [`Regressor`] couples prediction with fitting (`fit` takes `&mut self`),
//! which is the right shape for training pipelines but the wrong one for a
//! serving layer that shares one immutable fitted model across worker
//! threads. `PredictRow` strips the contract down to "map a feature row to
//! a prediction" so a server can hold `Arc<dyn PredictRow>` and never see a
//! mutable method. Every regressor gets the trait for free via the blanket
//! impl.

use lam_ml::compile::CompiledTrees;
use lam_ml::model::Regressor;

/// Read-only prediction surface of a fitted model.
///
/// Object-safe and `Send + Sync`, so trained models can be shared behind
/// `Arc<dyn PredictRow>` across serving threads.
pub trait PredictRow: Send + Sync {
    /// Predict the response for a single feature row.
    fn predict_row(&self, x: &[f64]) -> f64;

    /// Predict a batch of rows, preserving input order.
    fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Predict a batch of borrowed rows, preserving input order.
    ///
    /// The batch executor gathers cache-miss rows by reference and hands
    /// them to the model in one call through this method, so models with
    /// a real batch fast path (the arena-compiled trees' blocked
    /// evaluation) receive whole miss sets instead of row-at-a-time
    /// callbacks — no cloning in between.
    fn predict_rows_by_ref(&self, rows: &[&[f64]]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }
}

impl<T: Regressor + ?Sized> PredictRow for T {
    fn predict_row(&self, x: &[f64]) -> f64 {
        Regressor::predict_row(self, x)
    }
}

/// An arena-compiled tree ensemble bound into the [`PredictRow`] surface.
///
/// A newtype rather than a direct impl because the blanket
/// `impl<T: Regressor> PredictRow for T` would overlap a bare
/// `impl PredictRow for CompiledTrees` under coherence rules. Batch calls
/// route through the arena's blocked, branchless evaluation (see
/// [`lam_ml::compile`]); predictions are bit-identical to the interpreted
/// model the arena was lowered from.
pub struct Compiled(pub CompiledTrees);

impl From<CompiledTrees> for Compiled {
    fn from(arena: CompiledTrees) -> Self {
        Compiled(arena)
    }
}

impl PredictRow for Compiled {
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.0.predict_row(x)
    }

    fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.0.predict_rows(rows)
    }

    fn predict_rows_by_ref(&self, rows: &[&[f64]]) -> Vec<f64> {
        self.0.predict_rows_by_ref(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_ml::model::MeanRegressor;
    use std::sync::Arc;

    #[test]
    fn regressors_predict_through_the_trait_object() {
        let d = lam_data::Dataset::new(vec!["x".into()], vec![1.0, 2.0], vec![4.0, 6.0]).unwrap();
        let mut m = MeanRegressor::new();
        Regressor::fit(&mut m, &d).unwrap();
        let shared: Arc<dyn PredictRow> = Arc::new(m);
        assert_eq!(shared.predict_row(&[0.0]), 5.0);
        assert_eq!(shared.predict_rows(&[vec![0.0], vec![9.0]]), vec![5.0, 5.0]);
    }

    #[test]
    fn boxed_dyn_regressor_is_predict_row() {
        let d = lam_data::Dataset::new(vec!["x".into()], vec![1.0], vec![3.0]).unwrap();
        let mut boxed: Box<dyn Regressor> = Box::new(MeanRegressor::new());
        boxed.fit(&d).unwrap();
        // `Box<dyn Regressor>` satisfies the blanket impl.
        let view: &dyn PredictRow = &boxed;
        assert_eq!(view.predict_row(&[0.0]), 3.0);
    }
}
