//! The [`PredictRow`] surface: a minimal, object-safe, read-only view of a
//! fitted model.
//!
//! [`Regressor`] couples prediction with fitting (`fit` takes `&mut self`),
//! which is the right shape for training pipelines but the wrong one for a
//! serving layer that shares one immutable fitted model across worker
//! threads. `PredictRow` strips the contract down to "map a feature row to
//! a prediction" so a server can hold `Arc<dyn PredictRow>` and never see a
//! mutable method. Every regressor gets the trait for free via the blanket
//! impl.

use lam_ml::model::Regressor;

/// Read-only prediction surface of a fitted model.
///
/// Object-safe and `Send + Sync`, so trained models can be shared behind
/// `Arc<dyn PredictRow>` across serving threads.
pub trait PredictRow: Send + Sync {
    /// Predict the response for a single feature row.
    fn predict_row(&self, x: &[f64]) -> f64;

    /// Predict a batch of rows, preserving input order.
    fn predict_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }
}

impl<T: Regressor + ?Sized> PredictRow for T {
    fn predict_row(&self, x: &[f64]) -> f64 {
        Regressor::predict_row(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_ml::model::MeanRegressor;
    use std::sync::Arc;

    #[test]
    fn regressors_predict_through_the_trait_object() {
        let d = lam_data::Dataset::new(vec!["x".into()], vec![1.0, 2.0], vec![4.0, 6.0]).unwrap();
        let mut m = MeanRegressor::new();
        Regressor::fit(&mut m, &d).unwrap();
        let shared: Arc<dyn PredictRow> = Arc::new(m);
        assert_eq!(shared.predict_row(&[0.0]), 5.0);
        assert_eq!(shared.predict_rows(&[vec![0.0], vec![9.0]]), vec![5.0, 5.0]);
    }

    #[test]
    fn boxed_dyn_regressor_is_predict_row() {
        let d = lam_data::Dataset::new(vec!["x".into()], vec![1.0], vec![3.0]).unwrap();
        let mut boxed: Box<dyn Regressor> = Box::new(MeanRegressor::new());
        boxed.fit(&d).unwrap();
        // `Box<dyn Regressor>` satisfies the blanket impl.
        let view: &dyn PredictRow = &boxed;
        assert_eq!(view.predict_row(&[0.0]), 3.0);
    }
}
