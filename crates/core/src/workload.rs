//! The [`Workload`] abstraction: everything the hybrid-modeling pipeline
//! needs to know about one application scenario.
//!
//! The paper evaluates the same protocol on two applications (stencil,
//! FMM) that each provide the same four ingredients: an enumerable
//! configuration space, a feature projection, a ground-truth oracle, and
//! an untuned analytical model. This trait captures that contract once so
//! dataset generation, evaluation, and every figure binary are generic —
//! adding a third scenario is one trait impl, not another copy of the
//! pipeline. The workspace's SpMV scenario (`lam-spmv`, a workload the
//! paper never measured) is that claim made good: its `SpmvWorkload` impl
//! plus `WorkloadId` registration in `lam-serve` carry it through the
//! whole pipeline, training to HTTP serving.
//!
//! [`Workload::generate_dataset`] has a rayon-parallel default
//! implementation; because each oracle evaluation is a pure function of
//! its configuration and rows are stitched back in space order, it is
//! byte-identical to the sequential reference
//! [`Workload::generate_dataset_seq`] (asserted by
//! [`conformance::assert_parallel_matches_sequential`]).

use crate::hybrid::HybridConfig;
use lam_analytical::traits::AnalyticalModel;
use lam_data::Dataset;
use rayon::prelude::*;

/// One application scenario of the hybrid-modeling study.
pub trait Workload: Send + Sync {
    /// A point of the tuning-parameter space.
    type Config: Clone + Send + Sync;

    /// Short dataset label for reports (e.g. `stencil-grid`).
    fn name(&self) -> &str;

    /// Feature-column names, matching [`Workload::features`] order.
    fn feature_names(&self) -> Vec<String>;

    /// The enumerable configuration space, in canonical order.
    fn param_space(&self) -> &[Self::Config];

    /// Project a configuration onto the modeling feature vector.
    fn features(&self, cfg: &Self::Config) -> Vec<f64>;

    /// Ground-truth ("measured") execution time in seconds — the oracle.
    fn execution_time(&self, cfg: &Self::Config) -> f64;

    /// A scalar problem-size proxy (grid points, particle count, …);
    /// noise-free oracle time must grow with it on average.
    fn problem_size(&self, cfg: &Self::Config) -> f64;

    /// The paper's untuned analytical model for this scenario's feature
    /// layout (a fresh boxed instance; cheap to construct).
    fn analytical_model(&self) -> Box<dyn AnalyticalModel>;

    /// The hybrid configuration the experiments pair with this scenario.
    /// Scenarios whose responses span decades (FMM, SpMV) override this
    /// to stack `ln(am)` instead of the raw analytical prediction.
    fn hybrid_config(&self) -> HybridConfig {
        HybridConfig::default()
    }

    /// Generate the scenario dataset: one row per configuration, features
    /// per [`Workload::features`], response from the oracle. Rows are
    /// computed in parallel and kept in space order, so the result is
    /// byte-identical to [`Workload::generate_dataset_seq`].
    fn generate_dataset(&self) -> Dataset {
        let rows: Vec<(Vec<f64>, f64)> = self
            .param_space()
            .par_iter()
            .map(|cfg| (self.features(cfg), self.execution_time(cfg)))
            .collect();
        collect_rows(self.feature_names(), rows)
    }

    /// Sequential reference implementation of dataset generation.
    fn generate_dataset_seq(&self) -> Dataset {
        let rows: Vec<(Vec<f64>, f64)> = self
            .param_space()
            .iter()
            .map(|cfg| (self.features(cfg), self.execution_time(cfg)))
            .collect();
        collect_rows(self.feature_names(), rows)
    }
}

fn collect_rows(names: Vec<String>, rows: Vec<(Vec<f64>, f64)>) -> Dataset {
    let mut data = Dataset::empty(names);
    for (features, y) in &rows {
        data.push(features, *y);
    }
    data
}

pub mod conformance {
    //! Shared conformance suite every [`Workload`] implementation must
    //! pass. Application crates call these from their integration tests;
    //! keeping the assertions here means a new scenario inherits the full
    //! contract check by writing one test.

    use super::Workload;

    /// Dataset shape matches the declared space: one row per
    /// configuration, one column per feature name, all values finite,
    /// all responses positive.
    pub fn assert_dataset_matches_space<W: Workload>(workload: &W) {
        let data = workload.generate_dataset();
        assert_eq!(
            data.len(),
            workload.param_space().len(),
            "{}: dataset rows != space cardinality",
            workload.name()
        );
        assert_eq!(
            data.n_features(),
            workload.feature_names().len(),
            "{}: dataset columns != feature names",
            workload.name()
        );
        data.validate_finite()
            .unwrap_or_else(|e| panic!("{}: non-finite dataset: {e}", workload.name()));
        assert!(
            data.response().iter().all(|&y| y > 0.0),
            "{}: oracle produced a non-positive time",
            workload.name()
        );
    }

    /// Two independently built workloads with the same seed generate
    /// identical datasets.
    pub fn assert_deterministic<W: Workload, F: Fn() -> W>(make: F) {
        let a = make().generate_dataset();
        let b = make().generate_dataset();
        assert_eq!(a, b, "workload dataset not deterministic under fixed seed");
    }

    /// The rayon-parallel dataset path is byte-identical to the
    /// sequential reference.
    pub fn assert_parallel_matches_sequential<W: Workload>(workload: &W) {
        let par = workload.generate_dataset();
        let seq = workload.generate_dataset_seq();
        assert_eq!(par.feature_names(), seq.feature_names());
        assert_eq!(par.len(), seq.len());
        for i in 0..par.len() {
            for (a, b) in par.row(i).iter().zip(seq.row(i)) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: row {i} features differ",
                    workload.name()
                );
            }
            assert_eq!(
                par.response()[i].to_bits(),
                seq.response()[i].to_bits(),
                "{}: row {i} response differs",
                workload.name()
            );
        }
    }

    /// On a noise-free oracle, execution time grows with problem size on
    /// average: the mean time over the configurations at the *largest*
    /// distinct problem size must exceed the mean at the *smallest*.
    /// Comparing whole size groups keeps the check fair on factorial
    /// spaces — each group holds the same mix of the other tuning
    /// dimensions, so they average out.
    pub fn assert_monotone_in_problem_size<W: Workload>(noise_free: &W) {
        let configs = noise_free.param_space();
        let sizes: Vec<f64> = configs.iter().map(|c| noise_free.problem_size(c)).collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            min < max,
            "{}: space has a single problem size; monotonicity check is vacuous",
            noise_free.name()
        );
        let mean_time_at = |size: f64| -> f64 {
            let group: Vec<f64> = configs
                .iter()
                .zip(&sizes)
                .filter(|(_, &s)| s == size)
                .map(|(c, _)| noise_free.execution_time(c))
                .collect();
            group.iter().sum::<f64>() / group.len() as f64
        };
        let small = mean_time_at(min);
        let large = mean_time_at(max);
        assert!(
            large > small,
            "{}: mean noise-free time not monotone in problem size (small {small}, large {large})",
            noise_free.name()
        );
    }

    /// The full conformance suite: dataset/space agreement, seeded
    /// determinism, parallel/sequential identity, and size monotonicity.
    ///
    /// `make` must build the same seeded workload on every call;
    /// `noise_free` is the same scenario with measurement noise disabled.
    pub fn assert_workload_conformance<W: Workload, F: Fn() -> W>(make: F, noise_free: &W) {
        let workload = make();
        assert_dataset_matches_space(&workload);
        assert_parallel_matches_sequential(&workload);
        assert_deterministic(make);
        assert_monotone_in_problem_size(noise_free);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_analytical::traits::ConstantModel;

    /// A tiny synthetic workload exercising the default methods.
    struct Toy {
        configs: Vec<u64>,
        noise: f64,
    }

    impl Toy {
        fn new(noise: f64) -> Self {
            Self {
                configs: (1..=30).collect(),
                noise,
            }
        }
    }

    impl Workload for Toy {
        type Config = u64;
        fn name(&self) -> &str {
            "toy"
        }
        fn feature_names(&self) -> Vec<String> {
            vec!["n".to_string()]
        }
        fn param_space(&self) -> &[u64] {
            &self.configs
        }
        fn features(&self, cfg: &u64) -> Vec<f64> {
            vec![*cfg as f64]
        }
        fn execution_time(&self, cfg: &u64) -> f64 {
            // Deterministic pseudo-noise keyed on the config.
            let jitter =
                1.0 + self.noise * (((cfg.wrapping_mul(2654435761) % 97) as f64 / 97.0) - 0.5);
            *cfg as f64 * jitter
        }
        fn problem_size(&self, cfg: &u64) -> f64 {
            *cfg as f64
        }
        fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
            Box::new(ConstantModel(1.0))
        }
    }

    #[test]
    fn default_generate_dataset_matches_space_order() {
        let w = Toy::new(0.1);
        let d = w.generate_dataset();
        assert_eq!(d.len(), 30);
        assert_eq!(d.row(0), &[1.0]);
        assert_eq!(d.row(29), &[30.0]);
    }

    #[test]
    fn toy_passes_conformance() {
        conformance::assert_workload_conformance(|| Toy::new(0.1), &Toy::new(0.0));
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn conformance_catches_inverted_oracle() {
        struct Inverted(Toy);
        impl Workload for Inverted {
            type Config = u64;
            fn name(&self) -> &str {
                "inverted"
            }
            fn feature_names(&self) -> Vec<String> {
                self.0.feature_names()
            }
            fn param_space(&self) -> &[u64] {
                self.0.param_space()
            }
            fn features(&self, cfg: &u64) -> Vec<f64> {
                self.0.features(cfg)
            }
            fn execution_time(&self, cfg: &u64) -> f64 {
                1.0 / (*cfg as f64)
            }
            fn problem_size(&self, cfg: &u64) -> f64 {
                *cfg as f64
            }
            fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
                self.0.analytical_model()
            }
        }
        conformance::assert_monotone_in_problem_size(&Inverted(Toy::new(0.0)));
    }
}
