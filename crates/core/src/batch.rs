//! Batched inference: a sharded prediction cache plus an order-preserving
//! micro-batch executor over any [`PredictRow`] model.
//!
//! Configuration spaces are finite, so both serving traffic and
//! model-guided search revisit the same feature vectors constantly; a
//! cache turns a tree-walk (or a k-NN scan) into one hash lookup. The
//! cache is sharded — each shard is its own `Mutex<HashMap>` picked by
//! key hash — so concurrent threads rarely contend on the same lock.
//!
//! The executor splits a request's rows into fixed-size micro-batches and
//! fans them across cores with the vendored rayon, whose parallel map is
//! order preserving (results are stitched back in input order), so
//! response position `i` always answers request row `i`.
//!
//! This module lives in `lam-core` (not the serving crate) because it has
//! two independent consumers: `lam-serve`'s `/predict` path and
//! `lam-tune`'s model-guided search strategies, which score whole
//! configuration spaces through the same executor.

use crate::predict::PredictRow;
use lam_obs::{Counter, Histogram};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cache-key for one feature row: the exact bit patterns of its floats
/// (no epsilon grouping — only a bit-identical row is "the same query").
/// Public because it *is* the workspace's definition of "the same
/// configuration row" — the tuner's parameter lattice indexes rows with
/// the identical convention.
pub fn row_key(row: &[f64]) -> Box<[u64]> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// FNV-1a over the key bits, for shard selection.
fn key_hash(key: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in key {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Hit/miss counters of a [`PredictionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the model.
    pub misses: u64,
}

/// Default total entry cap of a [`PredictionCache`]. The configuration
/// spaces this workspace enumerates stay in the thousands; the cap only
/// exists so arbitrary client-supplied rows (fuzzing, jittered floats)
/// cannot grow a long-running server without bound.
pub const DEFAULT_MAX_ENTRIES: usize = 1 << 20;

/// A sharded feature-vector → prediction cache, capped at a fixed entry
/// budget (inserts beyond a full shard are dropped; predictions are then
/// simply recomputed, so the cap degrades throughput, never correctness).
pub struct PredictionCache {
    shards: Vec<Mutex<HashMap<Box<[u64]>, f64>>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PredictionCache {
    /// Cache with `shards` independent lock domains (clamped to ≥ 1) and
    /// the [`DEFAULT_MAX_ENTRIES`] budget.
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, DEFAULT_MAX_ENTRIES)
    }

    /// Cache with an explicit total entry budget, split across shards.
    pub fn with_capacity(shards: usize, max_entries: usize) -> Self {
        let shards = shards.max(1);
        Self {
            per_shard_cap: max_entries.div_ceil(shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u64]) -> &Mutex<HashMap<Box<[u64]>, f64>> {
        &self.shards[(key_hash(key) % self.shards.len() as u64) as usize]
    }

    /// Cached prediction for `row`, if present. Counts a hit or miss.
    pub fn get(&self, row: &[f64]) -> Option<f64> {
        let key = row_key(row);
        let found = self
            .shard(&key)
            .lock()
            .expect("cache poisoned")
            .get(&key)
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Record a computed prediction. A full shard drops the insert
    /// (bounded memory beats caching one more row).
    pub fn insert(&self, row: &[f64], prediction: f64) {
        let key = row_key(row);
        let mut shard = self.shard(&key).lock().expect("cache poisoned");
        if shard.len() < self.per_shard_cap || shard.contains_key(&key) {
            shard.insert(key, prediction);
        }
    }

    /// Number of cached feature vectors.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of one batched prediction call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One prediction per request row, in request order.
    pub predictions: Vec<f64>,
    /// How many rows were answered from the cache.
    pub cache_hits: u64,
}

/// Pre-resolved global-metrics handles of one [`BatchEngine`], interned
/// once at engine construction (label lookup never runs on the predict
/// path). The `scope` label tells engines apart: serving engines use
/// `workload/kind`, shared/anonymous engines use `"shared"`.
struct EngineMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    batch_rows: Arc<Histogram>,
    queue_wait_ns: Arc<Histogram>,
    lookup_ns: Arc<Histogram>,
    predict_ns: Arc<Histogram>,
}

/// Timings and tallies of one executed micro-batch. Measured inside the
/// (possibly parallel) execution but recorded into the global registry
/// only after the parallel section: concurrent `fetch_add`s from rayon
/// workers onto the same counters bounce their cache lines, and that
/// contention would be charged to the very request being measured.
struct MicroBatchObs {
    queue_wait_ns: u64,
    rows: u64,
    lookup_ns: Option<u64>,
    predict_ns: Option<u64>,
    hits: u64,
    misses: u64,
}

/// One micro-batch's output: predictions (request order), cache hits,
/// the indexes of rows that missed, and the observability sample to
/// record once outside any parallel section.
type MicroBatchParts = (Vec<f64>, u64, Vec<usize>, Option<MicroBatchObs>);

impl EngineMetrics {
    /// Flush one micro-batch's measurements (serial, uncontended).
    fn record(&self, obs: &MicroBatchObs) {
        self.queue_wait_ns.record(obs.queue_wait_ns);
        self.batch_rows.record(obs.rows);
        self.hits.add(obs.hits);
        self.misses.add(obs.misses);
        if let Some(ns) = obs.lookup_ns {
            self.lookup_ns.record(ns);
        }
        if let Some(ns) = obs.predict_ns {
            self.predict_ns.record(ns);
        }
    }

    fn for_scope(scope: &str) -> Self {
        let reg = lam_obs::global();
        let labels = [("scope", scope)];
        Self {
            hits: reg.counter(
                "lam_cache_hits_total",
                "Prediction-cache lookups answered from the cache.",
                &labels,
            ),
            misses: reg.counter(
                "lam_cache_misses_total",
                "Prediction-cache lookups that fell through to the model.",
                &labels,
            ),
            batch_rows: reg.histogram("lam_batch_rows", "Rows per executed micro-batch.", &labels),
            queue_wait_ns: reg.histogram(
                "lam_batch_queue_wait_ns",
                "Delay between request arrival at the engine and micro-batch execution start.",
                &labels,
            ),
            lookup_ns: reg.histogram(
                "lam_batch_phase_ns",
                "Micro-batch phase duration, nanoseconds.",
                &[("scope", scope), ("phase", "cache-lookup")],
            ),
            predict_ns: reg.histogram(
                "lam_batch_phase_ns",
                "Micro-batch phase duration, nanoseconds.",
                &[("scope", scope), ("phase", "predict")],
            ),
        }
    }
}

/// Order-preserving micro-batch executor over a [`PredictionCache`].
pub struct BatchEngine {
    cache: PredictionCache,
    micro_batch: usize,
    metrics: EngineMetrics,
}

/// Micro-batch size balancing per-batch overhead against load balance;
/// also the default shard count.
pub const DEFAULT_MICRO_BATCH: usize = 64;

impl Default for BatchEngine {
    fn default() -> Self {
        Self::new(DEFAULT_MICRO_BATCH, DEFAULT_MICRO_BATCH)
    }
}

impl BatchEngine {
    /// Engine with explicit micro-batch size and cache shard count,
    /// reporting metrics under the anonymous `scope="shared"` label.
    pub fn new(micro_batch: usize, shards: usize) -> Self {
        Self::scoped(micro_batch, shards, "shared")
    }

    /// Engine whose metrics carry `scope` as their label (serving engines
    /// pass `workload/kind` so cache and batch telemetry is per-model).
    /// Label interning happens here, once — never on the predict path.
    pub fn scoped(micro_batch: usize, shards: usize, scope: &str) -> Self {
        Self {
            cache: PredictionCache::new(shards),
            micro_batch: micro_batch.max(1),
            metrics: EngineMetrics::for_scope(scope),
        }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Predict one micro-batch through the cache, counting hits locally
    /// (not from the global counters, which concurrent requests advance
    /// too).
    ///
    /// Misses are gathered by reference and handed to the model in **one**
    /// [`PredictRow::predict_rows_by_ref`] call, so models with a batch
    /// fast path (arena-compiled trees evaluate misses block-wise) see the
    /// whole miss set instead of a per-row callback. Duplicate rows within
    /// one micro-batch are computed together in that call; they produce
    /// identical values, so the cache still converges to one entry.
    /// `enqueued` is the engine-entry instant when observability is on
    /// (`None` when recording is disabled — then no clocks are read and
    /// no metrics are touched, the baseline the overhead bench measures).
    /// The returned [`MicroBatchObs`] is the caller's to record, *after*
    /// leaving any parallel section.
    fn predict_micro_batch(
        &self,
        model: &dyn PredictRow,
        batch: &[Vec<f64>],
        enqueued: Option<Instant>,
    ) -> MicroBatchParts {
        let started = enqueued.map(|t| {
            let now = Instant::now();
            ((now - t).as_nanos() as u64, now)
        });
        let mut hits = 0u64;
        let mut predictions = vec![0.0f64; batch.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut miss_rows: Vec<&[f64]> = Vec::new();
        for (i, row) in batch.iter().enumerate() {
            match self.cache.get(row) {
                Some(y) => {
                    hits += 1;
                    predictions[i] = y;
                }
                None => {
                    miss_idx.push(i);
                    miss_rows.push(row);
                }
            }
        }
        let mut obs = started.map(|(queue_wait_ns, _)| MicroBatchObs {
            queue_wait_ns,
            rows: batch.len() as u64,
            lookup_ns: None,
            predict_ns: None,
            hits,
            misses: miss_rows.len() as u64,
        });
        if !miss_rows.is_empty() {
            // Phase timings are only taken on miss-bearing micro-batches,
            // where model compute dwarfs the clock reads. The all-hit fast
            // path pays a single `Instant::now` (the queue-wait read above)
            // — `Instant::now` costs ~44ns here, several times a counter
            // add, and would dominate the <2% overhead budget otherwise.
            // One `now` both closes the lookup phase and opens predict.
            let predict_start = started.map(|(_, start)| {
                let now = Instant::now();
                if let Some(obs) = obs.as_mut() {
                    obs.lookup_ns = Some((now - start).as_nanos() as u64);
                }
                now
            });
            let computed = model.predict_rows_by_ref(&miss_rows);
            for ((&i, row), y) in miss_idx.iter().zip(&miss_rows).zip(computed) {
                self.cache.insert(row, y);
                predictions[i] = y;
            }
            if let (Some(t), Some(obs)) = (predict_start, obs.as_mut()) {
                obs.predict_ns = Some(t.elapsed().as_nanos() as u64);
            }
        }
        (predictions, hits, miss_idx, obs)
    }

    /// Predict every row of the request through the cache, fanning
    /// micro-batches across cores. Response order matches request order.
    ///
    /// Requests that fit in one micro-batch skip the parallel executor
    /// entirely — its fixed entry cost would dominate a single cache
    /// lookup.
    pub fn predict(&self, model: &dyn PredictRow, rows: &[Vec<f64>]) -> BatchOutcome {
        // One flag read and (when on) one clock read per request; every
        // per-micro-batch record site keys off this `Option`.
        let enqueued = lam_obs::enabled().then(Instant::now);
        if rows.len() <= self.micro_batch {
            let (predictions, cache_hits, _, obs) = self.predict_micro_batch(model, rows, enqueued);
            if let Some(obs) = obs {
                self.metrics.record(&obs);
            }
            return BatchOutcome {
                predictions,
                cache_hits,
            };
        }
        let batches: Vec<&[Vec<f64>]> = rows.chunks(self.micro_batch).collect();
        let parts: Vec<MicroBatchParts> = batches
            .par_iter()
            .map(|batch| self.predict_micro_batch(model, batch, enqueued))
            .collect();
        for (_, _, _, obs) in &parts {
            if let Some(obs) = obs {
                self.metrics.record(obs);
            }
        }
        let cache_hits = parts.iter().map(|(_, h, _, _)| h).sum();
        let predictions: Vec<f64> = parts.into_iter().flat_map(|(p, _, _, _)| p).collect();
        BatchOutcome {
            predictions,
            cache_hits,
        }
    }

    /// Like [`BatchEngine::predict`], but also returns one cache-hit flag
    /// per row. The [`BatchScheduler`] uses this to split a coalesced
    /// cross-request batch back into exact per-request `cache_hits`
    /// tallies (a proportional split would misattribute hits whenever one
    /// request's rows are warm and another's are cold).
    ///
    /// Runs micro-batches sequentially: coalesced flushes are already the
    /// parallelism unit upstream (scheduler workers), so nesting a rayon
    /// fan-out here would only add entry cost.
    pub fn predict_masked(&self, model: &dyn PredictRow, rows: &[Vec<f64>]) -> MaskedOutcome {
        let enqueued = lam_obs::enabled().then(Instant::now);
        let mut predictions = Vec::with_capacity(rows.len());
        let mut hit_mask = vec![true; rows.len()];
        let mut cache_hits = 0u64;
        for (chunk_start, batch) in rows.chunks(self.micro_batch.max(1)).scan(0usize, |off, c| {
            let start = *off;
            *off += c.len();
            Some((start, c))
        }) {
            let (preds, hits, miss_idx, obs) = self.predict_micro_batch(model, batch, enqueued);
            if let Some(obs) = obs {
                self.metrics.record(&obs);
            }
            cache_hits += hits;
            for i in miss_idx {
                hit_mask[chunk_start + i] = false;
            }
            predictions.extend(preds);
        }
        MaskedOutcome {
            predictions,
            hit_mask,
            cache_hits,
        }
    }
}

/// A batched prediction outcome carrying one cache-hit flag per row; see
/// [`BatchEngine::predict_masked`].
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedOutcome {
    /// One prediction per request row, in request order.
    pub predictions: Vec<f64>,
    /// `hit_mask[i]` is `true` when row `i` was answered from the cache.
    pub hit_mask: Vec<bool>,
    /// Total rows answered from the cache (`hit_mask` trues).
    pub cache_hits: u64,
}

/// Something the [`BatchScheduler`] can execute a coalesced batch
/// against. The serving layer implements this for its loaded models
/// (routing through the model's own [`BatchEngine`] and compiled
/// predictor); tests implement it directly.
pub trait BatchTarget: Send + Sync {
    /// Predict every row, returning per-row cache-hit flags so the
    /// scheduler can split the outcome back per submission.
    fn run_batch(&self, rows: &[Vec<f64>]) -> MaskedOutcome;
}

/// Why a submission was refused; the serving layer turns this into a
/// `503` + `Retry-After` (load shedding), never a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The scheduler's queued-row budget is exhausted.
    QueueFull,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "batch queue full"),
            SubmitError::ShuttingDown => write!(f, "scheduler shutting down"),
        }
    }
}

/// Tuning knobs of a [`BatchScheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerOptions {
    /// Flush a lane once it holds at least this many rows.
    pub max_batch_rows: usize,
    /// Flush a lane this long after its first row arrived, even if it is
    /// not full — bounds the latency cost of waiting for co-batchable
    /// traffic.
    pub flush_deadline: Duration,
    /// Total rows allowed across all lanes; submissions beyond it are
    /// refused ([`SubmitError::QueueFull`]) so overload sheds instead of
    /// queueing without bound.
    pub max_queued_rows: usize,
    /// Executor threads draining ready lanes.
    pub workers: usize,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        Self {
            max_batch_rows: 256,
            flush_deadline: Duration::from_micros(200),
            max_queued_rows: 16 * 1024,
            workers: 2,
        }
    }
}

/// One queued submission: rows plus the completion that receives its
/// slice of the coalesced outcome.
struct LaneEntry {
    rows: Vec<Vec<f64>>,
    enqueued: Instant,
    complete: Box<dyn FnOnce(MaskedOutcome) + Send>,
}

/// All queued submissions against one target, coalesced into the next
/// flush.
struct Lane {
    target: Arc<dyn BatchTarget>,
    entries: Vec<LaneEntry>,
    rows: usize,
    opened: Instant,
}

struct SchedulerState {
    lanes: HashMap<usize, Lane>,
    queued_rows: usize,
    stopping: bool,
}

/// Pre-interned scheduler metrics: how well cross-request coalescing is
/// working. `lam_batch_occupancy` is the headline — its mean is the
/// number of independent submissions answered per executed batch (1.0
/// means no cross-request batching is forming at all).
struct SchedulerMetrics {
    occupancy: Arc<Histogram>,
    flush_rows: Arc<Histogram>,
    queue_wait_ns: Arc<Histogram>,
    shed: Arc<Counter>,
}

impl SchedulerMetrics {
    fn new() -> Self {
        let reg = lam_obs::global();
        let labels = [("scope", "sched")];
        Self {
            occupancy: reg.histogram(
                "lam_batch_occupancy",
                "Independent submissions coalesced into one executed batch.",
                &labels,
            ),
            flush_rows: reg.histogram(
                "lam_batch_flush_rows",
                "Rows per coalesced cross-request batch flush.",
                &labels,
            ),
            queue_wait_ns: reg.histogram(
                "lam_batch_queue_wait_ns",
                "Delay between request arrival at the engine and micro-batch execution start.",
                &labels,
            ),
            shed: reg.counter(
                "lam_requests_shed_total",
                "Requests refused to bound queueing, by shedding site.",
                &[("reason", "batch-queue")],
            ),
        }
    }
}

/// A cross-request micro-batching executor: concurrent submissions
/// against the same [`BatchTarget`] coalesce into one batched predict
/// call, so many small independent requests get ensemble-batch
/// throughput.
///
/// Lanes (one per target) flush when any of three conditions holds:
///
/// 1. **size** — the lane reached [`SchedulerOptions::max_batch_rows`];
/// 2. **deadline** — [`SchedulerOptions::flush_deadline`] elapsed since
///    the lane opened;
/// 3. **idle producers** — the producer hint (see
///    [`BatchScheduler::producer_hint`]) reports no request handler is
///    currently working toward a submission, so waiting longer cannot
///    grow the batch. This is what keeps low-concurrency traffic at
///    native latency: a lone closed-loop client never waits out the
///    deadline.
///
/// Backpressure is explicit: a submission that would exceed
/// [`SchedulerOptions::max_queued_rows`] is refused with
/// [`SubmitError::QueueFull`] and counted in `lam_requests_shed_total`,
/// and the caller sheds (HTTP 503). Queue-wait and batch-occupancy
/// histograms record what coalescing actually formed.
pub struct BatchScheduler {
    shared: Arc<SchedulerShared>,
    workers: Vec<JoinHandle<()>>,
}

struct SchedulerShared {
    state: Mutex<SchedulerState>,
    ready: Condvar,
    opts: SchedulerOptions,
    /// Request handlers mid-flight (parsed but not yet submitted); when
    /// zero, waiting on a deadline cannot gain occupancy.
    producers: AtomicUsize,
    metrics: SchedulerMetrics,
}

impl BatchScheduler {
    /// Start `opts.workers` executor threads.
    pub fn new(opts: SchedulerOptions) -> Self {
        let shared = Arc::new(SchedulerShared {
            state: Mutex::new(SchedulerState {
                lanes: HashMap::new(),
                queued_rows: 0,
                stopping: false,
            }),
            ready: Condvar::new(),
            opts: SchedulerOptions {
                max_batch_rows: opts.max_batch_rows.max(1),
                workers: opts.workers.max(1),
                ..opts
            },
            producers: AtomicUsize::new(0),
            metrics: SchedulerMetrics::new(),
        });
        let workers = (0..shared.opts.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// RAII producer-hint guard: hold one while handling a request that
    /// may submit, so the scheduler knows more rows may be coming and a
    /// short deadline wait can pay off. The guard is owned (`Arc`-backed)
    /// and `Send`, so it can ride along with a request across threads.
    pub fn producer_hint(&self) -> ProducerGuard {
        self.shared.producers.fetch_add(1, Ordering::SeqCst);
        ProducerGuard {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Reserve queue budget for an `n_rows` submission. The two-step
    /// reserve-then-[`SubmitPermit::submit`] shape lets a caller learn
    /// the shed decision *before* constructing its completion (an HTTP
    /// handler answers 503 with the response channel it would otherwise
    /// move into the closure). Refusal is the backpressure signal:
    /// beyond [`SchedulerOptions::max_queued_rows`] the caller sheds
    /// instead of queueing without bound.
    pub fn try_reserve(&self, n_rows: usize) -> Result<SubmitPermit, SubmitError> {
        let mut state = self.shared.state.lock().expect("scheduler poisoned");
        if state.stopping {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queued_rows + n_rows > self.shared.opts.max_queued_rows {
            self.shared.metrics.shed.inc();
            return Err(SubmitError::QueueFull);
        }
        state.queued_rows += n_rows;
        Ok(SubmitPermit {
            shared: Arc::clone(&self.shared),
            rows: n_rows,
            consumed: false,
        })
    }

    /// Rows currently queued across all lanes.
    pub fn queued_rows(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("scheduler poisoned")
            .queued_rows
    }

    /// Flush every remaining lane, then stop and join the executors.
    /// Queued completions still run (graceful drain); new submissions are
    /// refused from the moment this is called.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            state.stopping = true;
        }
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            {
                let mut state = self.shared.state.lock().expect("scheduler poisoned");
                state.stopping = true;
            }
            self.shared.ready.notify_all();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

/// A reserved slice of the scheduler's queue budget; see
/// [`BatchScheduler::try_reserve`]. Dropping an unsubmitted permit
/// releases the reservation.
pub struct SubmitPermit {
    shared: Arc<SchedulerShared>,
    rows: usize,
    consumed: bool,
}

impl SubmitPermit {
    /// Queue `rows` for a coalesced predict against `target`; `complete`
    /// receives this submission's slice of the batched outcome on an
    /// executor thread. `rows.len()` must match the reserved count.
    ///
    /// The completion is guaranteed to run exactly once: if the
    /// scheduler began stopping after this permit was reserved, the
    /// batch executes inline on the calling thread instead of being
    /// queued behind executors that may already have drained and exited.
    pub fn submit(
        mut self,
        target: Arc<dyn BatchTarget>,
        rows: Vec<Vec<f64>>,
        complete: Box<dyn FnOnce(MaskedOutcome) + Send>,
    ) {
        assert_eq!(
            rows.len(),
            self.rows,
            "permit reserved a different row count"
        );
        self.consumed = true;
        let n = rows.len();
        let key = Arc::as_ptr(&target) as *const () as usize;
        let mut state = self.shared.state.lock().expect("scheduler poisoned");
        if state.stopping {
            state.queued_rows -= n;
            drop(state);
            let outcome = target.run_batch(&rows);
            complete(outcome);
            return;
        }
        let now = Instant::now();
        let lane = state.lanes.entry(key).or_insert_with(|| Lane {
            target,
            entries: Vec::new(),
            rows: 0,
            opened: now,
        });
        lane.rows += n;
        lane.entries.push(LaneEntry {
            rows,
            enqueued: now,
            complete,
        });
        drop(state);
        // Executors sleep on a deadline-bounded wait, so one notify is
        // enough whether or not the lane is already flush-ready.
        self.shared.ready.notify_one();
    }
}

impl Drop for SubmitPermit {
    fn drop(&mut self) {
        if !self.consumed {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            state.queued_rows -= self.rows;
        }
    }
}

/// RAII guard for the scheduler's producer hint; see
/// [`BatchScheduler::producer_hint`].
pub struct ProducerGuard {
    shared: Arc<SchedulerShared>,
}

impl Drop for ProducerGuard {
    fn drop(&mut self) {
        // The producer is done (its submission, if any, is queued): if it
        // was the last one, wake an executor so an idle-flush can fire
        // without waiting out the deadline.
        if self.shared.producers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.ready.notify_one();
        }
    }
}

/// Pop one flush-ready lane, or compute how long to wait for the nearest
/// deadline. `stopping` makes every non-empty lane ready (drain).
fn take_ready_lane(
    state: &mut SchedulerState,
    opts: &SchedulerOptions,
    producers_idle: bool,
    now: Instant,
) -> Result<Lane, Option<Duration>> {
    let mut next_deadline: Option<Duration> = None;
    let mut ready_key = None;
    for (&key, lane) in &state.lanes {
        let age = now.saturating_duration_since(lane.opened);
        if lane.rows >= opts.max_batch_rows
            || age >= opts.flush_deadline
            || producers_idle
            || state.stopping
        {
            ready_key = Some(key);
            break;
        }
        let remaining = opts.flush_deadline - age;
        next_deadline = Some(match next_deadline {
            Some(d) => d.min(remaining),
            None => remaining,
        });
    }
    match ready_key {
        Some(key) => {
            let lane = state.lanes.remove(&key).expect("key just seen");
            state.queued_rows -= lane.rows;
            Ok(lane)
        }
        None => Err(next_deadline),
    }
}

fn worker_loop(shared: &SchedulerShared) {
    let mut state = shared.state.lock().expect("scheduler poisoned");
    loop {
        let producers_idle = shared.producers.load(Ordering::SeqCst) == 0;
        match take_ready_lane(&mut state, &shared.opts, producers_idle, Instant::now()) {
            Ok(lane) => {
                drop(state);
                execute_lane(shared, lane);
                state = shared.state.lock().expect("scheduler poisoned");
            }
            Err(next_deadline) => {
                if state.stopping && state.lanes.is_empty() {
                    return;
                }
                // No ready lane: sleep until the nearest deadline (or for
                // a notify). An empty lane set waits purely on notifies,
                // with a coarse cap so a missed wake cannot hang drain.
                let wait = next_deadline.unwrap_or(Duration::from_millis(100));
                state = shared
                    .ready
                    .wait_timeout(state, wait)
                    .expect("scheduler poisoned")
                    .0;
            }
        }
    }
}

/// Execute one coalesced lane outside the scheduler lock and split the
/// outcome back per submission, preserving each submission's row order.
fn execute_lane(shared: &SchedulerShared, lane: Lane) {
    let enabled = lam_obs::enabled();
    let started = enabled.then(Instant::now);
    let all_rows: Vec<Vec<f64>> = lane.entries.iter().flat_map(|e| e.rows.clone()).collect();
    let outcome = lane.target.run_batch(&all_rows);
    debug_assert_eq!(outcome.predictions.len(), all_rows.len());
    if let Some(started) = started {
        shared.metrics.occupancy.record(lane.entries.len() as u64);
        shared.metrics.flush_rows.record(all_rows.len() as u64);
        for e in &lane.entries {
            shared
                .metrics
                .queue_wait_ns
                .record((started - e.enqueued).as_nanos().min(u64::MAX as u128) as u64);
        }
    }
    let mut offset = 0usize;
    for entry in lane.entries {
        let n = entry.rows.len();
        let predictions = outcome.predictions[offset..offset + n].to_vec();
        let hit_mask = outcome.hit_mask[offset..offset + n].to_vec();
        let cache_hits = hit_mask.iter().filter(|&&h| h).count() as u64;
        offset += n;
        (entry.complete)(MaskedOutcome {
            predictions,
            hit_mask,
            cache_hits,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic toy model: y = 2*x0 + x1.
    struct Toy;
    impl PredictRow for Toy {
        fn predict_row(&self, x: &[f64]) -> f64 {
            2.0 * x[0] + x.get(1).copied().unwrap_or(0.0)
        }
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, (i % 7) as f64]).collect()
    }

    #[test]
    fn batched_predictions_preserve_request_order() {
        let engine = BatchEngine::new(8, 4);
        let rows = rows(1000);
        let out = engine.predict(&Toy, &rows);
        assert_eq!(out.predictions.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out.predictions[i], Toy.predict_row(row), "row {i}");
        }
    }

    #[test]
    fn second_pass_is_all_cache_hits() {
        let engine = BatchEngine::new(16, 8);
        let rows = rows(300);
        let cold = engine.predict(&Toy, &rows);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(engine.cache().len(), rows.len());
        let warm = engine.predict(&Toy, &rows);
        assert_eq!(warm.cache_hits, rows.len() as u64);
        assert_eq!(warm.predictions, cold.predictions);
    }

    #[test]
    fn cache_distinguishes_bitwise_different_rows() {
        let cache = PredictionCache::new(4);
        cache.insert(&[1.0, 2.0], 10.0);
        assert_eq!(cache.get(&[1.0, 2.0]), Some(10.0));
        assert_eq!(cache.get(&[1.0, 2.0000000000000004]), None);
        assert_eq!(cache.get(&[1.0]), None);
        // -0.0 and 0.0 differ bitwise: distinct cache entries.
        cache.insert(&[0.0], 1.0);
        assert_eq!(cache.get(&[-0.0]), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn capacity_bounds_entries_without_breaking_predictions() {
        let cache = PredictionCache::with_capacity(2, 4);
        for i in 0..100 {
            cache.insert(&[i as f64], i as f64);
        }
        assert!(cache.len() <= 4, "len {}", cache.len());
        // Overwriting an existing key still works at capacity.
        let kept: Vec<f64> = (0..100)
            .map(|i| i as f64)
            .filter(|&x| cache.get(&[x]).is_some())
            .collect();
        let k = kept[0];
        cache.insert(&[k], -1.0);
        assert_eq!(cache.get(&[k]), Some(-1.0));
    }

    #[test]
    fn empty_request_is_fine() {
        let engine = BatchEngine::default();
        let out = engine.predict(&Toy, &[]);
        assert!(out.predictions.is_empty());
        assert_eq!(out.cache_hits, 0);
        assert!(engine.cache().is_empty());
    }

    #[test]
    fn scoped_engine_feeds_the_global_metrics_registry() {
        // A unique scope keeps this test independent of every other
        // engine in the process.
        let scope = "batch-metrics-selftest";
        let engine = BatchEngine::scoped(8, 4, scope);
        let rows = rows(20);
        engine.predict(&Toy, &rows);
        engine.predict(&Toy, &rows);
        let reg = lam_obs::global();
        let labels = [("scope", scope)];
        let hits = reg.counter("lam_cache_hits_total", "", &labels).get();
        let misses = reg.counter("lam_cache_misses_total", "", &labels).get();
        assert_eq!(misses, 20, "first pass all misses");
        assert_eq!(hits, 20, "second pass all hits");
        let sizes = reg.histogram("lam_batch_rows", "", &labels).snapshot();
        // 20 rows in 8-row micro-batches = 3 batches per pass.
        assert_eq!(sizes.count(), 6);
        assert_eq!(sizes.max, 8);
        let waits = reg
            .histogram("lam_batch_queue_wait_ns", "", &labels)
            .snapshot();
        assert_eq!(waits.count(), 6);
        // Phase timings are only taken on miss-bearing micro-batches
        // (the all-hit fast path skips the extra clock reads), so only
        // the first pass's 3 micro-batches show up here.
        let lookups = reg
            .histogram(
                "lam_batch_phase_ns",
                "",
                &[("scope", scope), ("phase", "cache-lookup")],
            )
            .snapshot();
        assert_eq!(lookups.count(), 3);
    }

    #[test]
    fn masked_outcome_flags_hits_per_row() {
        let engine = BatchEngine::new(4, 2);
        // Warm rows 0..3; then predict a mix of warm and cold rows.
        engine.predict(&Toy, &rows(3));
        let mixed = vec![
            vec![0.0, 0.0], // warm
            vec![50.0, 1.0],
            vec![1.0, 1.0], // warm
            vec![60.0, 4.0],
            vec![2.0, 2.0], // warm
        ];
        let out = engine.predict_masked(&Toy, &mixed);
        assert_eq!(out.hit_mask, vec![true, false, true, false, true]);
        assert_eq!(out.cache_hits, 3);
        for (i, row) in mixed.iter().enumerate() {
            assert_eq!(out.predictions[i], Toy.predict_row(row), "row {i}");
        }
    }

    /// Minimal target over a shared engine, counting executed batches.
    struct CountingTarget {
        engine: BatchEngine,
        calls: AtomicU64,
    }
    impl BatchTarget for CountingTarget {
        fn run_batch(&self, rows: &[Vec<f64>]) -> MaskedOutcome {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.engine.predict_masked(&Toy, rows)
        }
    }

    fn counting_target() -> Arc<CountingTarget> {
        Arc::new(CountingTarget {
            engine: BatchEngine::new(512, 4),
            calls: AtomicU64::new(0),
        })
    }

    fn submit_and_collect(
        sched: &BatchScheduler,
        target: Arc<CountingTarget>,
        all_rows: Vec<Vec<Vec<f64>>>,
    ) -> Vec<MaskedOutcome> {
        let results: Arc<Mutex<Vec<Option<MaskedOutcome>>>> =
            Arc::new(Mutex::new(vec![None; all_rows.len()]));
        {
            // Hold the producer hint across all submissions so the
            // scheduler waits for the whole group before flushing.
            let _hint = sched.producer_hint();
            for (i, rows) in all_rows.into_iter().enumerate() {
                let results = Arc::clone(&results);
                let target: Arc<dyn BatchTarget> = target.clone();
                let permit = sched.try_reserve(rows.len()).expect("reserve");
                permit.submit(
                    target,
                    rows,
                    Box::new(move |out| {
                        results.lock().unwrap()[i] = Some(out);
                    }),
                );
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            {
                let got = results.lock().unwrap();
                if got.iter().all(|r| r.is_some()) {
                    return got.iter().map(|r| r.clone().unwrap()).collect();
                }
            }
            assert!(Instant::now() < deadline, "scheduler never completed");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn scheduler_coalesces_submissions_into_one_batch() {
        let sched = BatchScheduler::new(SchedulerOptions {
            flush_deadline: Duration::from_millis(50),
            workers: 1,
            ..SchedulerOptions::default()
        });
        let target = counting_target();
        let outs = submit_and_collect(
            &sched,
            target.clone(),
            (0..8).map(|i| vec![vec![i as f64, 1.0]]).collect(),
        );
        // All eight single-row submissions arrived under one producer
        // hint within one deadline window: exactly one executed batch.
        assert_eq!(target.calls.load(Ordering::SeqCst), 1);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.predictions, vec![2.0 * i as f64 + 1.0]);
            assert_eq!(out.hit_mask.len(), 1);
        }
        sched.shutdown();
    }

    #[test]
    fn scheduler_splits_cache_hits_exactly_per_submission() {
        let sched = BatchScheduler::new(SchedulerOptions {
            flush_deadline: Duration::from_millis(20),
            workers: 1,
            ..SchedulerOptions::default()
        });
        let target = counting_target();
        // Warm only the rows of the second submission.
        target.engine.predict(&Toy, &[vec![7.0, 7.0]]);
        let outs = submit_and_collect(
            &sched,
            target.clone(),
            vec![
                vec![vec![100.0, 0.0], vec![101.0, 0.0]], // cold, cold
                vec![vec![7.0, 7.0]],                     // warm
            ],
        );
        assert_eq!(outs[0].cache_hits, 0);
        assert_eq!(outs[0].hit_mask, vec![false, false]);
        assert_eq!(outs[1].cache_hits, 1);
        assert_eq!(outs[1].hit_mask, vec![true]);
        sched.shutdown();
    }

    #[test]
    fn scheduler_sheds_when_row_budget_is_exhausted() {
        let sched = BatchScheduler::new(SchedulerOptions {
            max_queued_rows: 3,
            flush_deadline: Duration::from_secs(10),
            workers: 1,
            ..SchedulerOptions::default()
        });
        let target = counting_target();
        // Keep the hint held so nothing flushes while we overfill.
        let _hint = sched.producer_hint();
        let t: Arc<dyn BatchTarget> = target.clone();
        sched.try_reserve(3).expect("within budget").submit(
            t,
            vec![vec![1.0]; 3],
            Box::new(|_| {}),
        );
        let Err(err) = sched.try_reserve(1) else {
            panic!("over-budget reserve must be refused");
        };
        assert_eq!(err, SubmitError::QueueFull);
        // A dropped (unsubmitted) permit releases its reservation.
        drop(sched.try_reserve(0).expect("zero-row reserve"));
        drop(_hint);
        sched.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_submissions() {
        let sched = BatchScheduler::new(SchedulerOptions {
            flush_deadline: Duration::from_secs(10),
            workers: 1,
            ..SchedulerOptions::default()
        });
        let target = counting_target();
        let done = Arc::new(AtomicU64::new(0));
        {
            let _hint = sched.producer_hint();
            for i in 0..4 {
                let done = Arc::clone(&done);
                let t: Arc<dyn BatchTarget> = target.clone();
                sched.try_reserve(1).expect("reserve").submit(
                    t,
                    vec![vec![i as f64, 0.0]],
                    Box::new(move |_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
            // Hint still held: with a 10s deadline nothing has flushed;
            // shutdown must drain these, not drop them.
            sched.shutdown();
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn idle_producers_flush_without_waiting_out_the_deadline() {
        let sched = BatchScheduler::new(SchedulerOptions {
            flush_deadline: Duration::from_secs(10),
            workers: 1,
            ..SchedulerOptions::default()
        });
        let target = counting_target();
        let started = Instant::now();
        let outs = submit_and_collect(&sched, target, vec![vec![vec![3.0, 1.0]]]);
        // The hint dropped right after the lone submission, so the flush
        // must fire on the idle hint, far inside the 10s deadline.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(outs[0].predictions, vec![7.0]);
        sched.shutdown();
    }

    #[test]
    fn duplicate_rows_in_one_request_hit_after_first_compute() {
        let engine = BatchEngine::new(1, 2);
        let rows = vec![vec![5.0, 1.0]; 10];
        // One worker thread makes the hit count deterministic: the first
        // occurrence computes, the other nine hit.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let out = pool.install(|| engine.predict(&Toy, &rows));
        assert_eq!(out.cache_hits, 9);
        assert!(out.predictions.iter().all(|&y| y == 11.0));
        assert_eq!(engine.cache().len(), 1);
    }
}
